//! The unified typed request API over the simulation stack.
//!
//! Every harness binary and the `espserve` job server funnel through
//! one entry point: build a [`RunRequest`] (the union of the historical
//! `--engine/--jobs/--trace/--profile/--spans/--sanitize/--faults`
//! surfaces plus a `schema_version`), then call [`execute`]. The
//! request is validated, linted by the espcheck admission filter
//! ([`admission`] — broken configurations and fault plans are rejected
//! with their `E`-codes before a single cycle is simulated), and
//! dispatched to the same grid driver / trace session / campaign
//! machinery the binaries always used. The [`RunResponse`] carries the
//! per-point measurements plus every artifact as a named string, so a
//! CLI `--metrics` file and the server's `/artifacts/metrics` body are
//! the same bytes by construction.
//!
//! Requests also have a deterministic identity: [`RunRequest::cache_key`]
//! hashes the canonical (key-sorted, jobs-stripped) JSON form, which is
//! what makes the server's result cache sound — the simulator is proven
//! engine-byte-identical, so equal keys imply equal responses.

use crate::cli::engine_name;
use crate::{chart, parallel};
use esp4ml::apps::{build_soc2, CaseApp, SocId, TrainedModels};
use esp4ml::check::{lint_all, lint_config, lint_dataflow, lint_mapping, FloorplanView};
use esp4ml::deploy::{self, Deployment};
use esp4ml::experiments::{AppRun, ExperimentError, Fig7, Fig8, GridPoint, Table1};
use esp4ml::faults::{lint_fault_plan, CampaignReport, FaultConfig};
use esp4ml::soc_config::SocConfigFile;
use esp4ml::trace::schema::envelope_json;
use esp4ml::trace::{perfetto, Tracer};
use esp4ml::TraceSession;
use esp4ml_check::{Diagnostic, Report};
use esp4ml_fault::FaultPlan;
use esp4ml_runtime::ExecMode;
use esp4ml_runtime::RunMetrics;
use esp4ml_soc::SocEngine;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Version of the request/response schema (shared with the artifact
/// envelope — one version covers the whole machine-readable surface).
pub const SCHEMA_VERSION: u64 = esp4ml::trace::schema::SCHEMA_VERSION;

/// What to run — one variant per harness workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum WorkloadKind {
    /// The Fig. 7 grid (frames/J, base/pipe/p2p × configurations).
    Fig7,
    /// The Fig. 8 grid (DRAM accesses with and without p2p).
    Fig8,
    /// The Table I grid (best configs vs i7/Jetson baselines).
    Table1,
    /// `espprof`: configurations across modes with the online profiler,
    /// cross-checked against measured throughput.
    Profile,
    /// `espspan`: configurations across modes with span assembly,
    /// attribution and critical-path agreement checks.
    Spans,
    /// `espfault`: a seeded fault-injection campaign (seeds `1..=seeds`).
    Faults {
        /// Number of campaign seeds to sweep.
        seeds: u64,
    },
    /// `espcheck`: statically lint the request's `soc_config` (or the
    /// built-in floorplans and Fig. 7 mappings) without simulating.
    Check,
    /// `espcheck --deployment`: statically admit the request's
    /// multi-tenant `deployment` (`E07xx`), then validate the static
    /// bandwidth model against per-tenant solo simulation runs.
    Deployment,
}

impl WorkloadKind {
    /// Stable name used in responses and job listings.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::Fig7 => "fig7",
            WorkloadKind::Fig8 => "fig8",
            WorkloadKind::Table1 => "table1",
            WorkloadKind::Profile => "profile",
            WorkloadKind::Spans => "spans",
            WorkloadKind::Faults { .. } => "faults",
            WorkloadKind::Check => "check",
            WorkloadKind::Deployment => "deployment",
        }
    }

    /// The labelled configuration space `configs` indexes into:
    /// grid points for the figure/table workloads, Fig. 7 configurations
    /// for profile/spans, empty where `configs` is meaningless.
    pub fn config_space(&self) -> Vec<String> {
        match self {
            WorkloadKind::Fig7 => Fig7::grid().iter().map(GridPoint::label).collect(),
            WorkloadKind::Fig8 => Fig8::grid().iter().map(GridPoint::label).collect(),
            WorkloadKind::Table1 => Table1::grid().iter().map(GridPoint::label).collect(),
            WorkloadKind::Profile | WorkloadKind::Spans => CaseApp::all_fig7_configs()
                .iter()
                .map(|c| c.label())
                .collect(),
            WorkloadKind::Faults { .. } | WorkloadKind::Check | WorkloadKind::Deployment => {
                Vec::new()
            }
        }
    }
}

/// Observability toggles — the request-level form of
/// `--trace/--profile/--spans/--sample-every`. The artifacts land in
/// [`RunResponse::artifacts`] rather than client-side files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserveOpts {
    /// Capture the trace-event stream (`trace` + optional
    /// `counters_csv` artifacts).
    #[serde(default)]
    pub trace: bool,
    /// Profile every run online (`profile` + `profile_text` artifacts).
    #[serde(default)]
    pub profile: bool,
    /// Assemble frame-level span trees (`spans`, `span_trace`,
    /// `span_text` artifacts).
    #[serde(default)]
    pub spans: bool,
    /// Counter sampling period in cycles (requires `trace`).
    #[serde(default)]
    pub sample_every: Option<u64>,
}

impl ObserveOpts {
    /// Whether any observability layer is requested.
    pub fn any(&self) -> bool {
        self.trace || self.profile || self.spans
    }
}

/// A point-in-time snapshot of how far a request has executed.
///
/// Snapshots are published through a [`ProgressSink`] after each
/// completed unit of work (a grid point, a profiled mode run, a
/// campaign case, a lint target), always in the workload's canonical
/// order. Every field is derived from simulator state that is proven
/// engine-byte-identical, so the *sequence* of snapshots for a given
/// [`RunRequest`] is deterministic: identical across the Naive and
/// EventDriven engines, across serial and parallel grid execution, and
/// between the CLI `--progress` stream and the server's job progress.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Progress {
    /// Work units completed so far.
    pub points_done: u64,
    /// Total work units this request will execute.
    pub points_total: u64,
    /// Frames simulated across the completed units.
    pub frames_done: u64,
    /// Simulated cycles accumulated across the completed units.
    pub cycles: u64,
    /// Label of the most recently completed unit.
    pub label: String,
}

impl Progress {
    /// Whether this is the final snapshot (every unit completed).
    pub fn is_final(&self) -> bool {
        self.points_done == self.points_total
    }

    /// The canonical one-line JSON form — the exact bytes `--progress`
    /// prints and the byte-identity surface between CLI and server.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("progress serializes")
    }
}

/// Receives [`Progress`] snapshots while a request executes. Published
/// from grid worker threads, so implementations must be `Sync`.
pub trait ProgressSink: Sync {
    /// Called once per completed work unit, in canonical order.
    fn publish(&self, progress: &Progress);
}

/// A [`ProgressSink`] that records every snapshot in publication order
/// — the reference consumer for determinism tests.
#[derive(Debug, Default)]
pub struct CollectingSink {
    snapshots: Mutex<Vec<Progress>>,
}

impl CollectingSink {
    /// An empty collector.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// Every snapshot published so far, in order.
    pub fn snapshots(&self) -> Vec<Progress> {
        self.snapshots.lock().expect("progress lock").clone()
    }
}

impl ProgressSink for CollectingSink {
    fn publish(&self, progress: &Progress) {
        self.snapshots
            .lock()
            .expect("progress lock")
            .push(progress.clone());
    }
}

/// Serial-path progress accumulator: counts units off as they complete
/// and publishes the cumulative snapshot to the sink (no-op without
/// one). The parallel grid driver has its own prefix-ordered publisher
/// in [`crate::parallel::run_grid`]; both produce the same sequence.
struct ProgressTracker<'a> {
    sink: Option<&'a dyn ProgressSink>,
    total: u64,
    done: u64,
    frames: u64,
    cycles: u64,
}

impl<'a> ProgressTracker<'a> {
    fn new(sink: Option<&'a dyn ProgressSink>, total: u64) -> ProgressTracker<'a> {
        ProgressTracker {
            sink,
            total,
            done: 0,
            frames: 0,
            cycles: 0,
        }
    }

    fn advance(&mut self, label: &str, frames: u64, cycles: u64) {
        self.done += 1;
        self.frames += frames;
        self.cycles += cycles;
        if let Some(sink) = self.sink {
            sink.publish(&Progress {
                points_done: self.done,
                points_total: self.total,
                frames_done: self.frames,
                cycles: self.cycles,
                label: label.to_string(),
            });
        }
    }
}

/// One simulation job, fully described: what to run, how, and what to
/// observe. This is the wire format of `POST /v1/jobs` and the value
/// every harness binary assembles from its command line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRequest {
    /// Must be [`SCHEMA_VERSION`]; unknown versions are rejected.
    pub schema_version: u64,
    /// The workload to run.
    pub workload: WorkloadKind,
    /// Configuration indices into [`WorkloadKind::config_space`]
    /// (empty = the whole space). Order is preserved in the response.
    #[serde(default)]
    pub configs: Vec<usize>,
    /// Execution modes (`base`/`pipe`/`p2p`) for the profile/spans
    /// workloads; empty = the default `pipe`+`p2p` pair.
    #[serde(default)]
    pub modes: Vec<String>,
    /// Frames to simulate per measurement point (ignored by `check`).
    #[serde(default)]
    pub frames: u64,
    /// Simulation engine: `naive`, `event` (or its alias
    /// `event-driven`); empty = the default engine.
    #[serde(default)]
    pub engine: String,
    /// Worker threads for grid execution; 0 = auto. Never affects
    /// results, so it is excluded from [`RunRequest::cache_key`].
    #[serde(default)]
    pub jobs: usize,
    /// Fork grid points sharing a config prefix from one warm snapshot
    /// instead of cold-starting each (`--fork-prefix`). Forked runs are
    /// byte-identical to cold starts, so — like `jobs` — this never
    /// affects results and is excluded from [`RunRequest::cache_key`].
    #[serde(default)]
    pub fork_prefix: bool,
    /// Arm the runtime invariant sanitizer on every run.
    #[serde(default)]
    pub sanitize: bool,
    /// Fault plan to install on every run's SoC (recovery layer armed,
    /// campaign watchdog). Linted at admission (`E06xx`).
    #[serde(default)]
    pub fault_plan: Option<FaultPlan>,
    /// A SoC configuration: the lint subject for `check`, and an
    /// admission-linted design attachment everywhere else (jobs whose
    /// configuration has errors never reach the simulator).
    #[serde(default)]
    pub soc_config: Option<SocConfigFile>,
    /// The multi-tenant deployment for the `deployment` workload.
    /// Admission runs the full `E07xx` analysis; infeasible
    /// deployments are rejected before a single cycle is simulated.
    #[serde(default)]
    pub deployment: Option<Deployment>,
    /// Observability toggles.
    #[serde(default)]
    pub observe: ObserveOpts,
}

/// One measured grid point in a response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointRun {
    /// Application label (e.g. `1De+1Cl`).
    pub label: String,
    /// Execution mode label (`base`/`pipe`/`p2p`).
    pub mode: String,
    /// The raw runtime metrics.
    pub metrics: RunMetrics,
    /// SoC average dynamic power in watts.
    pub watts: f64,
    /// Throughput in frames per second.
    pub frames_per_second: f64,
    /// Energy efficiency in frames per joule.
    pub frames_per_joule: f64,
    /// Classification accuracy against ground truth.
    pub accuracy: f64,
    /// Whether the run degraded to the processor-tile software path.
    #[serde(default)]
    pub software_fallback: bool,
}

impl PointRun {
    fn from_app_run(run: &AppRun) -> PointRun {
        PointRun {
            label: run.label.clone(),
            mode: run.mode.label().to_string(),
            metrics: run.metrics,
            watts: run.watts,
            frames_per_second: run.metrics.frames_per_second(),
            frames_per_joule: run.frames_per_joule(),
            accuracy: run.accuracy(),
            software_fallback: run.software_fallback,
        }
    }
}

/// The workload's self-check outcome (espprof/espspan consistency,
/// espfault absorption, espcheck cleanliness; always `ok` for plain
/// figure runs).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Whether every check passed.
    pub ok: bool,
    /// Human-readable violations when it did not.
    #[serde(default)]
    pub violations: Vec<String>,
}

/// The result of executing a [`RunRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResponse {
    /// Schema version of this response (= the request's).
    pub schema_version: u64,
    /// [`WorkloadKind::label`] of what ran.
    pub workload: String,
    /// Canonical engine name that drove the runs.
    pub engine: String,
    /// Frames simulated per point.
    pub frames: u64,
    /// Per-point measurements, in request order.
    pub runs: Vec<PointRun>,
    /// The workload's self-check outcome.
    pub verdict: Verdict,
    /// Human-readable summary (figure text, campaign table, …).
    pub summary_text: String,
    /// Warnings that are not verdict violations (e.g. ring-buffer
    /// event drops under `observe.trace`).
    #[serde(default)]
    pub notes: Vec<String>,
    /// Named artifacts, each a complete file body (`metrics`, `figure`,
    /// `report`, `trace`, `profile`, `spans`, `span_trace`,
    /// `counters_csv`, `flame`, `campaign`, …).
    pub artifacts: BTreeMap<String, String>,
}

impl RunResponse {
    /// Serializes the response as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("response serializes")
    }
}

/// Why a request did not produce a [`RunResponse`].
#[derive(Debug)]
pub enum RequestError {
    /// The request is malformed (bad version, unknown engine, index
    /// out of range, conflicting options…). Maps to exit 2 / HTTP 400.
    Invalid(String),
    /// The espcheck admission filter found errors; the report carries
    /// the typed diagnostics with their `E`-codes. Exit 2 / HTTP 422.
    Rejected(Report),
    /// The simulation itself failed. Exit 1 / job state `failed`.
    Run(ExperimentError),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Invalid(msg) => write!(f, "invalid request: {msg}"),
            RequestError::Rejected(report) => {
                write!(
                    f,
                    "rejected by admission lint ({} error(s))",
                    report.error_count()
                )
            }
            RequestError::Run(e) => write!(f, "run failed: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<ExperimentError> for RequestError {
    fn from(e: ExperimentError) -> Self {
        RequestError::Run(e)
    }
}

impl RunRequest {
    /// A request for `workload` with the workspace defaults (64 frames,
    /// default engine, nothing observed).
    pub fn new(workload: WorkloadKind) -> RunRequest {
        RunRequest {
            schema_version: SCHEMA_VERSION,
            workload,
            configs: Vec::new(),
            modes: Vec::new(),
            frames: 64,
            engine: String::new(),
            jobs: 0,
            fork_prefix: false,
            sanitize: false,
            fault_plan: None,
            soc_config: None,
            deployment: None,
            observe: ObserveOpts::default(),
        }
    }

    /// The canonical form: engine aliases resolved, defaults made
    /// explicit where they affect execution (profile/spans mode and
    /// config defaults), frames zeroed where ignored. Two requests
    /// meaning the same job normalize identically, which is what the
    /// cache key hashes.
    pub fn normalized(&self) -> RunRequest {
        let mut out = self.clone();
        out.engine = match self.engine.as_str() {
            "" | "event" | "event-driven" => "event".to_string(),
            other => other.to_string(),
        };
        if matches!(self.workload, WorkloadKind::Profile | WorkloadKind::Spans) {
            if out.configs.is_empty() {
                // The paper's denoiser-classifier pipeline, as espprof
                // and espspan always defaulted to.
                out.configs = vec![3];
            }
            if out.modes.is_empty() {
                out.modes = vec!["pipe".to_string(), "p2p".to_string()];
            }
        }
        if matches!(self.workload, WorkloadKind::Check) {
            out.frames = 0;
        }
        out
    }

    /// The attached deployment, required by the `deployment` workload.
    fn required_deployment(&self) -> Result<&Deployment, String> {
        self.deployment
            .as_ref()
            .ok_or_else(|| "the deployment workload needs a deployment attachment".to_string())
    }

    /// Validates a normalized request; the error string is the message
    /// shown to a CLI user (exit 2) or an API client (HTTP 400).
    fn validate_normalized(&self) -> Result<(), String> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unknown schema_version {} (this build understands {SCHEMA_VERSION})",
                self.schema_version
            ));
        }
        match self.engine.as_str() {
            "naive" | "event" => {}
            other => return Err(format!("unknown engine {other}; expected naive or event")),
        }
        if !matches!(self.workload, WorkloadKind::Check) && self.frames == 0 {
            return Err("frames must be at least 1".into());
        }
        if let WorkloadKind::Faults { seeds } = self.workload {
            if seeds == 0 {
                return Err("seeds must be at least 1".into());
            }
        }
        if self.observe.sample_every == Some(0) {
            return Err("sample_every must be at least 1".into());
        }
        if self.observe.sample_every.is_some() && !self.observe.trace {
            return Err("sample_every requires trace".into());
        }
        if self.sanitize && self.observe.any() {
            return Err(
                "sanitize cannot be combined with trace/profile/spans; run them separately".into(),
            );
        }
        if self.fault_plan.is_some() && (self.observe.any() || self.sanitize) {
            return Err(
                "fault_plan cannot be combined with trace/profile/spans/sanitize; \
                 injected faults deliberately break the invariants those audit"
                    .into(),
            );
        }
        if self.deployment.is_some() && !matches!(self.workload, WorkloadKind::Deployment) {
            return Err(format!(
                "a deployment attachment is not meaningful for the {} workload",
                self.workload.label()
            ));
        }
        match self.workload {
            WorkloadKind::Deployment => {
                self.required_deployment()?;
                if !self.configs.is_empty() || !self.modes.is_empty() {
                    return Err(
                        "configs/modes are not meaningful for the deployment workload; \
                         tenants carry their own mappings and modes"
                            .into(),
                    );
                }
                if self.soc_config.is_some() {
                    return Err("soc_config is not meaningful for the deployment workload; \
                         the deployment carries its own floorplan"
                        .into());
                }
                if self.fault_plan.is_some() || self.sanitize || self.observe.any() {
                    return Err("fault_plan/sanitize/observe are not meaningful for the \
                         deployment workload"
                        .into());
                }
            }
            WorkloadKind::Faults { .. } | WorkloadKind::Check => {
                if !self.configs.is_empty() || !self.modes.is_empty() {
                    return Err(format!(
                        "configs/modes are not meaningful for the {} workload",
                        self.workload.label()
                    ));
                }
                if self.fault_plan.is_some() {
                    return Err(format!(
                        "fault_plan is not meaningful for the {} workload",
                        self.workload.label()
                    ));
                }
                if self.sanitize || self.observe.any() {
                    return Err(format!(
                        "sanitize/observe are not meaningful for the {} workload",
                        self.workload.label()
                    ));
                }
            }
            WorkloadKind::Fig7 | WorkloadKind::Fig8 | WorkloadKind::Table1 => {
                if !self.modes.is_empty() {
                    return Err(format!(
                        "modes are fixed by the {} grid; use configs to select points",
                        self.workload.label()
                    ));
                }
            }
            WorkloadKind::Profile | WorkloadKind::Spans => {
                for m in &self.modes {
                    mode_from_name(m)?;
                }
            }
        }
        let space = self.workload.config_space();
        if let Some(&bad) = self.configs.iter().find(|&&c| c >= space.len()) {
            let list: Vec<String> = space
                .iter()
                .enumerate()
                .map(|(i, label)| format!("{i}={label}"))
                .collect();
            return Err(format!(
                "config {bad}: index out of range; {}",
                list.join(" ")
            ));
        }
        Ok(())
    }

    /// Validates the request (after normalization).
    ///
    /// # Errors
    ///
    /// A printable message describing the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.normalized().validate_normalized()
    }

    /// The deterministic cache key: FNV-1a 64 over the canonical JSON
    /// form of [`RunRequest::normalized`] with `jobs` and `fork_prefix`
    /// zeroed (neither worker count nor prefix forking changes
    /// results). Canonical JSON sorts every object's
    /// keys, so the key is invariant under JSON key reordering — and
    /// since runs are proven engine-byte-identical and seeded, equal
    /// keys imply byte-equal responses.
    pub fn cache_key(&self) -> u64 {
        let mut canonical = self.normalized();
        canonical.jobs = 0;
        canonical.fork_prefix = false;
        let value = serde_json::to_value(&canonical).expect("request serializes");
        fnv1a64(canonical_json(&value).as_bytes())
    }

    /// The parsed engine of a normalized request.
    fn soc_engine(&self) -> SocEngine {
        match self.engine.as_str() {
            "naive" => SocEngine::Naive,
            _ => SocEngine::EventDriven,
        }
    }

    /// The worker-thread count to use.
    fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            parallel::default_jobs()
        } else {
            self.jobs
        }
    }
}

/// Renders a JSON value in canonical form: objects with keys sorted
/// (recursively), compact separators, scalar leaves rendered exactly as
/// the workspace JSON writer renders them. Used by
/// [`RunRequest::cache_key`]; exposed for the cache-key property tests.
pub fn canonical_json(value: &Value) -> String {
    let mut out = String::new();
    write_canonical(value, &mut out);
    out
}

fn write_canonical(value: &Value, out: &mut String) {
    match value {
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            let mut pairs: Vec<(&String, &Value)> = map.iter().collect();
            pairs.sort_by(|a, b| a.0.cmp(b.0));
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&serde_json::to_string(*key).expect("key serializes"));
                out.push(':');
                write_canonical(item, out);
            }
            out.push('}');
        }
        scalar => {
            out.push_str(&serde_json::to_string(scalar).expect("scalar serializes"));
        }
    }
}

/// FNV-1a 64-bit over `bytes`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn mode_from_name(name: &str) -> Result<ExecMode, String> {
    match name {
        "base" => Ok(ExecMode::Base),
        "pipe" => Ok(ExecMode::Pipe),
        "p2p" => Ok(ExecMode::P2p),
        other => Err(format!("unknown mode {other}; expected base, pipe or p2p")),
    }
}

/// The espcheck admission filter: lints the request's attachments
/// (SoC configuration, fault plan) statically, returning the combined
/// diagnostic report. [`execute`] refuses requests whose report has
/// errors — broken designs never reach the simulator. The `check`
/// workload's own lint subject is exempt (linting it is the job).
pub fn admission(req: &RunRequest) -> Report {
    let req = req.normalized();
    let mut report = Report::new();
    if let Some(config) = &req.soc_config {
        if !matches!(req.workload, WorkloadKind::Check) {
            report.merge(lint_config(config));
        }
    }
    if let Some(deployment) = &req.deployment {
        // The full E07xx multi-tenant analysis IS the admission filter:
        // lease conflicts, composed PLM overflow, union-CDG deadlock
        // and bandwidth infeasibility all block the simulator.
        report.merge(deploy::lint_deployment(deployment).report);
    }
    if let Some(plan) = &req.fault_plan {
        let mut hosted: Vec<String> = selected_points(&req)
            .iter()
            .flat_map(|p| p.app.dataflow().stages)
            .flat_map(|s| s.devices)
            .collect();
        hosted.sort();
        hosted.dedup();
        report.merge(lint_fault_plan(plan, &hosted));
    }
    report.normalize();
    report
}

/// The grid points a (normalized, validated) figure-family request
/// selects; empty for non-grid workloads.
fn selected_points(req: &RunRequest) -> Vec<GridPoint> {
    let grid = match req.workload {
        WorkloadKind::Fig7 => Fig7::grid(),
        WorkloadKind::Fig8 => Fig8::grid(),
        WorkloadKind::Table1 => Table1::grid(),
        _ => return Vec::new(),
    };
    if req.configs.is_empty() {
        grid
    } else {
        req.configs
            .iter()
            .filter_map(|&i| grid.get(i).copied())
            .collect()
    }
}

/// Executes a request end to end: normalize, validate, admission-lint,
/// simulate, package the response. This is the single entry point both
/// the harness binaries and the `espserve` job engine call.
///
/// # Errors
///
/// [`RequestError::Invalid`] on malformed requests,
/// [`RequestError::Rejected`] when the admission lint finds errors,
/// [`RequestError::Run`] when the simulation itself fails.
pub fn execute(req: &RunRequest, models: &TrainedModels) -> Result<RunResponse, RequestError> {
    execute_with_progress(req, models, None)
}

/// [`execute`] with a live [`ProgressSink`]: one cumulative snapshot is
/// published per completed work unit, in the workload's canonical
/// order. The snapshot sequence is deterministic for a given request —
/// identical across engines and across serial/parallel execution.
///
/// # Errors
///
/// Same contract as [`execute`].
pub fn execute_with_progress(
    req: &RunRequest,
    models: &TrainedModels,
    progress: Option<&dyn ProgressSink>,
) -> Result<RunResponse, RequestError> {
    let req = req.normalized();
    req.validate_normalized().map_err(RequestError::Invalid)?;
    let report = admission(&req);
    if report.has_errors() {
        return Err(RequestError::Rejected(report));
    }
    match req.workload {
        WorkloadKind::Fig7 | WorkloadKind::Fig8 | WorkloadKind::Table1 => {
            figure_response(&req, models, progress)
        }
        WorkloadKind::Profile => profile_response(&req, models, progress),
        WorkloadKind::Spans => spans_response(&req, models, progress),
        WorkloadKind::Faults { seeds } => faults_response(&req, seeds, models, progress),
        WorkloadKind::Check => check_response(&req, progress),
        WorkloadKind::Deployment => deployment_response(&req, progress),
    }
}

/// The enveloped run-metrics artifact — the byte-identity surface the
/// CI smoke test compares between the server and the CLI.
fn metrics_artifact(runs: &[PointRun]) -> String {
    let payload = serde_json::to_value(runs).expect("runs serialize");
    envelope_json("run-metrics", payload)
}

/// Builds the observability session a request asks for (`None` when
/// nothing is observed). Same shape priority as the historical
/// `--spans` > `--profile` > `--trace` session selection.
fn session_for(observe: &ObserveOpts) -> Option<TraceSession> {
    if observe.spans {
        return Some(TraceSession::spanned(observe.sample_every, observe.profile));
    }
    if observe.profile {
        return Some(TraceSession::profiled(observe.sample_every));
    }
    if !observe.trace {
        return None;
    }
    let tracer = Tracer::ring_buffer();
    Some(match observe.sample_every {
        Some(every) => TraceSession::with_sampling(tracer, every),
        None => TraceSession::new(tracer),
    })
}

/// Drains a finished session into response artifacts and notes.
fn observe_artifacts(
    observe: &ObserveOpts,
    session: &TraceSession,
    artifacts: &mut BTreeMap<String, String>,
    notes: &mut Vec<String>,
) {
    if observe.trace {
        let dropped = session.tracer().dropped();
        let dropped_spans = session.tracer().dropped_spans();
        let events = session.tracer().drain();
        let doc = perfetto::chrome_trace_with_drop_counts(&events, dropped, dropped_spans);
        artifacts.insert(
            "trace".into(),
            serde_json::to_string_pretty(&doc).expect("trace serializes"),
        );
        notes.push(format!("captured {} trace events", events.len()));
        if dropped > 0 {
            notes.push(format!(
                "ring buffer dropped {dropped} oldest events ({dropped_spans} span-relevant)"
            ));
        }
        if observe.sample_every.is_some() {
            artifacts.insert("counters_csv".into(), session.counters_csv());
        }
    }
    if observe.profile {
        artifacts.insert("profile".into(), session.profiles_json());
        let summary = session.profile_summary();
        if !summary.is_empty() {
            artifacts.insert("profile_text".into(), summary);
        }
    }
    if observe.spans {
        artifacts.insert("spans".into(), session.span_reports_json());
        let doc = perfetto::span_chrome_trace(session.span_reports());
        artifacts.insert(
            "span_trace".into(),
            serde_json::to_string_pretty(&doc).expect("span trace serializes"),
        );
        let summary = session.span_summary();
        if !summary.is_empty() {
            artifacts.insert("span_text".into(), summary);
        }
    }
    if observe.any() {
        let summary = session.noc_summary();
        if !summary.is_empty() {
            artifacts.insert("noc_text".into(), summary);
        }
    }
}

/// Runs a figure/table workload: the selected grid points, observed /
/// sanitized / faulted / parallel exactly as the flags always composed,
/// plus figure assembly when the whole grid ran.
fn figure_response(
    req: &RunRequest,
    models: &TrainedModels,
    progress: Option<&dyn ProgressSink>,
) -> Result<RunResponse, RequestError> {
    let points = selected_points(req);
    let engine = req.soc_engine();
    let full_grid = req.configs.is_empty();
    let faults = req.fault_plan.clone().map(|plan| {
        FaultConfig::from_plan(plan).with_watchdog(esp4ml::faults::CAMPAIGN_WATCHDOG_CYCLES)
    });
    let mut artifacts = BTreeMap::new();
    let mut notes = Vec::new();
    let runs: Vec<AppRun> = if let Some(mut session) = session_for(&req.observe) {
        // Observed runs are serial: the collectors are single-stream.
        let mut tracker = ProgressTracker::new(progress, points.len() as u64);
        let mut runs = Vec::new();
        for point in &points {
            let run = AppRun::execute_traced_on(
                &point.app,
                models,
                req.frames,
                point.mode,
                engine,
                &mut session,
            )?;
            tracker.advance(
                &format!("{} {}", run.label, run.mode.label()),
                run.metrics.frames,
                run.metrics.cycles,
            );
            runs.push(run);
        }
        observe_artifacts(&req.observe, &session, &mut artifacts, &mut notes);
        runs
    } else {
        parallel::run_grid(
            &points,
            models,
            req.frames,
            engine,
            req.effective_jobs(),
            req.sanitize,
            faults.as_ref(),
            req.fork_prefix,
            progress,
        )?
    };
    if req.sanitize {
        notes.push(format!("sanitizer: clean across {} runs", runs.len()));
    }
    if faults.is_some() {
        let (retries, failovers, degraded) = runs.iter().fold((0, 0, 0), |acc, r| {
            (
                acc.0 + r.metrics.retries,
                acc.1 + r.metrics.failovers,
                acc.2 + u64::from(r.software_fallback),
            )
        });
        notes.push(format!(
            "faults: {retries} retries, {failovers} failovers, \
             {degraded} software-degraded run(s) across {} runs",
            runs.len()
        ));
    }
    let mut summary_text = String::new();
    if full_grid {
        let figure = match req.workload {
            WorkloadKind::Fig7 => {
                let fig = Fig7::assemble(&runs)?;
                format!("{fig}\n\n{}", chart::render_fig7(&fig))
            }
            WorkloadKind::Fig8 => Fig8::assemble(&runs)?.to_string(),
            WorkloadKind::Table1 => Table1::assemble(models, &runs)?.to_string(),
            _ => unreachable!("figure_response only handles grid workloads"),
        };
        summary_text.clone_from(&figure);
        artifacts.insert("figure".into(), figure);
    } else {
        summary_text = runs
            .iter()
            .map(|r| format!("{} {}: {}\n", r.label, r.mode.label(), r.metrics))
            .collect();
    }
    let point_runs: Vec<PointRun> = runs.iter().map(PointRun::from_app_run).collect();
    artifacts.insert("metrics".into(), metrics_artifact(&point_runs));
    Ok(RunResponse {
        schema_version: SCHEMA_VERSION,
        workload: req.workload.label().to_string(),
        engine: engine_name(engine).to_string(),
        frames: req.frames,
        runs: point_runs,
        verdict: Verdict {
            ok: true,
            violations: Vec::new(),
        },
        summary_text,
        notes,
        artifacts,
    })
}

// ---------------------------------------------------------------------------
// espprof / espspan verdict reports
// ---------------------------------------------------------------------------

/// One profiled mode run in an [`EspprofReport`].
#[derive(Debug, Clone, Serialize)]
pub struct ProfiledRun {
    /// `{config} {mode}` label.
    pub label: String,
    /// Execution mode label.
    pub mode: String,
    /// Measured throughput.
    pub frames_per_second: f64,
    /// Cycles per frame observed by the profiler.
    pub observed_cycles_per_frame: f64,
    /// The limiting stage named by the bottleneck report.
    pub limiting_stage: Option<String>,
    /// Throughput ceiling if the limiting stage were free.
    pub speedup_ceiling: Option<f64>,
    /// The full profile report.
    pub profile: esp4ml::ProfileReport,
}

/// The espprof verdict report (`report` artifact of the `profile`
/// workload, enveloped as kind `espprof-report`).
#[derive(Debug, Clone, Serialize)]
pub struct EspprofReport {
    /// Workspace version that produced the report.
    pub version: String,
    /// Labels of the profiled configurations.
    pub configs: Vec<String>,
    /// Frames per run.
    pub frames: u64,
    /// Canonical engine name.
    pub engine: String,
    /// Per-mode profiled runs.
    pub runs: Vec<ProfiledRun>,
    /// Consistency violations (empty when `consistent`).
    pub violations: Vec<String>,
    /// Whether the profile agrees with the simulator.
    pub consistent: bool,
}

/// Checks the profile reports against the measured throughput; returns
/// the list of violated invariants (empty when consistent).
fn profile_violations(runs: &[ProfiledRun]) -> Vec<String> {
    let mut violations = Vec::new();
    for run in runs {
        if let Some(b) = &run.profile.run.bottleneck {
            if b.bound_cycles_per_frame > run.observed_cycles_per_frame * (1.0 + 1e-9) {
                violations.push(format!(
                    "{}: limiting-stage bound {:.1} cycles/frame exceeds observed {:.1}",
                    run.label, b.bound_cycles_per_frame, run.observed_cycles_per_frame
                ));
            }
        } else {
            violations.push(format!("{}: no bottleneck report produced", run.label));
        }
    }
    for a in runs {
        for b in runs {
            if a.frames_per_second > b.frames_per_second
                && a.observed_cycles_per_frame > b.observed_cycles_per_frame
            {
                violations.push(format!(
                    "throughput ordering disagrees with profile: {} measures \
                     {:.1} f/s vs {} at {:.1} f/s, yet profiles {:.1} vs {:.1} cycles/frame",
                    a.label,
                    a.frames_per_second,
                    b.label,
                    b.frames_per_second,
                    a.observed_cycles_per_frame,
                    b.observed_cycles_per_frame
                ));
            }
        }
    }
    violations
}

fn profile_response(
    req: &RunRequest,
    models: &TrainedModels,
    progress: Option<&dyn ProgressSink>,
) -> Result<RunResponse, RequestError> {
    let all = CaseApp::all_fig7_configs();
    let engine = req.soc_engine();
    let mut tracker = ProgressTracker::new(progress, (req.configs.len() * req.modes.len()) as u64);
    let mut runs = Vec::new();
    let mut app_runs = Vec::new();
    let mut labels = Vec::new();
    let mut summary = String::new();
    for &config in &req.configs {
        let app = all[config];
        labels.push(app.label());
        for mode_name in &req.modes {
            let mode = mode_from_name(mode_name).map_err(RequestError::Invalid)?;
            let mut session = TraceSession::profiled(None);
            let run =
                AppRun::execute_traced_on(&app, models, req.frames, mode, engine, &mut session)?;
            tracker.advance(
                &format!("{} {}", app.label(), mode.label()),
                run.metrics.frames,
                run.metrics.cycles,
            );
            let profile = session.profiles().first().cloned().ok_or_else(|| {
                RequestError::Run(ExperimentError::Grid(
                    "profiled run produced no profile report".into(),
                ))
            })?;
            let label = format!("{} {}", app.label(), mode.label());
            summary.push_str(&format!(
                "=== {label} ===\n{}measured throughput: {:.1} frames/s over {} frames\n\n",
                profile.render_text(),
                run.metrics.frames_per_second(),
                req.frames
            ));
            runs.push(ProfiledRun {
                label,
                mode: mode.label().to_string(),
                frames_per_second: run.metrics.frames_per_second(),
                observed_cycles_per_frame: profile.run.observed_cycles_per_frame(),
                limiting_stage: profile
                    .run
                    .bottleneck
                    .as_ref()
                    .map(|b| b.limiting_stage.clone()),
                speedup_ceiling: profile.run.bottleneck.as_ref().map(|b| b.speedup_ceiling),
                profile,
            });
            app_runs.push(run);
        }
    }
    let violations = profile_violations(&runs);
    let report = EspprofReport {
        version: env!("CARGO_PKG_VERSION").to_string(),
        configs: labels,
        frames: req.frames,
        engine: engine_name(engine).to_string(),
        consistent: violations.is_empty(),
        violations,
        runs,
    };
    let point_runs: Vec<PointRun> = app_runs.iter().map(PointRun::from_app_run).collect();
    let mut artifacts = BTreeMap::new();
    artifacts.insert("metrics".into(), metrics_artifact(&point_runs));
    artifacts.insert(
        "report".into(),
        envelope_json(
            "espprof-report",
            serde_json::to_value(&report).expect("report serializes"),
        ),
    );
    Ok(RunResponse {
        schema_version: SCHEMA_VERSION,
        workload: req.workload.label().to_string(),
        engine: report.engine.clone(),
        frames: req.frames,
        runs: point_runs,
        verdict: Verdict {
            ok: report.consistent,
            violations: report.violations.clone(),
        },
        summary_text: summary,
        notes: Vec::new(),
        artifacts,
    })
}

/// One spanned run in an [`EspspanReport`].
#[derive(Debug, Clone, Serialize)]
pub struct SpannedRun {
    /// `{config} {mode}` label.
    pub label: String,
    /// Execution mode label.
    pub mode: String,
    /// Measured throughput.
    pub frames_per_second: f64,
    /// Limiting stage per the span layer's aggregated critical path.
    pub span_limiting_stage: Option<String>,
    /// Limiting stage per the independent profiler's bottleneck report.
    pub profile_limiting_stage: Option<String>,
    /// The full span report.
    pub report: esp4ml::trace::SpanReport,
}

/// The espspan verdict report (`report` artifact of the `spans`
/// workload, enveloped as kind `espspan-report`).
#[derive(Debug, Clone, Serialize)]
pub struct EspspanReport {
    /// Workspace version that produced the report.
    pub version: String,
    /// Labels of the spanned configurations.
    pub configs: Vec<String>,
    /// Frames per run.
    pub frames: u64,
    /// Canonical engine name.
    pub engine: String,
    /// Per-mode spanned runs.
    pub runs: Vec<SpannedRun>,
    /// Consistency violations (empty when `consistent`).
    pub violations: Vec<String>,
    /// Whether the span layer agrees with the simulator and profiler.
    pub consistent: bool,
}

/// Checks every run's span report against the attribution invariant
/// and the independent profiler; returns the list of violations.
fn span_violations(runs: &[SpannedRun]) -> Vec<String> {
    let mut violations = Vec::new();
    for run in runs {
        if let Err(e) = run.report.check_attribution() {
            violations.push(format!(
                "{}: attribution invariant violated: {e}",
                run.label
            ));
        }
        if run.report.frames.is_empty() {
            violations.push(format!("{}: no frame span trees assembled", run.label));
        }
        match (&run.span_limiting_stage, &run.profile_limiting_stage) {
            (Some(s), Some(p)) if s != p => violations.push(format!(
                "{}: span critical path names stage \"{s}\" but the profiler's \
                 bottleneck report names \"{p}\"",
                run.label
            )),
            (None, Some(p)) => violations.push(format!(
                "{}: no critical path despite profiler bottleneck \"{p}\"",
                run.label
            )),
            _ => {}
        }
    }
    violations
}

fn spans_response(
    req: &RunRequest,
    models: &TrainedModels,
    progress: Option<&dyn ProgressSink>,
) -> Result<RunResponse, RequestError> {
    let all = CaseApp::all_fig7_configs();
    let engine = req.soc_engine();
    let mut tracker = ProgressTracker::new(progress, (req.configs.len() * req.modes.len()) as u64);
    let mut runs = Vec::new();
    let mut app_runs = Vec::new();
    let mut labels = Vec::new();
    let mut summary = String::new();
    for &config in &req.configs {
        let app = all[config];
        labels.push(app.label());
        for mode_name in &req.modes {
            let mode = mode_from_name(mode_name).map_err(RequestError::Invalid)?;
            // The spanned+profiled session feeds one event stream to
            // both collectors, so the agreement check compares two
            // independently-maintained analyses of the same run.
            let mut session = TraceSession::spanned(None, true);
            let run =
                AppRun::execute_traced_on(&app, models, req.frames, mode, engine, &mut session)?;
            tracker.advance(
                &format!("{} {}", app.label(), mode.label()),
                run.metrics.frames,
                run.metrics.cycles,
            );
            let report = session.span_reports().first().cloned().ok_or_else(|| {
                RequestError::Run(ExperimentError::Grid(
                    "spanned run produced no span report".into(),
                ))
            })?;
            let profile_limiting_stage = session
                .profiles()
                .first()
                .and_then(|p| p.run.bottleneck.as_ref())
                .map(|b| b.limiting_stage.clone());
            let label = format!("{} {}", app.label(), mode.label());
            summary.push_str(&format!(
                "=== {label} ===\n{}measured throughput: {:.1} frames/s over {} frames\n\n",
                report.render_text(),
                run.metrics.frames_per_second(),
                req.frames
            ));
            runs.push(SpannedRun {
                label,
                mode: mode.label().to_string(),
                frames_per_second: run.metrics.frames_per_second(),
                span_limiting_stage: report
                    .critical_path
                    .as_ref()
                    .map(|cp| cp.limiting_stage.clone()),
                profile_limiting_stage,
                report,
            });
            app_runs.push(run);
        }
    }
    let violations = span_violations(&runs);
    let flame: String = runs.iter().map(|r| r.report.render_flame()).collect();
    let report = EspspanReport {
        version: env!("CARGO_PKG_VERSION").to_string(),
        configs: labels,
        frames: req.frames,
        engine: engine_name(engine).to_string(),
        consistent: violations.is_empty(),
        violations,
        runs,
    };
    let point_runs: Vec<PointRun> = app_runs.iter().map(PointRun::from_app_run).collect();
    let mut artifacts = BTreeMap::new();
    artifacts.insert("metrics".into(), metrics_artifact(&point_runs));
    artifacts.insert("flame".into(), flame);
    artifacts.insert(
        "report".into(),
        envelope_json(
            "espspan-report",
            serde_json::to_value(&report).expect("report serializes"),
        ),
    );
    Ok(RunResponse {
        schema_version: SCHEMA_VERSION,
        workload: req.workload.label().to_string(),
        engine: report.engine.clone(),
        frames: req.frames,
        runs: point_runs,
        verdict: Verdict {
            ok: report.consistent,
            violations: report.violations.clone(),
        },
        summary_text: summary,
        notes: Vec::new(),
        artifacts,
    })
}

fn faults_response(
    req: &RunRequest,
    seeds: u64,
    models: &TrainedModels,
    progress: Option<&dyn ProgressSink>,
) -> Result<RunResponse, RequestError> {
    let engine = req.soc_engine();
    let seed_list: Vec<u64> = (1..=seeds).collect();
    let report = CampaignReport::generate(models, &seed_list, req.frames, engine)?;
    // The campaign generator is a single call; progress is published
    // per case in the report's deterministic order once it returns.
    let mut tracker = ProgressTracker::new(progress, report.cases.len() as u64);
    for case in &report.cases {
        tracker.advance(
            &format!("{} {} seed {}", case.config, case.mode, case.seed),
            report.frames,
            case.cycles,
        );
    }
    let violations: Vec<String> = report
        .cases
        .iter()
        .filter(|c| c.status == "failed")
        .map(|c| format!("unabsorbed fault: {} {} seed {}", c.config, c.mode, c.seed))
        .collect();
    let campaign = report
        .to_json()
        .map_err(|e| RequestError::Run(ExperimentError::Grid(e.to_string())))?;
    let mut artifacts = BTreeMap::new();
    artifacts.insert("campaign".into(), campaign);
    Ok(RunResponse {
        schema_version: SCHEMA_VERSION,
        workload: req.workload.label().to_string(),
        engine: engine_name(engine).to_string(),
        frames: req.frames,
        runs: Vec::new(),
        verdict: Verdict {
            ok: violations.is_empty(),
            violations,
        },
        summary_text: report.to_string(),
        notes: Vec::new(),
        artifacts,
    })
}

// ---------------------------------------------------------------------------
// espcheck lint targets
// ---------------------------------------------------------------------------

/// One linted target and its findings.
#[derive(Debug, Serialize)]
pub struct LintTarget {
    /// What was linted.
    pub name: String,
    /// Error findings.
    pub errors: usize,
    /// Warning findings.
    pub warnings: usize,
    /// The typed diagnostics.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintTarget {
    /// Packages a lint report under a target name.
    pub fn new(name: impl Into<String>, report: Report) -> LintTarget {
        LintTarget {
            name: name.into(),
            errors: report.error_count(),
            warnings: report.warning_count(),
            diagnostics: report.diagnostics,
        }
    }
}

/// The espcheck verdict report (`report` artifact of the `check`
/// workload, enveloped as kind `espcheck-report`).
#[derive(Debug, Serialize)]
pub struct EspcheckReport {
    /// Workspace version that produced the report.
    pub version: String,
    /// Linted targets with their findings.
    pub targets: Vec<LintTarget>,
    /// Error findings across all targets.
    pub total_errors: usize,
    /// Warning findings across all targets.
    pub total_warnings: usize,
    /// Whether no target had errors (warnings keep the lint clean).
    pub clean: bool,
}

impl EspcheckReport {
    /// Folds lint targets into the report.
    pub fn from_targets(targets: Vec<LintTarget>) -> EspcheckReport {
        let total_errors: usize = targets.iter().map(|t| t.errors).sum();
        let total_warnings: usize = targets.iter().map(|t| t.warnings).sum();
        EspcheckReport {
            version: env!("CARGO_PKG_VERSION").to_string(),
            total_errors,
            total_warnings,
            clean: total_errors == 0,
            targets,
        }
    }

    /// Renders the per-target `ok`/`FAIL` lines plus the totals line —
    /// the espcheck stdout format.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for target in &self.targets {
            if target.diagnostics.is_empty() {
                let _ = writeln!(out, "ok   {}", target.name);
            } else {
                let _ = writeln!(out, "FAIL {}", target.name);
                for diag in &target.diagnostics {
                    let _ = writeln!(out, "  {diag}");
                }
            }
        }
        let _ = writeln!(
            out,
            "espcheck: {} error(s), {} warning(s) across {} target(s)",
            self.total_errors,
            self.total_warnings,
            self.targets.len()
        );
        out
    }

    /// The enveloped JSON artifact (kind `espcheck-report`).
    pub fn to_json(&self) -> String {
        envelope_json(
            "espcheck-report",
            serde_json::to_value(self).expect("report serializes"),
        )
    }
}

/// Lints the built-in floorplans and every Fig. 7 application mapping —
/// the espcheck default target set.
pub fn lint_builtins() -> Vec<LintTarget> {
    let mut targets = Vec::new();
    let soc1 = SocConfigFile::soc1();
    targets.push(LintTarget::new(
        "builtin soc1 floorplan",
        lint_config(&soc1),
    ));
    // SoC-2 is assembled programmatically; lint the built artifact.
    let models = TrainedModels::untrained();
    let soc2_view = build_soc2(&models)
        .ok()
        .map(|soc| FloorplanView::from_soc(&soc));
    for app in CaseApp::all_fig7_configs() {
        let name = format!("fig7 {} ({:?})", app.label(), app.soc_id());
        let dataflow = app.dataflow();
        let report = match app.soc_id() {
            SocId::Soc1 => lint_all(&soc1, &dataflow),
            SocId::Soc2 => match &soc2_view {
                Some(view) => {
                    let mut r = lint_dataflow(&dataflow);
                    r.merge(lint_mapping(view, &dataflow));
                    r.normalize();
                    r
                }
                None => {
                    let mut r = Report::new();
                    r.push(Diagnostic::error(
                        esp4ml_check::codes::MISSING_REQUIRED_TILE,
                        "soc2",
                        "the built-in SoC-2 floorplan failed to build",
                    ));
                    r
                }
            },
        };
        targets.push(LintTarget::new(name, report));
    }
    targets
}

fn check_response(
    req: &RunRequest,
    progress: Option<&dyn ProgressSink>,
) -> Result<RunResponse, RequestError> {
    let targets = match &req.soc_config {
        Some(config) => vec![LintTarget::new("request soc_config", lint_config(config))],
        None => lint_builtins(),
    };
    // Lint targets simulate nothing, so frames/cycles stay zero.
    let mut tracker = ProgressTracker::new(progress, targets.len() as u64);
    for target in &targets {
        tracker.advance(&target.name, 0, 0);
    }
    let report = EspcheckReport::from_targets(targets);
    let violations: Vec<String> = report
        .targets
        .iter()
        .flat_map(|t| t.diagnostics.iter())
        .filter(|d| d.severity == esp4ml_check::Severity::Error)
        .map(|d| d.to_string())
        .collect();
    let summary_text = report.render_text();
    let mut artifacts = BTreeMap::new();
    artifacts.insert("report".into(), report.to_json());
    Ok(RunResponse {
        schema_version: SCHEMA_VERSION,
        workload: req.workload.label().to_string(),
        engine: engine_name(req.soc_engine()).to_string(),
        frames: req.frames,
        runs: Vec::new(),
        verdict: Verdict {
            ok: report.clean,
            violations,
        },
        summary_text,
        notes: Vec::new(),
        artifacts,
    })
}

// ---------------------------------------------------------------------------
// deployment validation
// ---------------------------------------------------------------------------

/// The espdeploy verdict report (`report` artifact of the `deployment`
/// workload, enveloped as kind `espdeploy-report`). An admitted
/// deployment is re-analyzed for its structured bandwidth picture, then
/// every tenant is run solo through the simulator to check that the
/// static demand model over-approximates measured traffic.
#[derive(Debug, Clone, Serialize)]
pub struct EspdeployReport {
    /// Workspace version that produced the report.
    pub version: String,
    /// Deployment name.
    pub deployment: String,
    /// Tenant names, in declaration order.
    pub tenants: Vec<String>,
    /// Canonical engine name.
    pub engine: String,
    /// Warnings that survived admission (errors cannot reach here).
    pub diagnostics: Vec<Diagnostic>,
    /// The static per-link utilization and per-tenant slowdown bounds.
    pub bandwidth: Option<esp4ml_check::bw::BandwidthAnalysis>,
    /// The static-versus-simulated conservativeness validation.
    pub validation: deploy::DeploymentValidation,
    /// Whether the static model dominated the simulator everywhere.
    pub conservative: bool,
}

fn deployment_response(
    req: &RunRequest,
    progress: Option<&dyn ProgressSink>,
) -> Result<RunResponse, RequestError> {
    let deployment = req
        .required_deployment()
        .map_err(|e| RequestError::Invalid(e.to_string()))?;
    let engine = req.soc_engine();
    let analysis = deploy::lint_deployment(deployment);
    let validation = deploy::validate_against_simulator(deployment, req.frames, engine)
        .map_err(|e| RequestError::Run(ExperimentError::Grid(e.to_string())))?;
    let mut tracker = ProgressTracker::new(progress, validation.tenants.len() as u64);
    for t in &validation.tenants {
        tracker.advance(&t.tenant, t.frames, t.cycles);
    }
    let mut violations = Vec::new();
    for t in &validation.tenants {
        if !t.conservative {
            violations.push(format!(
                "tenant {}: measured link traffic exceeds the static demand model",
                t.tenant
            ));
        }
    }
    if !validation.bounds_conservative {
        violations.push(
            "a measured slowdown bound exceeds its static counterpart; \
             the static model is not an over-approximation"
                .to_string(),
        );
    }
    let conservative = validation.conservative();
    let mut summary = format!(
        "deployment {}: {} tenant(s) admitted; static demand model {} \
         the simulator over {} frame(s) per tenant ({})\n",
        deployment.name,
        deployment.tenants.len(),
        if conservative {
            "dominates"
        } else {
            "UNDERESTIMATES"
        },
        validation.frames,
        validation.engine,
    );
    if let Some(bw) = &analysis.bandwidth {
        for bound in &bw.tenants {
            summary.push_str(&format!(
                "  tenant {}: worst-case slowdown bound {:.3}x\n",
                bound.name, bound.slowdown_bound
            ));
        }
    }
    let report = EspdeployReport {
        version: env!("CARGO_PKG_VERSION").to_string(),
        deployment: deployment.name.clone(),
        tenants: deployment.tenants.iter().map(|t| t.name.clone()).collect(),
        engine: engine_name(engine).to_string(),
        diagnostics: analysis.report.diagnostics.clone(),
        bandwidth: analysis.bandwidth,
        validation,
        conservative,
    };
    let mut artifacts = BTreeMap::new();
    artifacts.insert(
        "report".into(),
        envelope_json(
            "espdeploy-report",
            serde_json::to_value(&report).expect("report serializes"),
        ),
    );
    Ok(RunResponse {
        schema_version: SCHEMA_VERSION,
        workload: req.workload.label().to_string(),
        engine: engine_name(engine).to_string(),
        frames: req.frames,
        runs: Vec::new(),
        verdict: Verdict {
            ok: conservative,
            violations,
        },
        summary_text: summary,
        notes: Vec::new(),
        artifacts,
    })
}

// ---------------------------------------------------------------------------
// CLI bridge
// ---------------------------------------------------------------------------

impl crate::HarnessArgs {
    /// Builds the [`RunRequest`] these command-line options describe
    /// for `workload` — the bridge that makes every binary a thin
    /// client of [`execute`]. Loads the `--faults` plan file inline.
    ///
    /// # Errors
    ///
    /// File or JSON failures loading the fault plan, as a printable
    /// message (a usage error: exit 2).
    pub fn to_request(&self, workload: WorkloadKind) -> Result<RunRequest, String> {
        let configs = if self.all {
            (0..workload.config_space().len()).collect()
        } else {
            self.configs.clone()
        };
        Ok(RunRequest {
            schema_version: SCHEMA_VERSION,
            workload,
            configs,
            modes: self.modes.iter().map(|m| m.label().to_string()).collect(),
            frames: self.frames,
            engine: engine_name(self.engine).to_string(),
            jobs: self.jobs,
            fork_prefix: self.fork_prefix,
            sanitize: self.sanitize,
            fault_plan: self.fault_plan()?,
            soc_config: None,
            deployment: None,
            observe: ObserveOpts {
                trace: self.trace.is_some(),
                profile: self.profile.is_some(),
                spans: self.spans.is_some(),
                sample_every: self.sample_every,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(workload: WorkloadKind) -> RunRequest {
        let mut r = RunRequest::new(workload);
        r.frames = 2;
        r
    }

    #[test]
    fn normalization_resolves_engine_aliases_and_defaults() {
        let mut r = req(WorkloadKind::Profile);
        r.engine = "event-driven".into();
        let n = r.normalized();
        assert_eq!(n.engine, "event");
        assert_eq!(n.configs, vec![3]);
        assert_eq!(n.modes, vec!["pipe".to_string(), "p2p".to_string()]);
        let r2 = req(WorkloadKind::Fig7);
        assert_eq!(r2.normalized().engine, "event");
        assert!(r2.normalized().configs.is_empty(), "figures keep empty=all");
    }

    #[test]
    fn validation_rejects_bad_requests() {
        let mut r = req(WorkloadKind::Fig7);
        r.schema_version = 99;
        assert!(r.validate().unwrap_err().contains("schema_version"));

        let mut r = req(WorkloadKind::Fig7);
        r.engine = "warp".into();
        assert!(r.validate().unwrap_err().contains("unknown engine"));

        let mut r = req(WorkloadKind::Fig7);
        r.frames = 0;
        assert!(r.validate().unwrap_err().contains("frames"));

        let mut r = req(WorkloadKind::Fig7);
        r.configs = vec![999];
        assert!(r.validate().unwrap_err().contains("out of range"));

        let mut r = req(WorkloadKind::Fig7);
        r.modes = vec!["pipe".into()];
        assert!(r.validate().unwrap_err().contains("fixed by the fig7 grid"));

        let mut r = req(WorkloadKind::Faults { seeds: 0 });
        assert!(r.validate().unwrap_err().contains("seeds"));
        r = req(WorkloadKind::Faults { seeds: 2 });
        assert!(r.validate().is_ok());

        let mut r = req(WorkloadKind::Fig7);
        r.sanitize = true;
        r.observe.trace = true;
        assert!(r.validate().unwrap_err().contains("sanitize"));

        let mut r = req(WorkloadKind::Fig7);
        r.observe.sample_every = Some(100);
        assert!(r.validate().unwrap_err().contains("requires trace"));

        // check ignores frames entirely.
        let mut r = RunRequest::new(WorkloadKind::Check);
        r.frames = 0;
        assert!(r.validate().is_ok());
    }

    #[test]
    fn cache_key_ignores_jobs_and_engine_alias() {
        let a = req(WorkloadKind::Fig7);
        let mut b = a.clone();
        b.jobs = 7;
        b.fork_prefix = true;
        assert_eq!(a.cache_key(), b.cache_key());
        let mut c = a.clone();
        c.engine = "event-driven".into();
        assert_eq!(a.cache_key(), c.cache_key());
        let mut d = a.clone();
        d.engine = "naive".into();
        assert_ne!(a.cache_key(), d.cache_key(), "engine is part of the key");
        let mut e = a.clone();
        e.frames = 3;
        assert_ne!(a.cache_key(), e.cache_key());
    }

    #[test]
    fn canonical_json_sorts_keys_recursively() {
        use serde::Map;
        let mut inner = Map::new();
        inner.insert("zeta".into(), Value::from(1u64));
        inner.insert("alpha".into(), Value::from(2u64));
        let mut outer = Map::new();
        outer.insert("b".into(), Value::Object(inner));
        outer.insert("a".into(), Value::from("x"));
        let text = canonical_json(&Value::Object(outer));
        assert_eq!(text, r#"{"a":"x","b":{"alpha":2,"zeta":1}}"#);
    }

    #[test]
    fn admission_flags_broken_config_before_simulation() {
        let broken = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../configs/broken_dup_tile.json"
        ))
        .expect("seeded broken config");
        let mut r = req(WorkloadKind::Fig7);
        r.soc_config = Some(SocConfigFile::from_json(&broken).expect("config parses"));
        let report = admission(&r);
        assert!(report.has_errors());
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"E0101"), "{codes:?}");
        let models = TrainedModels::untrained();
        match execute(&r, &models) {
            Err(RequestError::Rejected(rep)) => assert!(rep.has_errors()),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn admission_lints_fault_plans_against_the_selected_grid() {
        use esp4ml_fault::FaultSpec;
        let mut r = req(WorkloadKind::Fig7);
        r.fault_plan = Some(FaultPlan::new(1).with(FaultSpec::transient_hang("no-such-device", 0)));
        let report = admission(&r);
        assert!(report.has_errors(), "unknown device must be an E06xx error");
    }

    #[test]
    fn execute_runs_a_single_fig8_point() {
        let mut r = req(WorkloadKind::Fig8);
        r.configs = vec![0];
        let models = TrainedModels::untrained();
        let resp = execute(&r, &models).expect("runs");
        assert_eq!(resp.runs.len(), 1);
        assert!(resp.verdict.ok);
        assert!(resp.artifacts.contains_key("metrics"));
        assert!(
            !resp.artifacts.contains_key("figure"),
            "subset runs skip figure assembly"
        );
        let metrics = resp.artifacts.get("metrics").unwrap();
        let value = serde_json::parse_value(metrics).unwrap();
        let payload =
            esp4ml::trace::schema::open_envelope(value, "run-metrics").expect("enveloped");
        assert_eq!(payload.as_array().unwrap().len(), 1);
    }

    #[test]
    fn execute_is_deterministic_across_engines_and_calls() {
        let mut r = req(WorkloadKind::Fig8);
        r.configs = vec![0];
        let models = TrainedModels::untrained();
        let a = execute(&r, &models).expect("runs");
        let b = execute(&r, &models).expect("runs");
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "identical requests, identical bytes"
        );
        let mut naive = r.clone();
        naive.engine = "naive".into();
        let c = execute(&naive, &models).expect("runs");
        assert_eq!(
            a.runs[0].metrics, c.runs[0].metrics,
            "engines agree on metrics"
        );
    }

    /// The progress line sequence for a request, as published bytes.
    fn progress_lines(r: &RunRequest, models: &TrainedModels) -> Vec<String> {
        let sink = CollectingSink::new();
        execute_with_progress(r, models, Some(&sink)).expect("runs");
        sink.snapshots()
            .iter()
            .map(Progress::to_json_line)
            .collect()
    }

    #[test]
    fn progress_snapshots_are_monotonic_and_end_at_totals() {
        let r = req(WorkloadKind::Fig8);
        let models = TrainedModels::untrained();
        let sink = CollectingSink::new();
        execute_with_progress(&r, &models, Some(&sink)).expect("runs");
        let snaps = sink.snapshots();
        assert_eq!(snaps.len(), 6, "one snapshot per fig8 grid point");
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.points_done, i as u64 + 1);
            assert_eq!(s.points_total, 6);
            assert_eq!(s.frames_done, (i as u64 + 1) * r.frames);
            if i > 0 {
                assert!(s.cycles > snaps[i - 1].cycles, "cycles accumulate");
            }
        }
        let last = snaps.last().unwrap();
        assert!(last.is_final());
        assert!(!snaps[0].is_final());
    }

    #[test]
    fn progress_sequence_is_byte_identical_across_engines_and_jobs() {
        let models = TrainedModels::untrained();
        let mut r = req(WorkloadKind::Fig8);
        r.jobs = 1;
        let serial = progress_lines(&r, &models);
        r.jobs = 4;
        let parallel = progress_lines(&r, &models);
        assert_eq!(serial, parallel, "parallel publishes in grid order");
        r.engine = "naive".into();
        let naive = progress_lines(&r, &models);
        assert_eq!(serial, naive, "engines publish identical snapshots");
    }

    #[test]
    fn progress_covers_every_workload_kind() {
        let models = TrainedModels::untrained();
        for workload in [
            WorkloadKind::Profile,
            WorkloadKind::Spans,
            WorkloadKind::Faults { seeds: 1 },
            WorkloadKind::Check,
        ] {
            let r = req(workload);
            let sink = CollectingSink::new();
            execute_with_progress(&r, &models, Some(&sink)).expect("runs");
            let snaps = sink.snapshots();
            assert!(!snaps.is_empty(), "{workload:?} publishes progress");
            let last = snaps.last().unwrap();
            assert!(last.is_final(), "{workload:?} ends at totals");
            assert!(
                snaps.iter().all(|s| s.points_total == last.points_total),
                "{workload:?} totals are stable"
            );
        }
    }

    /// A two-tenant deployment of disjoint soc1 pipelines.
    fn feasible_deployment() -> Deployment {
        let tenant = |name: &str, stages: &[&[&str]]| esp4ml::deploy::TenantSpec {
            name: name.to_string(),
            stages: stages
                .iter()
                .map(|s| s.iter().map(|d| d.to_string()).collect())
                .collect(),
            mode: "p2p".to_string(),
            frame_rate_hz: 30.0,
            routing: esp4ml_check::cdg::Routing::Xy,
            shared_devices: Vec::new(),
        };
        Deployment {
            name: "smoke".to_string(),
            soc: SocConfigFile::soc1(),
            tenants: vec![
                tenant("vision", &[&["nv0"], &["cl0"]]),
                tenant("denoise", &[&["denoiser"], &["cl_de"]]),
            ],
        }
    }

    #[test]
    fn deployment_workload_requires_and_gates_the_attachment() {
        let r = req(WorkloadKind::Deployment);
        assert!(r.validate().unwrap_err().contains("deployment attachment"));
        let mut r = req(WorkloadKind::Fig7);
        r.deployment = Some(feasible_deployment());
        assert!(r.validate().unwrap_err().contains("not meaningful"));
        let mut r = req(WorkloadKind::Deployment);
        r.deployment = Some(feasible_deployment());
        assert!(r.validate().is_ok());
        r.soc_config = Some(SocConfigFile::soc1());
        assert!(r.validate().unwrap_err().contains("soc_config"));
    }

    #[test]
    fn deployment_admission_rejects_lease_conflicts_before_simulating() {
        let mut d = feasible_deployment();
        // Both tenants now claim cl0 without declaring it shared.
        d.tenants[1].stages[1] = vec!["cl0".to_string()];
        let mut r = req(WorkloadKind::Deployment);
        r.deployment = Some(d);
        let report = admission(&r);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"E0701"), "{codes:?}");
        let models = TrainedModels::untrained();
        match execute(&r, &models) {
            Err(RequestError::Rejected(rep)) => assert!(rep.has_errors()),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn deployment_workload_validates_conservatively_and_publishes_progress() {
        let mut r = req(WorkloadKind::Deployment);
        r.deployment = Some(feasible_deployment());
        let models = TrainedModels::untrained();
        let sink = CollectingSink::new();
        let resp = execute_with_progress(&r, &models, Some(&sink)).expect("runs");
        assert!(resp.verdict.ok, "{:?}", resp.verdict.violations);
        assert!(resp.artifacts.contains_key("report"));
        let value = serde_json::parse_value(resp.artifacts.get("report").unwrap()).unwrap();
        let payload =
            esp4ml::trace::schema::open_envelope(value, "espdeploy-report").expect("enveloped");
        assert_eq!(payload["conservative"], Value::from(true));
        let snaps = sink.snapshots();
        assert_eq!(snaps.len(), 2, "one snapshot per tenant");
        assert!(snaps.last().unwrap().is_final());
    }

    #[test]
    fn check_workload_reports_on_inline_config() {
        let mut r = RunRequest::new(WorkloadKind::Check);
        let broken = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../configs/broken_dup_tile.json"
        ))
        .expect("seeded broken config");
        r.soc_config = Some(SocConfigFile::from_json(&broken).expect("config parses"));
        let models = TrainedModels::untrained();
        // A broken lint subject is NOT an admission rejection for check:
        // reporting on it is the job.
        let resp = execute(&r, &models).expect("check runs");
        assert!(!resp.verdict.ok);
        assert!(resp.verdict.violations.iter().any(|v| v.contains("E0101")));
        assert!(resp.artifacts.contains_key("report"));
    }
}
