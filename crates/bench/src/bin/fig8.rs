//! Regenerates the paper's Fig. 8: relative DRAM accesses with and
//! without p2p communication for the three applications.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin fig8 -- --frames 64
//! ```

use esp4ml_bench::cli::{self, HarnessSpec, FIGURE_FLAGS};
use esp4ml_bench::{observe, WorkloadKind};

fn main() {
    let spec = HarnessSpec::new(
        "fig8",
        "Fig. 8 — DRAM accesses with and without p2p communication",
        FIGURE_FLAGS,
    );
    let args =
        cli::parse(&spec, std::env::args().skip(1)).unwrap_or_else(|e| cli::exit_on_error(e));
    let response = observe::run_workload("fig8", &args, WorkloadKind::Fig8);
    println!("{}", response.summary_text);
    println!("(measured over {} frames per application)", args.frames);
    println!("paper shape: p2p reduces DRAM accesses by 2x-3x for all three apps");
    observe::write_artifacts_or_exit("fig8", &args, &response);
}
