//! Regenerates the paper's Fig. 8: relative DRAM accesses with and
//! without p2p communication for the three applications.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin fig8 -- --frames 64
//! ```

use esp4ml::experiments::Fig8;
use esp4ml_bench::HarnessArgs;

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let models = args.models();
    let faults = match args.fault_config() {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Some(fc) = &faults {
        if HarnessArgs::lint_faults(fc, &Fig8::grid()) {
            std::process::exit(2);
        }
    }
    let mut session = esp4ml_bench::observe::session_from_args(&args);
    let result = match session.as_mut() {
        Some(session) => Fig8::generate_traced(&models, args.frames, session),
        None => esp4ml_bench::parallel::run_grid(
            &Fig8::grid(),
            &models,
            args.frames,
            args.engine,
            args.jobs,
            args.sanitize,
            faults.as_ref(),
        )
        .and_then(|runs| {
            if args.sanitize {
                eprintln!("sanitizer: clean across {} runs", runs.len());
            }
            if faults.is_some() {
                let (retries, failovers, degraded) = runs.iter().fold((0, 0, 0), |acc, r| {
                    (
                        acc.0 + r.metrics.retries,
                        acc.1 + r.metrics.failovers,
                        acc.2 + u64::from(r.software_fallback),
                    )
                });
                eprintln!(
                    "faults: {retries} retries, {failovers} failovers, \
                     {degraded} software-degraded run(s) across {} runs",
                    runs.len()
                );
            }
            Fig8::assemble(&runs)
        }),
    };
    match result {
        Ok(fig) => {
            println!("{fig}");
            println!("(measured over {} frames per application)", args.frames);
            println!("paper shape: p2p reduces DRAM accesses by 2x-3x for all three apps");
            if let Some(session) = session.as_ref() {
                if let Err(e) = esp4ml_bench::observe::finish_session(&args, session) {
                    eprintln!("failed to write trace artifacts: {e}");
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("fig8 failed: {e}");
            std::process::exit(1);
        }
    }
}
