//! Reproduces the §VI model-quality results: the classifier's accuracy
//! (paper: 92 % on SVHN) and the denoiser's reconstruction error (paper:
//! 3.1 %), on the synthetic SVHN-like dataset, plus the accuracy retained
//! after HLS4ML 16-bit fixed-point quantization.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin training -- --samples 4000 --epochs 15
//! ```

use esp4ml::apps::TrainedModels;
use esp4ml::apps::{CLASSIFIER_REUSE, DENOISER_REUSE};
use esp4ml::flow::Esp4mlFlow;
use esp4ml_bench::cli::{self, HarnessSpec, TRAINING_FLAGS};
use esp4ml_nn::Matrix;
use esp4ml_vision::SvhnGenerator;

fn main() {
    let spec = HarnessSpec::new(
        "training",
        "§VI model quality: classifier accuracy and denoiser error",
        TRAINING_FLAGS,
    );
    let mut args =
        cli::parse(&spec, std::env::args().skip(1)).unwrap_or_else(|e| cli::exit_on_error(e));
    args.train = true;
    let models: TrainedModels = args.models();

    println!("MODEL QUALITY (synthetic SVHN-like dataset)");
    println!(
        "  classifier accuracy (float):     {:>6.1}%   (paper, real SVHN: 92%)",
        100.0 * models.classifier_accuracy.unwrap_or(0.0)
    );
    println!(
        "  denoiser reconstruction error:   {:>6.1}%   (paper, real SVHN: 3.1%)",
        100.0 * models.denoiser_error.unwrap_or(0.0)
    );

    // Quantization fidelity: agreement between the float classifier and
    // the HLS4ML 16-bit fixed-point accelerator.
    let flow = Esp4mlFlow::new();
    let nn = flow
        .compile_ml(&models.classifier, "clf", &CLASSIFIER_REUSE)
        .expect("classifier compiles");
    let _den = flow
        .compile_ml(&models.denoiser, "den", &DENOISER_REUSE)
        .expect("denoiser compiles");
    let mut gen = SvhnGenerator::new(999);
    let n = 250;
    let mut agree = 0;
    let mut correct_fixed = 0;
    for _ in 0..n {
        let s = gen.sample();
        let x = Matrix::from_vec(1, s.image.len(), s.image.clone());
        let float_pred = models.classifier.predict_classes(&x)[0];
        let fixed_pred = nn.classify(&s.image);
        if float_pred == fixed_pred {
            agree += 1;
        }
        if fixed_pred == s.label {
            correct_fixed += 1;
        }
    }
    println!(
        "  fixed-point vs float agreement:  {:>6.1}%   over {n} fresh samples",
        100.0 * agree as f64 / n as f64
    );
    println!(
        "  fixed-point accelerator accuracy:{:>6.1}%",
        100.0 * correct_fixed as f64 / n as f64
    );
}
