//! `espspan` — the span-tracing reporter: runs accelerator
//! configurations across execution modes with the causal frame-level
//! span collector attached, prints the per-frame span trees and the
//! aggregated critical path per run, and verifies the span layer
//! against the simulator and the profiler.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin espspan -- \
//!     --config 3 --frames 8 --mode pipe --mode p2p --json espspan.json
//! ```
//!
//! Two consistency checks gate the exit status (exit 1 on violation,
//! exit 2 on bad arguments — the same contract as `espprof`), which is
//! what lets CI smoke-test the span assembler against the simulator:
//!
//! 1. **Attribution invariant** — on every frame of every run, the span
//!    cycles sum exactly to the frame's end-to-end latency
//!    ([`SpanReport::check_attribution`]); no cycle is lost or double
//!    counted.
//! 2. **Critical-path agreement** — the aggregated critical path names
//!    the same limiting stage as an independently-fed
//!    [`ProfileCollector`](esp4ml::trace::ProfileCollector)'s
//!    bottleneck report, so `espspan` and `espprof` can never disagree
//!    about what bounds throughput.
//!
//! `--all` sweeps every Fig. 7 configuration instead of one `--config`.

use esp4ml::apps::{CaseApp, TrainedModels};
use esp4ml::experiments::AppRun;
use esp4ml::trace::SpanReport;
use esp4ml::TraceSession;
use esp4ml_runtime::ExecMode;
use esp4ml_soc::SocEngine;
use serde::Serialize;
use std::path::PathBuf;

#[derive(Debug, Serialize)]
struct CaseRun {
    label: String,
    mode: String,
    frames_per_second: f64,
    /// Limiting stage per the span layer's aggregated critical path.
    span_limiting_stage: Option<String>,
    /// Limiting stage per the independent profiler's bottleneck report.
    profile_limiting_stage: Option<String>,
    report: SpanReport,
}

#[derive(Debug, Serialize)]
struct EspspanReport {
    version: String,
    configs: Vec<String>,
    frames: u64,
    engine: String,
    runs: Vec<CaseRun>,
    violations: Vec<String>,
    consistent: bool,
}

struct Args {
    frames: u64,
    configs: Vec<usize>,
    modes: Vec<ExecMode>,
    engine: SocEngine,
    json: Option<PathBuf>,
    flame: Option<PathBuf>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut out = Args {
        frames: 8,
        configs: Vec::new(),
        modes: Vec::new(),
        engine: SocEngine::default(),
        json: None,
        flame: None,
    };
    let mut all = false;
    let configs = CaseApp::all_fig7_configs();
    let mut it = args;
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--frames" => {
                out.frames = grab("--frames")?
                    .parse()
                    .map_err(|e| format!("--frames: {e}"))?
            }
            "--config" => {
                out.configs.push(
                    grab("--config")?
                        .parse()
                        .map_err(|e| format!("--config: {e}"))?,
                );
            }
            "--all" => all = true,
            "--mode" => {
                let v = grab("--mode")?;
                out.modes.push(match v.as_str() {
                    "base" => ExecMode::Base,
                    "pipe" => ExecMode::Pipe,
                    "p2p" => ExecMode::P2p,
                    other => return Err(format!("--mode: unknown mode {other}")),
                });
            }
            "--engine" => {
                let v = grab("--engine")?;
                out.engine = match v.as_str() {
                    "naive" => SocEngine::Naive,
                    "event" | "event-driven" => SocEngine::EventDriven,
                    other => return Err(format!("--engine: unknown engine {other}")),
                };
            }
            "--json" => out.json = Some(PathBuf::from(grab("--json")?)),
            "--flame" => out.flame = Some(PathBuf::from(grab("--flame")?)),
            other => {
                return Err(format!(
                    "unknown option {other}; supported: --frames N --config IDX (repeatable) \
                     --all --mode base|pipe|p2p (repeatable) --engine naive|event \
                     --json PATH --flame PATH"
                ))
            }
        }
    }
    if out.frames == 0 {
        return Err("--frames must be at least 1".into());
    }
    if all {
        if !out.configs.is_empty() {
            return Err("--all and --config are mutually exclusive".into());
        }
        out.configs = (0..configs.len()).collect();
    }
    if out.configs.is_empty() {
        out.configs = vec![3]; // 1De+1Cl: the paper's denoiser-classifier pipeline
    }
    if let Some(&bad) = out.configs.iter().find(|&&c| c >= configs.len()) {
        let list: Vec<String> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{i}={}", c.label()))
            .collect();
        return Err(format!(
            "--config {bad}: index out of range; {}",
            list.join(" ")
        ));
    }
    if out.modes.is_empty() {
        // Default pair: software pipeline through DRAM vs hardware p2p.
        out.modes = vec![ExecMode::Pipe, ExecMode::P2p];
    }
    Ok(out)
}

fn engine_name(engine: SocEngine) -> &'static str {
    match engine {
        SocEngine::Naive => "naive",
        SocEngine::EventDriven => "event-driven",
    }
}

/// Checks every run's span report against the attribution invariant
/// and the independent profiler; returns the list of violations.
fn consistency_violations(runs: &[CaseRun]) -> Vec<String> {
    let mut violations = Vec::new();
    for run in runs {
        if let Err(e) = run.report.check_attribution() {
            violations.push(format!(
                "{}: attribution invariant violated: {e}",
                run.label
            ));
        }
        if run.report.frames.is_empty() {
            violations.push(format!("{}: no frame span trees assembled", run.label));
        }
        match (&run.span_limiting_stage, &run.profile_limiting_stage) {
            (Some(s), Some(p)) if s != p => violations.push(format!(
                "{}: span critical path names stage \"{s}\" but the profiler's \
                 bottleneck report names \"{p}\"",
                run.label
            )),
            (None, Some(p)) => violations.push(format!(
                "{}: no critical path despite profiler bottleneck \"{p}\"",
                run.label
            )),
            _ => {}
        }
    }
    violations
}

fn run(args: &Args) -> Result<EspspanReport, Box<dyn std::error::Error>> {
    let all = CaseApp::all_fig7_configs();
    let models = TrainedModels::untrained();
    let mut runs = Vec::new();
    let mut labels = Vec::new();
    for &config in &args.configs {
        let app = all[config];
        labels.push(app.label());
        for mode in &args.modes {
            // The spanned+profiled session feeds one event stream to
            // both collectors, so the agreement check below compares
            // two independently-maintained analyses of the same run.
            let mut session = TraceSession::spanned(None, true);
            let run = AppRun::execute_traced_on(
                &app,
                &models,
                args.frames,
                *mode,
                args.engine,
                &mut session,
            )?;
            let report = session
                .span_reports()
                .first()
                .cloned()
                .ok_or("spanned run produced no span report")?;
            let profile_limiting_stage = session
                .profiles()
                .first()
                .and_then(|p| p.run.bottleneck.as_ref())
                .map(|b| b.limiting_stage.clone());
            let label = format!("{} {}", app.label(), mode.label());
            println!("=== {label} ===");
            println!("{}", report.render_text());
            println!(
                "measured throughput: {:.1} frames/s over {} frames\n",
                run.metrics.frames_per_second(),
                args.frames
            );
            runs.push(CaseRun {
                label,
                mode: mode.label().to_string(),
                frames_per_second: run.metrics.frames_per_second(),
                span_limiting_stage: report
                    .critical_path
                    .as_ref()
                    .map(|cp| cp.limiting_stage.clone()),
                profile_limiting_stage,
                report,
            });
        }
    }
    let violations = consistency_violations(&runs);
    Ok(EspspanReport {
        version: env!("CARGO_PKG_VERSION").to_string(),
        configs: labels,
        frames: args.frames,
        engine: engine_name(args.engine).to_string(),
        consistent: violations.is_empty(),
        violations,
        runs,
    })
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let report = match run(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("espspan failed: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &args.flame {
        let folded: String = report
            .runs
            .iter()
            .map(|r| r.report.render_flame())
            .collect();
        if let Err(e) = std::fs::write(path, folded) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote folded stacks to {}", path.display());
    }
    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("failed to serialize report: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
    if report.consistent {
        println!(
            "span attribution exact and critical path agrees with the profiler \
             across {} run(s)",
            report.runs.len()
        );
    } else {
        eprintln!("FAIL: span layer disagrees with the simulator/profiler:");
        for v in &report.violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
