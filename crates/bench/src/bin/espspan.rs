//! `espspan` — the span-tracing reporter: runs accelerator
//! configurations across execution modes with the causal frame-level
//! span collector attached, prints the per-frame span trees and the
//! aggregated critical path per run, and verifies the span layer
//! against the simulator and the profiler.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin espspan -- \
//!     --config 3 --frames 8 --mode pipe --mode p2p --json espspan.json
//! ```
//!
//! Two consistency checks gate the exit status (exit 1 on violation,
//! exit 2 on bad arguments — the same contract as `espprof`), which is
//! what lets CI smoke-test the span assembler against the simulator:
//!
//! 1. **Attribution invariant** — on every frame of every run, the span
//!    cycles sum exactly to the frame's end-to-end latency
//!    ([`SpanReport::check_attribution`](esp4ml::trace::SpanReport::check_attribution));
//!    no cycle is lost or double counted.
//! 2. **Critical-path agreement** — the aggregated critical path names
//!    the same limiting stage as an independently-fed
//!    [`ProfileCollector`](esp4ml::trace::ProfileCollector)'s
//!    bottleneck report, so `espspan` and `espprof` can never disagree
//!    about what bounds throughput.
//!
//! `--all` sweeps every Fig. 7 configuration instead of one `--config`.

use esp4ml_bench::cli::{self, HarnessSpec, ESPSPAN_FLAGS};
use esp4ml_bench::{observe, WorkloadKind};

fn main() {
    let spec = HarnessSpec::new(
        "espspan",
        "assemble frame-level span trees across execution modes and check \
         attribution and critical-path agreement",
        ESPSPAN_FLAGS,
    )
    .with_defaults(|d| d.frames = 8);
    let args =
        cli::parse(&spec, std::env::args().skip(1)).unwrap_or_else(|e| cli::exit_on_error(e));
    let response = observe::run_workload("espspan", &args, WorkloadKind::Spans);
    print!("{}", response.summary_text);
    observe::write_artifacts_or_exit("espspan", &args, &response);
    if response.verdict.ok {
        println!(
            "span attribution exact and critical path agrees with the \
             profiler across {} run(s)",
            response.runs.len()
        );
    } else {
        eprintln!("FAIL: span layer disagrees with the simulator or profiler:");
        for v in &response.verdict.violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
