//! `espcheck` — the static SoC/dataflow linter: checks floorplan
//! configurations, dataflows and their mappings for the whole class of
//! mistakes that otherwise surface as a hung simulation or a wrong
//! figure, without simulating a single cycle.
//!
//! ```text
//! # Lint the built-in SoC-1/SoC-2 floorplans and every Fig. 7 dataflow:
//! cargo run --release -p esp4ml-bench --bin espcheck
//!
//! # Lint configuration files, with a machine-readable report:
//! cargo run --release -p esp4ml-bench --bin espcheck -- \
//!     --config configs/soc1.json --json espcheck.json
//! ```
//!
//! Every finding is a typed diagnostic with a stable code (`E0101`
//! duplicate tile, `E0301` unmapped device, `E0304` PLM overflow, …),
//! a location, and a fix hint — see `DESIGN.md` for the full registry.
//! The exit status is 0 when no *errors* were found (warnings don't
//! fail the lint), 1 on error findings, 2 on usage errors.
//!
//! The same lint runs as the `espserve` admission filter: every job's
//! attached SoC configuration and fault plan pass through it before a
//! single cycle is simulated.

use esp4ml::check::lint_config;
use esp4ml::soc_config::SocConfigFile;
use esp4ml_bench::cli::{self, HarnessSpec, ESPCHECK_FLAGS};
use esp4ml_bench::request::{lint_builtins, EspcheckReport, LintTarget};
use esp4ml_check::{Diagnostic, Report};
use std::path::PathBuf;

/// Lints one configuration file from disk.
fn lint_file(path: &PathBuf) -> LintTarget {
    let name = format!("config {}", path.display());
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            let mut report = Report::new();
            report.push(Diagnostic::error(
                esp4ml_check::codes::DATAFLOW_PARSE,
                path.display().to_string(),
                format!("cannot read configuration file: {e}"),
            ));
            return LintTarget::new(name, report);
        }
    };
    match SocConfigFile::from_json(&text) {
        Ok(config) => LintTarget::new(name, lint_config(&config)),
        Err(e) => {
            let mut report = Report::new();
            report.push(
                Diagnostic::error(
                    esp4ml_check::codes::DATAFLOW_PARSE,
                    path.display().to_string(),
                    format!("configuration does not parse: {e}"),
                )
                .with_hint("see SocConfigFile::soc1() / configs/soc1.json for the schema"),
            );
            LintTarget::new(name, report)
        }
    }
}

fn main() {
    let spec = HarnessSpec::new(
        "espcheck",
        "statically lint SoC floorplans, dataflows and mappings",
        ESPCHECK_FLAGS,
    );
    let args =
        cli::parse(&spec, std::env::args().skip(1)).unwrap_or_else(|e| cli::exit_on_error(e));
    let targets = if args.config_paths.is_empty() {
        lint_builtins()
    } else {
        args.config_paths.iter().map(lint_file).collect()
    };
    let report = EspcheckReport::from_targets(targets);
    print!("{}", report.render_text());
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
    // Warnings alone keep exit 0; only errors fail the lint.
    if !report.clean {
        std::process::exit(1);
    }
}
