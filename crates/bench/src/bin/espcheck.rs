//! `espcheck` — the static SoC/dataflow linter: checks floorplan
//! configurations, dataflows and their mappings for the whole class of
//! mistakes that otherwise surface as a hung simulation or a wrong
//! figure, without simulating a single cycle.
//!
//! ```text
//! # Lint the built-in SoC-1/SoC-2 floorplans and every Fig. 7 dataflow:
//! cargo run --release -p esp4ml-bench --bin espcheck
//!
//! # Lint configuration files, with a machine-readable report:
//! cargo run --release -p esp4ml-bench --bin espcheck -- \
//!     --config configs/soc1.json --json espcheck.json
//! ```
//!
//! Every finding is a typed diagnostic with a stable code (`E0101`
//! duplicate tile, `E0301` unmapped device, `E0304` PLM overflow, …),
//! a location, and a fix hint — see `DESIGN.md` for the full registry.
//! The exit status is 0 when no *errors* were found (warnings don't
//! fail the lint), 1 on error findings, 2 on usage errors.

use esp4ml::apps::{build_soc2, CaseApp, SocId, TrainedModels};
use esp4ml::check::{lint_all, lint_config, lint_dataflow, lint_mapping, FloorplanView};
use esp4ml::soc_config::SocConfigFile;
use esp4ml_check::{Diagnostic, Report};
use serde::Serialize;
use std::path::PathBuf;

/// One linted target and its findings.
#[derive(Debug, Serialize)]
struct Target {
    name: String,
    errors: usize,
    warnings: usize,
    diagnostics: Vec<Diagnostic>,
}

impl Target {
    fn new(name: impl Into<String>, report: Report) -> Target {
        Target {
            name: name.into(),
            errors: report.error_count(),
            warnings: report.warning_count(),
            diagnostics: report.diagnostics,
        }
    }
}

#[derive(Debug, Serialize)]
struct EspcheckReport {
    version: String,
    targets: Vec<Target>,
    total_errors: usize,
    total_warnings: usize,
    clean: bool,
}

struct Args {
    configs: Vec<PathBuf>,
    json: Option<PathBuf>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut out = Args {
        configs: Vec::new(),
        json: None,
    };
    let mut it = args;
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--config" => out.configs.push(PathBuf::from(grab("--config")?)),
            "--json" => out.json = Some(PathBuf::from(grab("--json")?)),
            other => {
                return Err(format!(
                    "unknown option {other}; supported: --config PATH (repeatable; \
                     lints the files instead of the built-in floorplans) --json PATH"
                ))
            }
        }
    }
    Ok(out)
}

/// Lints one configuration file from disk.
fn lint_file(path: &PathBuf) -> Target {
    let name = format!("config {}", path.display());
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            let mut report = Report::new();
            report.push(Diagnostic::error(
                esp4ml_check::codes::DATAFLOW_PARSE,
                path.display().to_string(),
                format!("cannot read configuration file: {e}"),
            ));
            return Target::new(name, report);
        }
    };
    match SocConfigFile::from_json(&text) {
        Ok(config) => Target::new(name, lint_config(&config)),
        Err(e) => {
            let mut report = Report::new();
            report.push(
                Diagnostic::error(
                    esp4ml_check::codes::DATAFLOW_PARSE,
                    path.display().to_string(),
                    format!("configuration does not parse: {e}"),
                )
                .with_hint("see SocConfigFile::soc1() / configs/soc1.json for the schema"),
            );
            Target::new(name, report)
        }
    }
}

/// Lints the built-in floorplans and every Fig. 7 application mapping.
fn lint_builtins() -> Vec<Target> {
    let mut targets = Vec::new();
    let soc1 = SocConfigFile::soc1();
    targets.push(Target::new("builtin soc1 floorplan", lint_config(&soc1)));
    // SoC-2 is assembled programmatically; lint the built artifact.
    let models = TrainedModels::untrained();
    let soc2_view = build_soc2(&models)
        .ok()
        .map(|soc| FloorplanView::from_soc(&soc));
    for app in CaseApp::all_fig7_configs() {
        let name = format!("fig7 {} ({:?})", app.label(), app.soc_id());
        let dataflow = app.dataflow();
        let report = match app.soc_id() {
            SocId::Soc1 => lint_all(&soc1, &dataflow),
            SocId::Soc2 => match &soc2_view {
                Some(view) => {
                    let mut r = lint_dataflow(&dataflow);
                    r.merge(lint_mapping(view, &dataflow));
                    r.normalize();
                    r
                }
                None => {
                    let mut r = Report::new();
                    r.push(Diagnostic::error(
                        esp4ml_check::codes::MISSING_REQUIRED_TILE,
                        "soc2",
                        "the built-in SoC-2 floorplan failed to build",
                    ));
                    r
                }
            },
        };
        targets.push(Target::new(name, report));
    }
    targets
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let targets = if args.configs.is_empty() {
        lint_builtins()
    } else {
        args.configs.iter().map(lint_file).collect()
    };
    for target in &targets {
        if target.diagnostics.is_empty() {
            println!("ok   {}", target.name);
        } else {
            println!("FAIL {}", target.name);
            for diag in &target.diagnostics {
                println!("  {diag}");
            }
        }
    }
    let total_errors: usize = targets.iter().map(|t| t.errors).sum();
    let total_warnings: usize = targets.iter().map(|t| t.warnings).sum();
    let report = EspcheckReport {
        version: env!("CARGO_PKG_VERSION").to_string(),
        total_errors,
        total_warnings,
        clean: total_errors == 0,
        targets,
    };
    println!(
        "espcheck: {} error(s), {} warning(s) across {} target(s)",
        report.total_errors,
        report.total_warnings,
        report.targets.len()
    );
    if let Some(path) = &args.json {
        let json = match serde_json::to_string_pretty(&report) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("failed to serialize report: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
    // Warnings alone keep exit 0; only errors fail the lint.
    if !report.clean {
        std::process::exit(1);
    }
}
