//! `espcheck` — the static SoC/dataflow linter: checks floorplan
//! configurations, dataflows, mappings and multi-tenant deployments for
//! the whole class of mistakes that otherwise surface as a hung
//! simulation or a wrong figure, without simulating a single cycle.
//!
//! ```text
//! # Lint the built-in SoC-1/SoC-2 floorplans and every Fig. 7 dataflow:
//! cargo run --release -p esp4ml-bench --bin espcheck
//!
//! # Lint configuration files, with a machine-readable report:
//! cargo run --release -p esp4ml-bench --bin espcheck -- \
//!     --config configs/soc1.json --json espcheck.json
//!
//! # Statically admit a multi-tenant deployment (co-residency, union-CDG
//! # deadlock, NoC bandwidth feasibility — the E07xx family):
//! cargo run --release -p esp4ml-bench --bin espcheck -- \
//!     --deployment configs/deploy_ok.json --json deploy.json
//!
//! # Document any stable diagnostic code:
//! cargo run --release -p esp4ml-bench --bin espcheck -- --explain E0703
//! ```
//!
//! Every finding is a typed diagnostic with a stable code (`E0101`
//! duplicate tile, `E0301` unmapped device, `E0304` PLM overflow,
//! `E0703` cross-tenant deadlock, …), a location, and a fix hint — see
//! `DESIGN.md` for the full registry, or `--explain CODE` for any one
//! entry. The exit status is 0 when no *errors* were found (warnings
//! don't fail the lint), 1 on error findings, 2 on usage errors.
//!
//! The same lint runs as the `espserve` admission filter: every job's
//! attached SoC configuration, fault plan and deployment pass through
//! it before a single cycle is simulated — the diagnostics a rejected
//! deployment submission gets back over HTTP are the same typed
//! findings this binary prints.

use esp4ml::check::lint_config;
use esp4ml::deploy::{lint_deployment, Deployment};
use esp4ml::soc_config::SocConfigFile;
use esp4ml_bench::cli::{self, HarnessSpec, ESPCHECK_FLAGS};
use esp4ml_bench::request::{lint_builtins, EspcheckReport, LintTarget};
use esp4ml_check::bw::BandwidthAnalysis;
use esp4ml_check::{Diagnostic, Report};
use serde::Serialize;
use std::path::PathBuf;

/// Lints one configuration file from disk.
fn lint_file(path: &PathBuf) -> LintTarget {
    let name = format!("config {}", path.display());
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            let mut report = Report::new();
            report.push(Diagnostic::error(
                esp4ml_check::codes::DATAFLOW_PARSE,
                path.display().to_string(),
                format!("cannot read configuration file: {e}"),
            ));
            return LintTarget::new(name, report);
        }
    };
    match SocConfigFile::from_json(&text) {
        Ok(config) => LintTarget::new(name, lint_config(&config)),
        Err(e) => {
            let mut report = Report::new();
            report.push(
                Diagnostic::error(
                    esp4ml_check::codes::DATAFLOW_PARSE,
                    path.display().to_string(),
                    format!("configuration does not parse: {e}"),
                )
                .with_hint("see SocConfigFile::soc1() / configs/soc1.json for the schema"),
            );
            LintTarget::new(name, report)
        }
    }
}

/// One analyzed deployment in the `espcheck-deployment` JSON artifact.
#[derive(Debug, Serialize)]
struct DeploymentTarget {
    /// What was analyzed.
    name: String,
    /// Error findings.
    errors: usize,
    /// Warning findings.
    warnings: usize,
    /// The typed diagnostics, normalized — byte-identical to the
    /// `diagnostics` array an espserve 422 carries for the same file.
    diagnostics: Vec<Diagnostic>,
    /// The static bandwidth picture (per-link utilization, per-tenant
    /// slowdown bounds); absent when no tenant could be modelled.
    bandwidth: Option<BandwidthAnalysis>,
}

/// Analyzes one deployment file from disk.
fn lint_deployment_file(path: &PathBuf) -> DeploymentTarget {
    let name = format!("deployment {}", path.display());
    let parse_failure = |msg: String| {
        let mut report = Report::new();
        report.push(
            Diagnostic::error(
                esp4ml_check::codes::DEPLOYMENT_MALFORMED,
                path.display().to_string(),
                msg,
            )
            .with_hint("see configs/deploy_ok.json for the deployment schema"),
        );
        DeploymentTarget {
            name: name.clone(),
            errors: report.error_count(),
            warnings: 0,
            diagnostics: report.diagnostics,
            bandwidth: None,
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return parse_failure(format!("cannot read deployment file: {e}")),
    };
    let deployment = match Deployment::from_json(&text) {
        Ok(d) => d,
        Err(e) => return parse_failure(format!("deployment does not parse: {e}")),
    };
    let analysis = lint_deployment(&deployment);
    DeploymentTarget {
        name,
        errors: analysis.report.error_count(),
        warnings: analysis.report.warning_count(),
        diagnostics: analysis.report.diagnostics,
        bandwidth: analysis.bandwidth,
    }
}

/// The `espcheck-deployment` JSON artifact body.
#[derive(Debug, Serialize)]
struct DeploymentReport {
    /// Workspace version that produced the report.
    version: String,
    /// Analyzed deployments, in command-line order.
    deployments: Vec<DeploymentTarget>,
}

fn main() {
    let spec = HarnessSpec::new(
        "espcheck",
        "statically lint SoC floorplans, dataflows, mappings and deployments",
        ESPCHECK_FLAGS,
    );
    let args =
        cli::parse(&spec, std::env::args().skip(1)).unwrap_or_else(|e| cli::exit_on_error(e));
    if let Some(code) = &args.explain {
        match esp4ml_check::codes::explain(code) {
            Some((summary, explanation)) => {
                println!("{code}: {summary}\n\n{explanation}");
                return;
            }
            None => {
                eprintln!(
                    "unknown diagnostic code {code}; the registry is listed in DESIGN.md \
                     (families E01xx-E07xx)"
                );
                std::process::exit(2);
            }
        }
    }
    let deployments: Vec<DeploymentTarget> =
        args.deployments.iter().map(lint_deployment_file).collect();
    let targets = if args.config_paths.is_empty() && !deployments.is_empty() {
        Vec::new()
    } else if args.config_paths.is_empty() {
        lint_builtins()
    } else {
        args.config_paths.iter().map(lint_file).collect()
    };
    // Deployments render through the same ok/FAIL target lines, so the
    // text output reads identically whatever was linted.
    let mut all_targets = targets;
    for d in &deployments {
        let mut report = Report::new();
        for diag in &d.diagnostics {
            report.push(diag.clone());
        }
        all_targets.push(LintTarget::new(d.name.clone(), report));
    }
    let report = EspcheckReport::from_targets(all_targets);
    print!("{}", report.render_text());
    if let Some(path) = &args.json {
        // With deployments in play the artifact is the deployment
        // report (diagnostics + bandwidth analysis); otherwise the
        // classic espcheck report.
        let body = if deployments.is_empty() {
            report.to_json()
        } else {
            let payload = DeploymentReport {
                version: env!("CARGO_PKG_VERSION").to_string(),
                deployments,
            };
            esp4ml::trace::schema::envelope_json(
                "espcheck-deployment",
                serde_json::to_value(&payload).expect("report serializes"),
            )
        };
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
    // Warnings alone keep exit 0; only errors fail the lint.
    if !report.clean {
        std::process::exit(1);
    }
}
