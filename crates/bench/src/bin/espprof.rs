//! `espprof` — the profiling reporter: runs one accelerator
//! configuration across execution modes with the online profiler
//! attached, prints the frame-latency / utilization / NoC-heatmap report
//! per mode, and cross-checks the bottleneck analysis against the
//! measured throughput.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin espprof -- \
//!     --config 3 --frames 8 --mode pipe --mode p2p --json espprof.json
//! ```
//!
//! Two consistency checks gate the exit status (non-zero on violation),
//! which is what lets CI smoke-test the profiler against the simulator:
//!
//! 1. **Per run** — the limiting stage's bound (busy cycles/frame on the
//!    busiest stage) can never exceed the observed cycles/frame.
//! 2. **Across modes** — ranking the modes by measured frames/s must
//!    match ranking them by the profiler's observed cycles/frame, i.e.
//!    the profile agrees with the throughput ordering (p2p vs
//!    DMA-through-DRAM).

use esp4ml::apps::{CaseApp, TrainedModels};
use esp4ml::experiments::AppRun;
use esp4ml::{ProfileReport, TraceSession};
use esp4ml_runtime::ExecMode;
use esp4ml_soc::SocEngine;
use serde::Serialize;
use std::path::PathBuf;

#[derive(Debug, Serialize)]
struct ModeRun {
    label: String,
    mode: String,
    frames_per_second: f64,
    observed_cycles_per_frame: f64,
    limiting_stage: Option<String>,
    speedup_ceiling: Option<f64>,
    profile: ProfileReport,
}

#[derive(Debug, Serialize)]
struct EspprofReport {
    version: String,
    config: String,
    frames: u64,
    engine: String,
    runs: Vec<ModeRun>,
    violations: Vec<String>,
    consistent: bool,
}

struct Args {
    frames: u64,
    config: usize,
    modes: Vec<ExecMode>,
    engine: SocEngine,
    json: Option<PathBuf>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut out = Args {
        frames: 8,
        config: 3, // 1De+1Cl: the paper's denoiser-classifier pipeline
        modes: Vec::new(),
        engine: SocEngine::default(),
        json: None,
    };
    let configs = CaseApp::all_fig7_configs();
    let mut it = args;
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--frames" => {
                out.frames = grab("--frames")?
                    .parse()
                    .map_err(|e| format!("--frames: {e}"))?
            }
            "--config" => {
                out.config = grab("--config")?
                    .parse()
                    .map_err(|e| format!("--config: {e}"))?
            }
            "--mode" => {
                let v = grab("--mode")?;
                out.modes.push(match v.as_str() {
                    "base" => ExecMode::Base,
                    "pipe" => ExecMode::Pipe,
                    "p2p" => ExecMode::P2p,
                    other => return Err(format!("--mode: unknown mode {other}")),
                });
            }
            "--engine" => {
                let v = grab("--engine")?;
                out.engine = match v.as_str() {
                    "naive" => SocEngine::Naive,
                    "event" | "event-driven" => SocEngine::EventDriven,
                    other => return Err(format!("--engine: unknown engine {other}")),
                };
            }
            "--json" => out.json = Some(PathBuf::from(grab("--json")?)),
            other => {
                return Err(format!(
                    "unknown option {other}; supported: --frames N --config IDX \
                     --mode base|pipe|p2p (repeatable) --engine naive|event --json PATH"
                ))
            }
        }
    }
    if out.frames == 0 {
        return Err("--frames must be at least 1".into());
    }
    if out.config >= configs.len() {
        let list: Vec<String> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{i}={}", c.label()))
            .collect();
        return Err(format!("--config: index out of range; {}", list.join(" ")));
    }
    if out.modes.is_empty() {
        // Default pair: software pipeline through DRAM vs hardware p2p.
        out.modes = vec![ExecMode::Pipe, ExecMode::P2p];
    }
    Ok(out)
}

fn engine_name(engine: SocEngine) -> &'static str {
    match engine {
        SocEngine::Naive => "naive",
        SocEngine::EventDriven => "event-driven",
    }
}

/// Checks the profile reports against the measured throughput; returns
/// the list of violated invariants (empty when consistent).
fn consistency_violations(runs: &[ModeRun]) -> Vec<String> {
    let mut violations = Vec::new();
    for run in runs {
        if let Some(b) = &run.profile.run.bottleneck {
            if b.bound_cycles_per_frame > run.observed_cycles_per_frame * (1.0 + 1e-9) {
                violations.push(format!(
                    "{}: limiting-stage bound {:.1} cycles/frame exceeds observed {:.1}",
                    run.label, b.bound_cycles_per_frame, run.observed_cycles_per_frame
                ));
            }
        } else {
            violations.push(format!("{}: no bottleneck report produced", run.label));
        }
    }
    for a in runs {
        for b in runs {
            if a.frames_per_second > b.frames_per_second
                && a.observed_cycles_per_frame > b.observed_cycles_per_frame
            {
                violations.push(format!(
                    "throughput ordering disagrees with profile: {} measures \
                     {:.1} f/s vs {} at {:.1} f/s, yet profiles {:.1} vs {:.1} cycles/frame",
                    a.label,
                    a.frames_per_second,
                    b.label,
                    b.frames_per_second,
                    a.observed_cycles_per_frame,
                    b.observed_cycles_per_frame
                ));
            }
        }
    }
    violations
}

fn run(args: &Args) -> Result<EspprofReport, Box<dyn std::error::Error>> {
    let app = CaseApp::all_fig7_configs()[args.config];
    let models = TrainedModels::untrained();
    let mut runs = Vec::new();
    for mode in &args.modes {
        let mut session = TraceSession::profiled(None);
        let run = AppRun::execute_traced_on(
            &app,
            &models,
            args.frames,
            *mode,
            args.engine,
            &mut session,
        )?;
        let profile = session
            .profiles()
            .first()
            .cloned()
            .ok_or("profiled run produced no profile report")?;
        let label = format!("{} {}", app.label(), mode.label());
        println!("=== {label} ===");
        println!("{}", profile.render_text());
        println!(
            "measured throughput: {:.1} frames/s over {} frames\n",
            run.metrics.frames_per_second(),
            args.frames
        );
        runs.push(ModeRun {
            label,
            mode: mode.label().to_string(),
            frames_per_second: run.metrics.frames_per_second(),
            observed_cycles_per_frame: profile.run.observed_cycles_per_frame(),
            limiting_stage: profile
                .run
                .bottleneck
                .as_ref()
                .map(|b| b.limiting_stage.clone()),
            speedup_ceiling: profile.run.bottleneck.as_ref().map(|b| b.speedup_ceiling),
            profile,
        });
    }
    let violations = consistency_violations(&runs);
    Ok(EspprofReport {
        version: env!("CARGO_PKG_VERSION").to_string(),
        config: app.label(),
        frames: args.frames,
        engine: engine_name(args.engine).to_string(),
        consistent: violations.is_empty(),
        violations,
        runs,
    })
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let report = match run(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("espprof failed: {e}");
            std::process::exit(1);
        }
    };
    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("failed to serialize report: {e}");
            std::process::exit(1);
        }
    };
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
    if report.consistent {
        println!(
            "profile consistent with measured throughput across {} mode(s)",
            report.runs.len()
        );
    } else {
        eprintln!("FAIL: profile disagrees with the simulator:");
        for v in &report.violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
