//! `espprof` — the profiling reporter: runs accelerator configurations
//! across execution modes with the online profiler attached, prints the
//! frame-latency / utilization / NoC-heatmap report per mode, and
//! cross-checks the bottleneck analysis against the measured
//! throughput.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin espprof -- \
//!     --config 3 --frames 8 --mode pipe --mode p2p --json espprof.json
//! ```
//!
//! Two consistency checks gate the exit status (non-zero on violation),
//! which is what lets CI smoke-test the profiler against the simulator:
//!
//! 1. **Per run** — the limiting stage's bound (busy cycles/frame on the
//!    busiest stage) can never exceed the observed cycles/frame.
//! 2. **Across modes** — ranking the modes by measured frames/s must
//!    match ranking them by the profiler's observed cycles/frame, i.e.
//!    the profile agrees with the throughput ordering (p2p vs
//!    DMA-through-DRAM).

use esp4ml_bench::cli::{self, HarnessSpec, ESPPROF_FLAGS};
use esp4ml_bench::{observe, WorkloadKind};

fn main() {
    let spec = HarnessSpec::new(
        "espprof",
        "profile configurations across execution modes and check the \
         bottleneck report against the simulator",
        ESPPROF_FLAGS,
    )
    .with_defaults(|d| d.frames = 8);
    let args =
        cli::parse(&spec, std::env::args().skip(1)).unwrap_or_else(|e| cli::exit_on_error(e));
    let response = observe::run_workload("espprof", &args, WorkloadKind::Profile);
    print!("{}", response.summary_text);
    observe::write_artifacts_or_exit("espprof", &args, &response);
    if response.verdict.ok {
        println!(
            "profile consistent with measured throughput across {} run(s)",
            response.runs.len()
        );
    } else {
        eprintln!("FAIL: profile disagrees with the simulator:");
        for v in &response.verdict.violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
