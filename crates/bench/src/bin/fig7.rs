//! Regenerates the paper's Fig. 7: energy efficiency (frames/J) of
//! base/pipe/p2p execution for every accelerator configuration, with the
//! i7 and Jetson baseline lines.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin fig7 -- --frames 64
//! ```

use esp4ml_bench::cli::{self, HarnessSpec, FIGURE_FLAGS};
use esp4ml_bench::{observe, WorkloadKind};

fn main() {
    let spec = HarnessSpec::new(
        "fig7",
        "Fig. 7 — energy efficiency (frames/J) across the accelerator grid",
        FIGURE_FLAGS,
    );
    let args =
        cli::parse(&spec, std::env::args().skip(1)).unwrap_or_else(|e| cli::exit_on_error(e));
    let response = observe::run_workload("fig7", &args, WorkloadKind::Fig7);
    println!("{}", response.summary_text);
    println!("(measured over {} frames per bar)", args.frames);
    println!(
        "paper shape: pipe > base within every cluster; p2p ≈ pipe in f/s; \
         ESP4ML beats both baselines in f/J everywhere, by >100x in some cases"
    );
    observe::write_artifacts_or_exit("fig7", &args, &response);
}
