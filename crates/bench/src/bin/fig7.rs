//! Regenerates the paper's Fig. 7: energy efficiency (frames/J) of
//! base/pipe/p2p execution for every accelerator configuration, with the
//! i7 and Jetson baseline lines.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin fig7 -- --frames 64
//! ```

use esp4ml::experiments::Fig7;
use esp4ml_bench::HarnessArgs;

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let models = args.models();
    let faults = match args.fault_config() {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Some(fc) = &faults {
        if HarnessArgs::lint_faults(fc, &Fig7::grid()) {
            std::process::exit(2);
        }
    }
    let mut session = esp4ml_bench::observe::session_from_args(&args);
    let result = match session.as_mut() {
        Some(session) => Fig7::generate_traced(&models, args.frames, session),
        None => esp4ml_bench::parallel::run_grid(
            &Fig7::grid(),
            &models,
            args.frames,
            args.engine,
            args.jobs,
            args.sanitize,
            faults.as_ref(),
        )
        .and_then(|runs| {
            if args.sanitize {
                eprintln!("sanitizer: clean across {} runs", runs.len());
            }
            if faults.is_some() {
                let (retries, failovers, degraded) = runs.iter().fold((0, 0, 0), |acc, r| {
                    (
                        acc.0 + r.metrics.retries,
                        acc.1 + r.metrics.failovers,
                        acc.2 + u64::from(r.software_fallback),
                    )
                });
                eprintln!(
                    "faults: {retries} retries, {failovers} failovers, \
                     {degraded} software-degraded run(s) across {} runs",
                    runs.len()
                );
            }
            Fig7::assemble(&runs)
        }),
    };
    match result {
        Ok(fig) => {
            println!("{fig}");
            println!();
            println!("{}", esp4ml_bench::chart::render_fig7(&fig));
            println!("(measured over {} frames per bar)", args.frames);
            println!(
                "paper shape: pipe > base within every cluster; p2p ≈ pipe in f/s; \
                 ESP4ML beats both baselines in f/J everywhere, by >100x in some cases"
            );
            if let Some(session) = session.as_ref() {
                if let Err(e) = esp4ml_bench::observe::finish_session(&args, session) {
                    eprintln!("failed to write trace artifacts: {e}");
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("fig7 failed: {e}");
            std::process::exit(1);
        }
    }
}
