//! SoC generation from a configuration file — the command-line analog of
//! the ESP graphical configuration interface.
//!
//! ```text
//! # print the canonical SoC-1 configuration
//! cargo run --release -p esp4ml-bench --bin socgen -- --emit-soc1
//!
//! # build an SoC from a configuration and report floorplan/utilization
//! cargo run --release -p esp4ml-bench --bin socgen -- path/to/soc.json
//! ```

use esp4ml::apps::TrainedModels;
use esp4ml::flow::Esp4mlFlow;
use esp4ml::noc::Coord;
use esp4ml::soc::TileKind;
use esp4ml::soc_config::SocConfigFile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--emit-soc1") {
        println!("{}", SocConfigFile::soc1().to_json());
        return;
    }
    let Some(path) = args.first() else {
        eprintln!("usage: socgen <config.json> | socgen --emit-soc1");
        std::process::exit(2);
    };
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let config = match SocConfigFile::from_json(&json) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            std::process::exit(1);
        }
    };
    let models = TrainedModels::untrained();
    let soc = match config.build(&models) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("build failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "design '{}': {}x{} mesh @ {} MHz",
        config.name, config.cols, config.rows, config.clock_mhz
    );
    println!("\nfloorplan:");
    for y in 0..config.rows as u8 {
        let mut row = String::new();
        for x in 0..config.cols as u8 {
            let cell = match soc.tile_kind(Coord::new(x, y)) {
                TileKind::Processor => "CPU ",
                TileKind::Memory => "MEM ",
                TileKind::Auxiliary => "AUX ",
                TileKind::Accelerator => "ACC ",
                TileKind::Empty => " .  ",
            };
            row.push_str(&format!("[{cell}] "));
        }
        println!("  {row}");
    }
    println!("\naccelerators:");
    for coord in soc.accel_coords() {
        let tile = soc.accel(coord).expect("accelerator");
        println!(
            "  {:<12} at {}  ({} values in / {} out, {})",
            tile.kernel_name(),
            coord,
            tile.kernel().input_values(),
            tile.kernel().output_values(),
            tile.kernel().resources(),
        );
    }
    let flow = Esp4mlFlow::new();
    let util = flow.utilization(&soc);
    let power = flow.estimate_power(&soc);
    println!("\ntarget device: {}", flow.device.name);
    println!("utilization:   {util}");
    println!("dynamic power: {:.2} W", power.total_watts());
    println!(
        "fits device:   {}",
        if soc.resources().fits(&flow.device) {
            "yes"
        } else {
            "NO"
        }
    );
}
