//! Regenerates the paper's Table I: resource utilization, power and
//! frames/s for the three applications, against the i7 and Jetson
//! baselines.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin table1 -- --frames 64
//! ```

use esp4ml::experiments::Table1;
use esp4ml_bench::HarnessArgs;

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if args.faults.is_some() {
        eprintln!("table1 does not support --faults; use fig7/fig8 or the espfault campaign");
        std::process::exit(2);
    }
    let models = args.models();
    let mut session = esp4ml_bench::observe::session_from_args(&args);
    let result = match session.as_mut() {
        Some(session) => Table1::generate_traced(&models, args.frames, session),
        None => esp4ml_bench::parallel::run_grid(
            &Table1::grid(),
            &models,
            args.frames,
            args.engine,
            args.jobs,
            args.sanitize,
            None,
        )
        .and_then(|runs| {
            if args.sanitize {
                eprintln!("sanitizer: clean across {} runs", runs.len());
            }
            Table1::assemble(&models, &runs)
        }),
    };
    match result {
        Ok(table) => {
            println!("{table}");
            println!("(measured over {} frames per application)", args.frames);
            println!(
                "paper reference: LUTS 48/48/19%, FFS 24/24/11%, BRAMS 57/57/21%, \
                 POWER 1.70/1.70/0.98 W, ESP4ML 35572/5220/28376 f/s, \
                 I7 1858/30435/82476 f/s, JETSON 377/2798/6750 f/s"
            );
            if let Some(session) = session.as_ref() {
                if let Err(e) = esp4ml_bench::observe::finish_session(&args, session) {
                    eprintln!("failed to write trace artifacts: {e}");
                    std::process::exit(1);
                }
            }
        }
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    }
}
