//! Regenerates the paper's Table I: resource utilization, power and
//! frames/s for the three applications, against the i7 and Jetson
//! baselines.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin table1 -- --frames 64
//! ```

use esp4ml_bench::cli::{self, HarnessSpec, TABLE_FLAGS};
use esp4ml_bench::{observe, WorkloadKind};

fn main() {
    let spec = HarnessSpec::new(
        "table1",
        "Table I — utilization, power and frames/s vs the i7/Jetson baselines",
        TABLE_FLAGS,
    );
    let args =
        cli::parse(&spec, std::env::args().skip(1)).unwrap_or_else(|e| cli::exit_on_error(e));
    let response = observe::run_workload("table1", &args, WorkloadKind::Table1);
    println!("{}", response.summary_text);
    println!("(measured over {} frames per application)", args.frames);
    println!(
        "paper reference: LUTS 48/48/19%, FFS 24/24/11%, BRAMS 57/57/21%, \
         POWER 1.70/1.70/0.98 W, ESP4ML 35572/5220/28376 f/s, \
         I7 1858/30435/82476 f/s, JETSON 377/2798/6750 f/s"
    );
    observe::write_artifacts_or_exit("table1", &args, &response);
}
