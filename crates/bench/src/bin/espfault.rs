//! `espfault` — seeded fault-injection campaigns over the Fig. 7
//! pipelines.
//!
//! Sweeps seeds × fault classes (accelerator hangs and short outputs,
//! DMA word drops, NoC delay and corruption) over the campaign
//! pipelines in both pipelined execution modes, with the
//! watchdog/retry/failover recovery layer armed, and classifies every
//! run as clean, recovered, degraded (software fallback) or failed.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin espfault -- \
//!     --seeds 3 --frames 3 --json campaign.json
//! ```
//!
//! The report is engine-independent: `--engine naive` and
//! `--engine event` produce byte-identical JSON for the same seeds.
//! The process exits 1 when any case ends in `failed` (the recovery
//! machinery could not absorb an injected fault), so CI can gate on it.

use esp4ml::apps::TrainedModels;
use esp4ml::faults::CampaignReport;
use esp4ml_soc::SocEngine;
use std::path::PathBuf;

struct Args {
    frames: u64,
    seeds: u64,
    engine: SocEngine,
    json: Option<PathBuf>,
}

fn parse(args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut out = Args {
        frames: 3,
        seeds: 2,
        engine: SocEngine::default(),
        json: None,
    };
    let mut it = args.peekable();
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--frames" => out.frames = grab("--frames")?,
            "--seeds" => out.seeds = grab("--seeds")?,
            "--json" => {
                let path = it.next().ok_or("--json needs a file path")?;
                out.json = Some(PathBuf::from(path));
            }
            "--engine" => {
                let v = it.next().ok_or("--engine needs naive or event")?;
                out.engine = match v.as_str() {
                    "naive" => SocEngine::Naive,
                    "event" | "event-driven" => SocEngine::EventDriven,
                    other => return Err(format!("--engine: unknown engine {other}")),
                };
            }
            other => {
                return Err(format!(
                    "unknown option {other}; supported: --frames N --seeds N \
                     --engine naive|event --json PATH"
                ))
            }
        }
    }
    if out.frames == 0 {
        return Err("--frames must be at least 1".into());
    }
    if out.seeds == 0 {
        return Err("--seeds must be at least 1".into());
    }
    Ok(out)
}

fn main() {
    let args = match parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let models = TrainedModels::untrained();
    let seeds: Vec<u64> = (1..=args.seeds).collect();
    let report = match CampaignReport::generate(&models, &seeds, args.frames, args.engine) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("espfault campaign failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{report}");
    if let Some(path) = &args.json {
        let json = match report.to_json() {
            Ok(j) => j,
            Err(e) => {
                eprintln!("failed to serialize the report: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
    if report.cases.iter().any(|c| c.status == "failed") {
        eprintln!("espfault: unabsorbed fault(s) — see the report above");
        std::process::exit(1);
    }
}
