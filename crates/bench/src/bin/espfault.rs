//! `espfault` — seeded fault-injection campaigns over the Fig. 7
//! pipelines.
//!
//! Sweeps seeds × fault classes (accelerator hangs and short outputs,
//! DMA word drops, NoC delay and corruption) over the campaign
//! pipelines in both pipelined execution modes, with the
//! watchdog/retry/failover recovery layer armed, and classifies every
//! run as clean, recovered, degraded (software fallback) or failed.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin espfault -- \
//!     --seeds 3 --frames 3 --json campaign.json
//! ```
//!
//! The report is engine-independent: `--engine naive` and
//! `--engine event` produce byte-identical JSON for the same seeds.
//! The process exits 1 when any case ends in `failed` (the recovery
//! machinery could not absorb an injected fault), so CI can gate on it.

use esp4ml_bench::cli::{self, HarnessSpec, ESPFAULT_FLAGS};
use esp4ml_bench::{observe, WorkloadKind};

fn main() {
    let spec = HarnessSpec::new(
        "espfault",
        "sweep seeded fault-injection campaigns with the recovery layer armed",
        ESPFAULT_FLAGS,
    )
    .with_defaults(|d| d.frames = 3);
    let args =
        cli::parse(&spec, std::env::args().skip(1)).unwrap_or_else(|e| cli::exit_on_error(e));
    let response = observe::run_workload(
        "espfault",
        &args,
        WorkloadKind::Faults { seeds: args.seeds },
    );
    print!("{}", response.summary_text);
    observe::write_artifacts_or_exit("espfault", &args, &response);
    if !response.verdict.ok {
        eprintln!("espfault: unabsorbed fault(s) — see the report above");
        std::process::exit(1);
    }
}
