//! The application-level accuracy experiment: how much classification
//! accuracy the Night-Vision and Denoiser stages recover on dark/noisy
//! images, in float software and on the fixed-point SoC pipelines.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin accuracy -- --samples 6000 --epochs 30 --frames 200
//! ```

use esp4ml::experiments::AccuracyReport;
use esp4ml_bench::cli::{self, HarnessSpec, TRAINING_FLAGS};

fn main() {
    let spec = HarnessSpec::new(
        "accuracy",
        "accuracy recovered by the vision pipelines on dark/noisy frames",
        TRAINING_FLAGS,
    );
    let mut args =
        cli::parse(&spec, std::env::args().skip(1)).unwrap_or_else(|e| cli::exit_on_error(e));
    args.train = true;
    let models = args.models();
    match AccuracyReport::generate(&models, args.frames) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("accuracy experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
