//! The application-level accuracy experiment: how much classification
//! accuracy the Night-Vision and Denoiser stages recover on dark/noisy
//! images, in float software and on the fixed-point SoC pipelines.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin accuracy -- --samples 6000 --epochs 30 --frames 200
//! ```

use esp4ml::experiments::AccuracyReport;
use esp4ml_bench::HarnessArgs;

fn main() {
    let mut args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if args.faults.is_some() {
        eprintln!("accuracy does not support --faults; use fig7/fig8 or the espfault campaign");
        std::process::exit(2);
    }
    args.train = true;
    let models = args.models();
    match AccuracyReport::generate(&models, args.frames) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("accuracy experiment failed: {e}");
            std::process::exit(1);
        }
    }
}
