//! Measures simulation speed: the naive cycle-by-cycle engine vs the
//! event-driven fast-forward engine, serial vs the parallel grid driver,
//! and cold-started points vs prefix-forked groups (`--fork-prefix`) —
//! and verifies along the way that both engines produce **identical**
//! run metrics on every grid point (cycle-exactness is a hard invariant,
//! not a statistical claim) and that forked runs reproduce cold starts
//! byte for byte.
//!
//! ```text
//! cargo run --release -p esp4ml-bench --bin sim_speed -- --frames 16 --out BENCH_sim_speed.json
//! ```
//!
//! The JSON artifact is committed at the repo root and refreshed by the
//! CI bench-baseline job, so speedup regressions show up in review.

use esp4ml::apps::TrainedModels;
use esp4ml::experiments::{AppRun, Fig7, GridPoint, Table1};
use esp4ml_bench::parallel;
use esp4ml_soc::SocEngine;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct GridReport {
    grid: String,
    engine: String,
    points: usize,
    frames: u64,
    simulated_cycles: u64,
    naive_serial_secs: f64,
    event_serial_secs: f64,
    event_parallel_secs: f64,
    fork_serial_secs: f64,
    parallel_jobs: usize,
    event_vs_naive_speedup: f64,
    parallel_vs_serial_speedup: f64,
    fork_vs_cold_speedup: f64,
    cycle_exact: bool,
    fork_identical: bool,
}

#[derive(Debug, Serialize)]
struct Report {
    version: String,
    frames: u64,
    grids: Vec<GridReport>,
}

fn measure(
    name: &str,
    points: &[GridPoint],
    models: &TrainedModels,
    frames: u64,
    jobs: usize,
) -> Result<GridReport, Box<dyn std::error::Error>> {
    let time = |engine: SocEngine,
                jobs: usize,
                fork: bool|
     -> Result<(Vec<AppRun>, f64), Box<dyn std::error::Error>> {
        let start = Instant::now();
        let runs =
            parallel::run_grid(points, models, frames, engine, jobs, false, None, fork, None)?;
        Ok((runs, start.elapsed().as_secs_f64()))
    };
    // `run_grid` clamps the pool to the grid size; report the worker
    // count that actually ran so the JSON artifact is honest.
    let jobs = jobs.min(points.len());
    let (naive, naive_serial_secs) = time(SocEngine::Naive, 1, false)?;
    let (event, event_serial_secs) = time(SocEngine::EventDriven, 1, false)?;
    let (par, event_parallel_secs) = time(SocEngine::EventDriven, jobs, false)?;
    // Fork leg: serial on purpose, so fork_vs_cold_speedup isolates the
    // shared-prefix memoization from thread-pool scaling.
    let (forked, fork_serial_secs) = time(SocEngine::EventDriven, 1, true)?;
    let cycle_exact = naive
        .iter()
        .zip(&event)
        .zip(&par)
        .all(|((n, e), p)| n.metrics == e.metrics && e.metrics == p.metrics);
    let fork_identical = event
        .iter()
        .zip(&forked)
        .all(|(e, f)| e.metrics == f.metrics && e.predictions == f.predictions);
    let simulated_cycles = naive.iter().map(|r| r.metrics.cycles).sum();
    Ok(GridReport {
        grid: name.to_string(),
        engine: "event-driven".to_string(),
        points: points.len(),
        frames,
        simulated_cycles,
        naive_serial_secs,
        event_serial_secs,
        event_parallel_secs,
        fork_serial_secs,
        parallel_jobs: jobs,
        event_vs_naive_speedup: naive_serial_secs / event_serial_secs.max(f64::EPSILON),
        parallel_vs_serial_speedup: event_serial_secs / event_parallel_secs.max(f64::EPSILON),
        fork_vs_cold_speedup: event_serial_secs / fork_serial_secs.max(f64::EPSILON),
        cycle_exact,
        fork_identical,
    })
}

fn main() {
    let mut frames = 16u64;
    // The parallel leg must actually exercise the pool: on a single-core
    // box `default_jobs()` is 1, which silently degenerated the
    // "parallel" measurement into a second serial run.
    let mut jobs = parallel::default_jobs().max(2);
    let mut out = PathBuf::from("BENCH_sim_speed.json");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut grab = || it.next().ok_or_else(|| format!("{arg} needs a value"));
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--frames" => frames = grab()?.parse().map_err(|e| format!("--frames: {e}"))?,
                "--jobs" => jobs = grab()?.parse().map_err(|e| format!("--jobs: {e}"))?,
                "--out" => out = PathBuf::from(grab()?),
                other => {
                    return Err(format!(
                        "unknown option {other}; supported: --frames N --jobs N --out PATH"
                    ))
                }
            }
            Ok(())
        })();
        if let Err(msg) = result {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
    let models = TrainedModels::untrained();
    let grids: [(&str, Vec<GridPoint>); 2] = [("table1", Table1::grid()), ("fig7", Fig7::grid())];
    let mut report = Report {
        version: env!("CARGO_PKG_VERSION").to_string(),
        frames,
        grids: Vec::new(),
    };
    for (name, points) in &grids {
        eprintln!("measuring {name} grid ({} points)...", points.len());
        match measure(name, points, &models, frames, jobs) {
            Ok(g) => {
                println!(
                    "{:<8} {:>2} points: naive {:.2}s | event {:.2}s ({:.1}x) | \
                     parallel x{} {:.2}s ({:.1}x) | forked {:.2}s ({:.1}x) | \
                     cycle-exact: {} | fork-identical: {}",
                    g.grid,
                    g.points,
                    g.naive_serial_secs,
                    g.event_serial_secs,
                    g.event_vs_naive_speedup,
                    g.parallel_jobs,
                    g.event_parallel_secs,
                    g.parallel_vs_serial_speedup,
                    g.fork_serial_secs,
                    g.fork_vs_cold_speedup,
                    g.cycle_exact,
                    g.fork_identical,
                );
                report.grids.push(g);
            }
            Err(e) => {
                eprintln!("{name} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if report.grids.iter().any(|g| !g.cycle_exact) {
        eprintln!("FAIL: engines diverged — the event-driven engine is not cycle-exact");
        std::process::exit(1);
    }
    if report.grids.iter().any(|g| !g.fork_identical) {
        eprintln!("FAIL: prefix-forked runs diverged from cold starts");
        std::process::exit(1);
    }
    match serde_json::to_value(&report) {
        Ok(payload) => {
            let json = esp4ml::trace::schema::envelope_json("sim-speed", payload);
            if let Err(e) = std::fs::write(&out, json + "\n") {
                eprintln!("failed to write {}: {e}", out.display());
                std::process::exit(1);
            }
            println!("wrote {}", out.display());
        }
        Err(e) => {
            eprintln!("failed to serialize report: {e}");
            std::process::exit(1);
        }
    }
}
