//! The one command-line parser behind every harness binary.
//!
//! fig7/fig8/table1/espprof/espspan/espfault/espcheck/accuracy/training
//! all parse the same [`HarnessArgs`] through [`parse`], differing only
//! in the [`HarnessSpec`] naming which [`Flag`]s they accept and what
//! their defaults are. One flag therefore has one spelling, one help
//! line, and one error message everywhere — `--engine` cannot drift
//! between binaries — and every binary answers `--help`.

use crate::parallel;
use esp4ml::apps::TrainedModels;
use esp4ml::faults::FaultConfig;
use esp4ml_fault::FaultPlan;
use esp4ml_runtime::ExecMode;
use esp4ml_soc::SocEngine;
use std::path::PathBuf;

/// Every option any harness binary understands. A binary opts into a
/// subset via its [`HarnessSpec`]; the flag's token, value placeholder
/// and help line are shared, so the `--help` text and error messages
/// are identical wherever the flag appears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flag {
    /// `--frames N`
    Frames,
    /// `--train`
    Train,
    /// `--no-train`
    NoTrain,
    /// `--samples N`
    Samples,
    /// `--epochs N`
    Epochs,
    /// `--trace PATH`
    Trace,
    /// `--profile PATH`
    Profile,
    /// `--spans PATH`
    Spans,
    /// `--sample-every CYCLES`
    SampleEvery,
    /// `--engine naive|event`
    Engine,
    /// `--jobs N`
    Jobs,
    /// `--fork-prefix`
    ForkPrefix,
    /// `--sanitize`
    Sanitize,
    /// `--faults PLAN.json`
    Faults,
    /// `--config IDX` (a Fig. 7 configuration index, repeatable)
    Config,
    /// `--config PATH` (a configuration file to lint, repeatable)
    ConfigPath,
    /// `--all`
    All,
    /// `--mode base|pipe|p2p` (repeatable)
    Mode,
    /// `--seeds N`
    Seeds,
    /// `--json PATH`
    Json,
    /// `--flame PATH`
    Flame,
    /// `--metrics PATH`
    Metrics,
    /// `--progress`
    Progress,
    /// `--deployment DEPLOY.json`
    Deployment,
    /// `--explain CODE`
    Explain,
}

impl Flag {
    /// The command-line token.
    pub fn token(self) -> &'static str {
        match self {
            Flag::Frames => "--frames",
            Flag::Train => "--train",
            Flag::NoTrain => "--no-train",
            Flag::Samples => "--samples",
            Flag::Epochs => "--epochs",
            Flag::Trace => "--trace",
            Flag::Profile => "--profile",
            Flag::Spans => "--spans",
            Flag::SampleEvery => "--sample-every",
            Flag::Engine => "--engine",
            Flag::Jobs => "--jobs",
            Flag::ForkPrefix => "--fork-prefix",
            Flag::Sanitize => "--sanitize",
            Flag::Faults => "--faults",
            Flag::Config | Flag::ConfigPath => "--config",
            Flag::All => "--all",
            Flag::Mode => "--mode",
            Flag::Seeds => "--seeds",
            Flag::Json => "--json",
            Flag::Flame => "--flame",
            Flag::Metrics => "--metrics",
            Flag::Progress => "--progress",
            Flag::Deployment => "--deployment",
            Flag::Explain => "--explain",
        }
    }

    /// Placeholder for the flag's value (`None` for boolean switches).
    pub fn value_name(self) -> Option<&'static str> {
        match self {
            Flag::Frames | Flag::Samples | Flag::Epochs | Flag::Jobs | Flag::Seeds => Some("N"),
            Flag::SampleEvery => Some("CYCLES"),
            Flag::Engine => Some("naive|event"),
            Flag::Mode => Some("base|pipe|p2p"),
            Flag::Config => Some("IDX"),
            Flag::Faults => Some("PLAN.json"),
            Flag::Deployment => Some("DEPLOY.json"),
            Flag::Explain => Some("CODE"),
            Flag::Trace
            | Flag::Profile
            | Flag::Spans
            | Flag::ConfigPath
            | Flag::Json
            | Flag::Flame
            | Flag::Metrics => Some("PATH"),
            Flag::Train
            | Flag::NoTrain
            | Flag::ForkPrefix
            | Flag::Sanitize
            | Flag::All
            | Flag::Progress => None,
        }
    }

    /// One-line description for `--help`.
    pub fn help(self) -> &'static str {
        match self {
            Flag::Frames => "simulated frames per measurement point",
            Flag::Train => "train the models on the synthetic dataset first",
            Flag::NoTrain => "use untrained weights (the default)",
            Flag::Samples => "training samples",
            Flag::Epochs => "training epochs",
            Flag::Trace => "write a Chrome trace_event JSON of every run",
            Flag::Profile => "profile every run online and write the report JSON",
            Flag::Spans => "assemble frame-level span trees and write the report JSON",
            Flag::SampleEvery => "with --trace, sample the SoC counters every CYCLES cycles",
            Flag::Engine => "simulation engine",
            Flag::Jobs => "worker threads for grid execution",
            Flag::ForkPrefix => {
                "fork points sharing a config prefix from one warm snapshot (same results, faster)"
            }
            Flag::Sanitize => "audit every run with the runtime invariant sanitizer",
            Flag::Faults => "install the fault plan on every run's SoC (recovery armed)",
            Flag::Config => "configuration/grid-point index to run (repeatable; default: all)",
            Flag::ConfigPath => "lint the configuration file instead of the built-ins (repeatable)",
            Flag::All => "sweep every Fig. 7 configuration",
            Flag::Mode => "execution mode to run (repeatable; default: pipe and p2p)",
            Flag::Seeds => "number of campaign seeds to sweep",
            Flag::Json => "write the machine-readable report JSON",
            Flag::Flame => "write folded flame stacks",
            Flag::Metrics => "write the enveloped run-metrics artifact JSON",
            Flag::Progress => "print one progress JSON line to stderr per completed unit",
            Flag::Deployment => "statically analyze a multi-tenant deployment file (E07xx)",
            Flag::Explain => "print the documentation for a stable diagnostic code and exit",
        }
    }

    /// `--frames N` / `--sanitize` — the form used in usage listings.
    fn usage_form(self) -> String {
        match self.value_name() {
            Some(v) => format!("{} {v}", self.token()),
            None => self.token().to_string(),
        }
    }
}

/// The flag set of the figure/table harnesses (`fig7`, `fig8`).
pub const FIGURE_FLAGS: &[Flag] = &[
    Flag::Frames,
    Flag::Train,
    Flag::NoTrain,
    Flag::Samples,
    Flag::Epochs,
    Flag::Trace,
    Flag::Profile,
    Flag::Spans,
    Flag::SampleEvery,
    Flag::Engine,
    Flag::Jobs,
    Flag::ForkPrefix,
    Flag::Sanitize,
    Flag::Faults,
    Flag::Config,
    Flag::Metrics,
    Flag::Progress,
];

/// `table1` — the figure set minus `--faults` (the table's platform
/// comparison is meaningless under injected faults).
pub const TABLE_FLAGS: &[Flag] = &[
    Flag::Frames,
    Flag::Train,
    Flag::NoTrain,
    Flag::Samples,
    Flag::Epochs,
    Flag::Trace,
    Flag::Profile,
    Flag::Spans,
    Flag::SampleEvery,
    Flag::Engine,
    Flag::Jobs,
    Flag::ForkPrefix,
    Flag::Sanitize,
    Flag::Config,
    Flag::Metrics,
    Flag::Progress,
];

/// `espprof` — one configuration across execution modes, profiled.
pub const ESPPROF_FLAGS: &[Flag] = &[
    Flag::Frames,
    Flag::Config,
    Flag::Mode,
    Flag::Engine,
    Flag::Json,
    Flag::Metrics,
    Flag::Progress,
];

/// `espspan` — configurations across execution modes, span-assembled.
pub const ESPSPAN_FLAGS: &[Flag] = &[
    Flag::Frames,
    Flag::Config,
    Flag::All,
    Flag::Mode,
    Flag::Engine,
    Flag::Json,
    Flag::Flame,
    Flag::Metrics,
    Flag::Progress,
];

/// `espfault` — seeded fault-injection campaigns.
pub const ESPFAULT_FLAGS: &[Flag] = &[
    Flag::Frames,
    Flag::Seeds,
    Flag::Engine,
    Flag::Json,
    Flag::Progress,
];

/// `espcheck` — the static linter (no simulation flags at all).
pub const ESPCHECK_FLAGS: &[Flag] = &[
    Flag::ConfigPath,
    Flag::Deployment,
    Flag::Explain,
    Flag::Json,
    Flag::Progress,
];

/// `accuracy`/`training` — training-budget flags only.
pub const TRAINING_FLAGS: &[Flag] = &[Flag::Frames, Flag::Samples, Flag::Epochs];

/// What one binary accepts: its name, a one-line description, the
/// [`Flag`]s it understands, and the [`HarnessArgs`] it starts from.
#[derive(Debug, Clone)]
pub struct HarnessSpec {
    /// Binary name for the usage line.
    pub binary: &'static str,
    /// One-line description printed by `--help`.
    pub about: &'static str,
    /// Accepted flags, in help/usage order.
    pub flags: &'static [Flag],
    /// Starting values (per-binary defaults differ, e.g. `--frames`).
    pub defaults: HarnessArgs,
}

impl HarnessSpec {
    /// Builds a spec with the workspace-wide [`HarnessArgs::default`]s.
    pub fn new(binary: &'static str, about: &'static str, flags: &'static [Flag]) -> HarnessSpec {
        HarnessSpec {
            binary,
            about,
            flags,
            defaults: HarnessArgs::default(),
        }
    }

    /// Adjusts the starting [`HarnessArgs`] (e.g. `espprof` defaults to
    /// 8 frames where the figures default to 64).
    pub fn with_defaults(mut self, tweak: impl FnOnce(&mut HarnessArgs)) -> HarnessSpec {
        tweak(&mut self.defaults);
        self
    }

    fn supported(&self) -> String {
        self.flags
            .iter()
            .map(|f| f.usage_form())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Renders the `--help` text.
    pub fn render_help(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "usage: {} [options]\n\n{}\n\noptions:\n",
            self.binary, self.about
        );
        for flag in self.flags {
            let default = self.default_note(*flag);
            let _ = writeln!(
                out,
                "  {:<24} {}{}",
                flag.usage_form(),
                flag.help(),
                default
                    .map(|d| format!(" (default: {d})"))
                    .unwrap_or_default(),
            );
        }
        let _ = writeln!(out, "  {:<24} print this help", "--help");
        out
    }

    /// The default shown in `--help` for value-taking flags whose
    /// starting value is meaningful.
    fn default_note(&self, flag: Flag) -> Option<String> {
        match flag {
            Flag::Frames => Some(self.defaults.frames.to_string()),
            Flag::Samples => Some(self.defaults.samples.to_string()),
            Flag::Epochs => Some(self.defaults.epochs.to_string()),
            Flag::Jobs => Some(self.defaults.jobs.to_string()),
            Flag::Seeds => Some(self.defaults.seeds.to_string()),
            Flag::Engine => Some(engine_name(self.defaults.engine).to_string()),
            _ => None,
        }
    }
}

/// Why parsing stopped without producing a [`HarnessArgs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help` was requested; the payload is the rendered help text.
    Help(String),
    /// A usage error; the payload is the message for stderr.
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Help(text) | CliError::Usage(text) => f.write_str(text),
        }
    }
}

impl std::error::Error for CliError {}

/// Terminates the process per the harness exit-status contract: help
/// goes to stdout with status 0, usage errors to stderr with status 2.
pub fn exit_on_error(err: CliError) -> ! {
    match err {
        CliError::Help(text) => {
            println!("{text}");
            std::process::exit(0);
        }
        CliError::Usage(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

/// The canonical name of an engine (`naive` / `event-driven`), as
/// recorded in every machine-readable report.
pub fn engine_name(engine: SocEngine) -> &'static str {
    match engine {
        SocEngine::Naive => "naive",
        SocEngine::EventDriven => "event-driven",
    }
}

/// Parses an engine name (`naive`, `event`, `event-driven`).
///
/// # Errors
///
/// The shared `--engine: unknown engine {name}` message.
pub fn engine_from_str(v: &str) -> Result<SocEngine, String> {
    match v {
        "naive" => Ok(SocEngine::Naive),
        "event" | "event-driven" => Ok(SocEngine::EventDriven),
        other => Err(format!("--engine: unknown engine {other}")),
    }
}

/// Parses an execution-mode name (`base`, `pipe`, `p2p`).
///
/// # Errors
///
/// The shared `--mode: unknown mode {name}` message.
pub fn mode_from_str(v: &str) -> Result<ExecMode, String> {
    match v {
        "base" => Ok(ExecMode::Base),
        "pipe" => Ok(ExecMode::Pipe),
        "p2p" => Ok(ExecMode::P2p),
        other => Err(format!("--mode: unknown mode {other}")),
    }
}

/// Command-line options shared by the harness binaries. Which fields a
/// given binary can actually set is governed by its [`HarnessSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Frames to simulate per measurement point.
    pub frames: u64,
    /// Whether to train the models first.
    pub train: bool,
    /// Training samples.
    pub samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Where to write the Chrome trace JSON, when tracing is on.
    pub trace: Option<PathBuf>,
    /// Where to write the profile report JSON, when profiling is on.
    pub profile: Option<PathBuf>,
    /// Where to write the span-report JSON, when span assembly is on
    /// (a Perfetto flow-linked span trace lands next to it).
    pub spans: Option<PathBuf>,
    /// Counter sampling period in cycles (requires `trace`).
    pub sample_every: Option<u64>,
    /// Simulation engine driving every run.
    pub engine: SocEngine,
    /// Worker threads for grid execution (ignored when tracing).
    pub jobs: usize,
    /// Fork grid points sharing a config prefix from one warm snapshot
    /// (`--fork-prefix`); byte-identical results, less wall clock.
    pub fork_prefix: bool,
    /// Run every grid point with the runtime invariant sanitizer armed
    /// (`esp4ml_soc::SanitizerConfig::all`); any violation fails the
    /// harness with the typed diagnostics.
    pub sanitize: bool,
    /// Fault plan JSON to install on every run's SoC, with the
    /// watchdog/retry/failover recovery layer armed.
    pub faults: Option<PathBuf>,
    /// Fig. 7 configuration indices (`--config IDX`, repeatable).
    pub configs: Vec<usize>,
    /// Configuration files to lint (`--config PATH`, repeatable).
    pub config_paths: Vec<PathBuf>,
    /// Sweep every Fig. 7 configuration (`--all`).
    pub all: bool,
    /// Execution modes to run (`--mode`, repeatable).
    pub modes: Vec<ExecMode>,
    /// Campaign seeds to sweep (`--seeds N`).
    pub seeds: u64,
    /// Where to write the machine-readable report JSON (`--json`).
    pub json: Option<PathBuf>,
    /// Where to write folded flame stacks (`--flame`).
    pub flame: Option<PathBuf>,
    /// Where to write the enveloped run-metrics artifact (`--metrics`).
    pub metrics: Option<PathBuf>,
    /// Print one progress JSON line to stderr per completed unit
    /// (`--progress`).
    pub progress: bool,
    /// Deployment files to analyze (`--deployment`, repeatable).
    pub deployments: Vec<PathBuf>,
    /// Diagnostic code to document and exit (`--explain CODE`).
    pub explain: Option<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            frames: 64,
            train: false,
            samples: 6000,
            epochs: 30,
            trace: None,
            profile: None,
            spans: None,
            sample_every: None,
            engine: SocEngine::default(),
            jobs: parallel::default_jobs(),
            fork_prefix: false,
            sanitize: false,
            faults: None,
            configs: Vec::new(),
            config_paths: Vec::new(),
            all: false,
            modes: Vec::new(),
            seeds: 2,
            json: None,
            flame: None,
            metrics: None,
            progress: false,
            deployments: Vec::new(),
            explain: None,
        }
    }
}

/// Parses `std::env::args`-style options against a binary's spec.
/// Unknown options are rejected with a message listing the supported
/// ones; `--help`/`-h` short-circuits with the rendered help text.
///
/// # Errors
///
/// [`CliError::Help`] on a help request, [`CliError::Usage`] otherwise.
pub fn parse(
    spec: &HarnessSpec,
    args: impl Iterator<Item = String>,
) -> Result<HarnessArgs, CliError> {
    parse_inner(spec, args).map_err(|e| match e {
        HelpOrMsg::Help => CliError::Help(spec.render_help()),
        HelpOrMsg::Msg(m) => CliError::Usage(m),
    })
}

enum HelpOrMsg {
    Help,
    Msg(String),
}

impl From<String> for HelpOrMsg {
    fn from(m: String) -> Self {
        HelpOrMsg::Msg(m)
    }
}

fn parse_inner(
    spec: &HarnessSpec,
    args: impl Iterator<Item = String>,
) -> Result<HarnessArgs, HelpOrMsg> {
    let mut out = spec.defaults.clone();
    let mut it = args;
    while let Some(arg) = it.next() {
        if arg == "--help" || arg == "-h" {
            return Err(HelpOrMsg::Help);
        }
        let Some(&flag) = spec.flags.iter().find(|f| f.token() == arg) else {
            return Err(format!("unknown option {arg}; supported: {}", spec.supported()).into());
        };
        let mut value = || -> Result<String, String> {
            it.next()
                .ok_or_else(|| format!("{} needs a value", flag.token()))
        };
        let mut number = || -> Result<u64, String> {
            value()?
                .parse::<u64>()
                .map_err(|e| format!("{}: {e}", flag.token()))
        };
        match flag {
            Flag::Frames => out.frames = number()?,
            Flag::Train => out.train = true,
            Flag::NoTrain => out.train = false,
            Flag::Samples => out.samples = number()? as usize,
            Flag::Epochs => out.epochs = number()? as usize,
            Flag::Trace => out.trace = Some(PathBuf::from(value()?)),
            Flag::Profile => out.profile = Some(PathBuf::from(value()?)),
            Flag::Spans => out.spans = Some(PathBuf::from(value()?)),
            Flag::SampleEvery => out.sample_every = Some(number()?),
            Flag::Engine => out.engine = engine_from_str(&value()?)?,
            Flag::Jobs => out.jobs = number()? as usize,
            Flag::ForkPrefix => out.fork_prefix = true,
            Flag::Sanitize => out.sanitize = true,
            Flag::Faults => out.faults = Some(PathBuf::from(value()?)),
            Flag::Config => out.configs.push(number()? as usize),
            Flag::ConfigPath => out.config_paths.push(PathBuf::from(value()?)),
            Flag::All => out.all = true,
            Flag::Mode => out.modes.push(mode_from_str(&value()?)?),
            Flag::Seeds => out.seeds = number()?,
            Flag::Json => out.json = Some(PathBuf::from(value()?)),
            Flag::Flame => out.flame = Some(PathBuf::from(value()?)),
            Flag::Metrics => out.metrics = Some(PathBuf::from(value()?)),
            Flag::Progress => out.progress = true,
            Flag::Deployment => out.deployments.push(PathBuf::from(value()?)),
            Flag::Explain => out.explain = Some(value()?),
        }
    }
    validate(spec, &out)?;
    Ok(out)
}

/// Cross-flag rules, applied only where the spec accepts the flags
/// involved (so `espcheck` never complains about `--frames`).
fn validate(spec: &HarnessSpec, out: &HarnessArgs) -> Result<(), String> {
    let has = |f: Flag| spec.flags.contains(&f);
    if has(Flag::Frames) && out.frames == 0 {
        return Err("--frames must be at least 1".into());
    }
    if has(Flag::SampleEvery) {
        if out.sample_every == Some(0) {
            return Err("--sample-every must be at least 1".into());
        }
        if out.sample_every.is_some() && out.trace.is_none() {
            return Err("--sample-every requires --trace".into());
        }
    }
    if has(Flag::Jobs) && out.jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    if has(Flag::Seeds) && out.seeds == 0 {
        return Err("--seeds must be at least 1".into());
    }
    if has(Flag::Sanitize)
        && out.sanitize
        && (out.trace.is_some() || out.profile.is_some() || out.spans.is_some())
    {
        return Err(
            "--sanitize cannot be combined with --trace/--profile/--spans; \
             run them separately"
                .into(),
        );
    }
    if has(Flag::Faults)
        && out.faults.is_some()
        && (out.trace.is_some() || out.profile.is_some() || out.spans.is_some() || out.sanitize)
    {
        return Err(
            "--faults cannot be combined with --trace/--profile/--spans/--sanitize; \
             injected faults deliberately break the invariants those audit"
                .into(),
        );
    }
    if has(Flag::All) && out.all && !out.configs.is_empty() {
        return Err("--all and --config are mutually exclusive".into());
    }
    Ok(())
}

impl HarnessArgs {
    /// Parses with the figure-harness spec — the historical
    /// `HarnessArgs::parse` surface, kept for the library tests and
    /// any caller that wants the full flag set.
    ///
    /// # Errors
    ///
    /// Returns a usage string when parsing fails (help requests render
    /// the figure help text as the error string).
    pub fn parse(args: impl Iterator<Item = String>) -> Result<HarnessArgs, String> {
        let spec = HarnessSpec::new("harness", "ESP4ML harness options.", FIGURE_FLAGS);
        parse(&spec, args).map_err(|e| e.to_string())
    }

    /// Loads the `--faults` plan file (`None` when the flag was not
    /// given). The plan is returned raw; [`FaultConfig`] assembly —
    /// campaign watchdog and all — happens inside the request layer so
    /// the server and the CLI can never disagree on recovery policy.
    ///
    /// # Errors
    ///
    /// File or JSON failures, as a printable message.
    pub fn fault_plan(&self) -> Result<Option<FaultPlan>, String> {
        let Some(path) = &self.faults else {
            return Ok(None);
        };
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("--faults {}: {e}", path.display()))?;
        let plan = FaultPlan::from_json(&json)
            .map_err(|e| format!("--faults {}: not a fault plan: {e}", path.display()))?;
        Ok(Some(plan))
    }

    /// Loads the `--faults` plan file into a [`FaultConfig`] with the
    /// campaign watchdog armed (`None` when the flag was not given).
    ///
    /// # Errors
    ///
    /// File or JSON failures, as a printable message.
    pub fn fault_config(&self) -> Result<Option<FaultConfig>, String> {
        Ok(self.fault_plan()?.map(|plan| {
            FaultConfig::from_plan(plan).with_watchdog(esp4ml::faults::CAMPAIGN_WATCHDOG_CYCLES)
        }))
    }

    /// Builds the models per the options (training prints its progress).
    pub fn models(&self) -> TrainedModels {
        if self.train {
            eprintln!(
                "training models on {} synthetic samples for {} epochs...",
                self.samples, self.epochs
            );
            let m = TrainedModels::train(self.samples, self.epochs, 1);
            if let Some(acc) = m.classifier_accuracy {
                eprintln!("classifier test accuracy: {:.1}% (paper: 92%)", 100.0 * acc);
            }
            if let Some(err) = m.denoiser_error {
                eprintln!(
                    "denoiser reconstruction error: {:.1}% (paper: 3.1%)",
                    100.0 * err
                );
            }
            m
        } else {
            TrainedModels::untrained()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_figure(v: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(v.iter().map(|s| s.to_string()))
    }

    fn parse_spec(spec: &HarnessSpec, v: &[&str]) -> Result<HarnessArgs, CliError> {
        parse(spec, v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse_figure(&[]).unwrap();
        assert_eq!(a.frames, 64);
        assert!(!a.train);
    }

    #[test]
    fn overrides() {
        let a = parse_figure(&[
            "--frames",
            "8",
            "--train",
            "--samples",
            "100",
            "--epochs",
            "2",
        ])
        .unwrap();
        assert_eq!(a.frames, 8);
        assert!(a.train);
        assert_eq!(a.samples, 100);
        assert_eq!(a.epochs, 2);
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(parse_figure(&["--bogus"]).is_err());
        assert!(parse_figure(&["--frames"]).is_err());
        assert!(parse_figure(&["--frames", "abc"]).is_err());
        assert!(parse_figure(&["--frames", "0"]).is_err());
    }

    #[test]
    fn unknown_option_lists_the_specs_flags_only() {
        let spec = HarnessSpec::new("espfault", "", ESPFAULT_FLAGS);
        let err = parse_spec(&spec, &["--bogus"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unknown option --bogus"), "{msg}");
        assert!(msg.contains("--seeds N"), "{msg}");
        assert!(!msg.contains("--sanitize"), "{msg}");
    }

    #[test]
    fn sanitize_option() {
        let a = parse_figure(&["--sanitize"]).unwrap();
        assert!(a.sanitize);
        assert!(!parse_figure(&[]).unwrap().sanitize);
        assert!(parse_figure(&["--sanitize", "--trace", "/tmp/t.json"]).is_err());
        assert!(parse_figure(&["--sanitize", "--profile", "/tmp/p.json"]).is_err());
    }

    #[test]
    fn engine_and_jobs_options() {
        let a = parse_figure(&["--engine", "naive", "--jobs", "3"]).unwrap();
        assert_eq!(a.engine, SocEngine::Naive);
        assert_eq!(a.jobs, 3);
        let a = parse_figure(&["--engine", "event"]).unwrap();
        assert_eq!(a.engine, SocEngine::EventDriven);
        assert!(parse_figure(&["--engine", "warp"]).is_err());
        assert!(parse_figure(&["--jobs", "0"]).is_err());
    }

    #[test]
    fn fork_prefix_option() {
        assert!(!parse_figure(&[]).unwrap().fork_prefix);
        assert!(parse_figure(&["--fork-prefix"]).unwrap().fork_prefix);
        // Composes with the other grid-execution switches.
        let a = parse_figure(&["--fork-prefix", "--jobs", "2", "--sanitize"]).unwrap();
        assert!(a.fork_prefix && a.sanitize);
        // espfault forks unconditionally, so its spec does not take it.
        let spec = HarnessSpec::new("espfault", "f", ESPFAULT_FLAGS);
        assert!(parse_spec(&spec, &["--fork-prefix"]).is_err());
    }

    #[test]
    fn faults_option() {
        let a = parse_figure(&["--faults", "/tmp/plan.json"]).unwrap();
        assert_eq!(
            a.faults.as_deref(),
            Some(std::path::Path::new("/tmp/plan.json"))
        );
        assert!(parse_figure(&[]).unwrap().faults.is_none());
        assert!(parse_figure(&["--faults"]).is_err());
        assert!(parse_figure(&["--faults", "p.json", "--sanitize"]).is_err());
        assert!(parse_figure(&["--faults", "p.json", "--trace", "/tmp/t.json"]).is_err());
        assert!(parse_figure(&["--faults", "p.json", "--profile", "/tmp/p.json"]).is_err());
    }

    #[test]
    fn fault_config_loads_a_plan_file() {
        use esp4ml_fault::FaultSpec;
        let dir = std::env::temp_dir().join("esp4ml_bench_faults_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.json");
        let plan = FaultPlan::new(9).with(FaultSpec::transient_hang("nv0", 0));
        std::fs::write(&path, plan.to_json().unwrap()).unwrap();
        let args = parse_figure(&["--faults", path.to_str().unwrap()]).unwrap();
        let config = args.fault_config().unwrap().unwrap();
        assert_eq!(config.plan, plan);
        assert!(config.software_fallback);
        std::fs::write(&path, "not json").unwrap();
        assert!(args.fault_config().is_err());
        assert!(parse_figure(&[]).unwrap().fault_config().unwrap().is_none());
    }

    #[test]
    fn profile_option() {
        let a = parse_figure(&["--profile", "/tmp/p.json"]).unwrap();
        assert_eq!(
            a.profile.as_deref(),
            Some(std::path::Path::new("/tmp/p.json"))
        );
        assert!(a.trace.is_none());
        assert!(parse_figure(&["--profile"]).is_err());
    }

    #[test]
    fn spans_option() {
        let a = parse_figure(&["--spans", "/tmp/s.json"]).unwrap();
        assert_eq!(
            a.spans.as_deref(),
            Some(std::path::Path::new("/tmp/s.json"))
        );
        assert!(parse_figure(&[]).unwrap().spans.is_none());
        assert!(parse_figure(&["--spans"]).is_err());
        // Spans compose with trace and profile...
        assert!(parse_figure(&["--spans", "s.json", "--trace", "t.json"]).is_ok());
        assert!(parse_figure(&["--spans", "s.json", "--profile", "p.json"]).is_ok());
        // ...but not with the sanitizer or fault injection.
        assert!(parse_figure(&["--spans", "s.json", "--sanitize"]).is_err());
        assert!(parse_figure(&["--spans", "s.json", "--faults", "f.json"]).is_err());
    }

    #[test]
    fn trace_options() {
        let a = parse_figure(&["--trace", "/tmp/t.json", "--sample-every", "500"]).unwrap();
        assert_eq!(
            a.trace.as_deref(),
            Some(std::path::Path::new("/tmp/t.json"))
        );
        assert_eq!(a.sample_every, Some(500));
        assert!(parse_figure(&["--trace"]).is_err());
        assert!(
            parse_figure(&["--sample-every", "100"]).is_err(),
            "needs --trace"
        );
        assert!(parse_figure(&["--trace", "/tmp/t.json", "--sample-every", "0"]).is_err());
    }

    #[test]
    fn metrics_option() {
        let a = parse_figure(&["--metrics", "/tmp/m.json"]).unwrap();
        assert_eq!(
            a.metrics.as_deref(),
            Some(std::path::Path::new("/tmp/m.json"))
        );
        assert!(parse_figure(&["--metrics"]).is_err());
    }

    #[test]
    fn help_is_a_distinct_outcome() {
        let spec = HarnessSpec::new("fig7", "Regenerates Fig. 7.", FIGURE_FLAGS);
        match parse_spec(&spec, &["--help"]) {
            Err(CliError::Help(text)) => {
                assert!(text.starts_with("usage: fig7 [options]"), "{text}");
                assert!(text.contains("--frames N"), "{text}");
                assert!(text.contains("(default: 64)"), "{text}");
                assert!(text.contains("--help"), "{text}");
            }
            other => panic!("expected help, got {other:?}"),
        }
        assert!(matches!(parse_spec(&spec, &["-h"]), Err(CliError::Help(_))));
    }

    #[test]
    fn help_lines_are_identical_across_binaries() {
        let fig = HarnessSpec::new("fig7", "a", FIGURE_FLAGS).render_help();
        let prof = HarnessSpec::new("espprof", "b", ESPPROF_FLAGS)
            .with_defaults(|d| d.frames = 8)
            .render_help();
        // The shared flags render the same help line everywhere.
        let line = |help: &str, token: &str| -> String {
            help.lines()
                .find(|l| l.trim_start().starts_with(token))
                .unwrap_or_default()
                .trim_start()
                .to_string()
        };
        assert_eq!(line(&fig, "--engine"), line(&prof, "--engine"));
        assert_eq!(line(&fig, "--metrics"), line(&prof, "--metrics"));
    }

    #[test]
    fn spec_gates_flags_and_defaults() {
        let spec = HarnessSpec::new("espprof", "p", ESPPROF_FLAGS).with_defaults(|d| d.frames = 8);
        let a = parse_spec(&spec, &[]).unwrap();
        assert_eq!(a.frames, 8);
        // Figure-only flags are unknown here.
        assert!(parse_spec(&spec, &["--trace", "/tmp/t.json"]).is_err());
        // Repeatable --config and --mode accumulate.
        let a = parse_spec(&spec, &["--config", "1", "--config", "4", "--mode", "base"]).unwrap();
        assert_eq!(a.configs, vec![1, 4]);
        assert_eq!(a.modes, vec![ExecMode::Base]);
        assert!(parse_spec(&spec, &["--mode", "warp"]).is_err());
    }

    #[test]
    fn all_excludes_config() {
        let spec = HarnessSpec::new("espspan", "s", ESPSPAN_FLAGS);
        assert!(parse_spec(&spec, &["--all"]).is_ok());
        let err = parse_spec(&spec, &["--all", "--config", "1"]).unwrap_err();
        assert_eq!(err.to_string(), "--all and --config are mutually exclusive");
    }

    #[test]
    fn seeds_validation_only_where_accepted() {
        let spec =
            HarnessSpec::new("espfault", "f", ESPFAULT_FLAGS).with_defaults(|d| d.frames = 3);
        assert!(parse_spec(&spec, &["--seeds", "0"]).is_err());
        let a = parse_spec(&spec, &["--seeds", "5"]).unwrap();
        assert_eq!(a.seeds, 5);
    }

    #[test]
    fn espcheck_spec_takes_config_paths() {
        let spec = HarnessSpec::new("espcheck", "c", ESPCHECK_FLAGS);
        let a = parse_spec(&spec, &["--config", "a.json", "--config", "b.json"]).unwrap();
        assert_eq!(
            a.config_paths,
            vec![PathBuf::from("a.json"), PathBuf::from("b.json")]
        );
        assert!(a.configs.is_empty());
        assert!(parse_spec(&spec, &["--frames", "4"]).is_err());
    }

    #[test]
    fn espcheck_spec_takes_deployment_and_explain() {
        let spec = HarnessSpec::new("espcheck", "c", ESPCHECK_FLAGS);
        let a = parse_spec(&spec, &["--deployment", "d.json", "--deployment", "e.json"]).unwrap();
        assert_eq!(
            a.deployments,
            vec![PathBuf::from("d.json"), PathBuf::from("e.json")]
        );
        let a = parse_spec(&spec, &["--explain", "E0703"]).unwrap();
        assert_eq!(a.explain.as_deref(), Some("E0703"));
        assert!(parse_spec(&spec, &["--explain"]).is_err());
        // Figure harnesses do not take deployment flags.
        let fig = HarnessSpec::new("fig7", "f", FIGURE_FLAGS);
        assert!(parse_spec(&fig, &["--deployment", "d.json"]).is_err());
    }
}
