//! Shared helpers for the benchmark harness binaries and Criterion
//! benches.
//!
//! Each binary regenerates one artifact of the paper's evaluation:
//!
//! | Binary     | Artifact |
//! |------------|----------|
//! | `table1`   | Table I — utilization, power, frames/s vs i7/Jetson |
//! | `fig7`     | Fig. 7 — frames/J for base/pipe/p2p vs baselines |
//! | `fig8`     | Fig. 8 — DRAM accesses with/without p2p |
//! | `training` | §VI accuracy targets (92 % classifier, 3.1 % denoiser) |
//!
//! All binaries accept `--frames N` (simulated frames per measurement),
//! `--train` (train the models on the synthetic dataset instead of using
//! untrained weights), `--samples N` and `--epochs N` (training budget).
//! The figure/table binaries additionally accept `--trace <path>` (write
//! a Chrome `trace_event` JSON of every simulated run, viewable at
//! ui.perfetto.dev), `--profile <path>` (profile every run online and
//! write the JSON bottleneck/latency/heatmap report, printing the text
//! report to stdout), `--sample-every <cycles>` (with `--trace`, also
//! write a `<path>.counters.csv` time-series of the SoC counters),
//! `--engine naive|event` (the simulation engine), `--jobs N` (worker
//! threads for the experiment grid; tracing/profiling forces serial
//! execution) and `--sanitize` (audit every run with the runtime
//! invariant sanitizer; any violation fails the harness with typed
//! diagnostics). The dedicated `espprof` binary runs one configuration
//! across execution modes and checks the bottleneck report against the
//! measured throughput ordering; `espcheck` statically lints SoC
//! configurations and dataflows without simulating a cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod observe;
pub mod parallel;

use esp4ml::apps::TrainedModels;
use esp4ml_soc::SocEngine;
use std::path::PathBuf;

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Frames to simulate per measurement point.
    pub frames: u64,
    /// Whether to train the models first.
    pub train: bool,
    /// Training samples.
    pub samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Where to write the Chrome trace JSON, when tracing is on.
    pub trace: Option<PathBuf>,
    /// Where to write the profile report JSON, when profiling is on.
    pub profile: Option<PathBuf>,
    /// Counter sampling period in cycles (requires `trace`).
    pub sample_every: Option<u64>,
    /// Simulation engine driving every run.
    pub engine: SocEngine,
    /// Worker threads for grid execution (ignored when tracing).
    pub jobs: usize,
    /// Run every grid point with the runtime invariant sanitizer armed
    /// (`esp4ml_soc::SanitizerConfig::all`); any violation fails the
    /// harness with the typed diagnostics.
    pub sanitize: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            frames: 64,
            train: false,
            samples: 6000,
            epochs: 30,
            trace: None,
            profile: None,
            sample_every: None,
            engine: SocEngine::default(),
            jobs: parallel::default_jobs(),
            sanitize: false,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`-style options; unknown options are
    /// rejected with a message listing the supported ones.
    ///
    /// # Errors
    ///
    /// Returns a usage string when parsing fails.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<HarnessArgs, String> {
        let mut out = HarnessArgs::default();
        let mut it = args.peekable();
        while let Some(arg) = it.next() {
            let mut grab = |name: &str| -> Result<u64, String> {
                it.next()
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .parse::<u64>()
                    .map_err(|e| format!("{name}: {e}"))
            };
            match arg.as_str() {
                "--frames" => out.frames = grab("--frames")?,
                "--samples" => out.samples = grab("--samples")? as usize,
                "--epochs" => out.epochs = grab("--epochs")? as usize,
                "--train" => out.train = true,
                "--no-train" => out.train = false,
                "--trace" => {
                    let path = it.next().ok_or("--trace needs a file path")?;
                    out.trace = Some(PathBuf::from(path));
                }
                "--profile" => {
                    let path = it.next().ok_or("--profile needs a file path")?;
                    out.profile = Some(PathBuf::from(path));
                }
                "--sample-every" => out.sample_every = Some(grab("--sample-every")?),
                "--sanitize" => out.sanitize = true,
                "--jobs" => out.jobs = grab("--jobs")? as usize,
                "--engine" => {
                    let v = it.next().ok_or("--engine needs naive or event")?;
                    out.engine = match v.as_str() {
                        "naive" => SocEngine::Naive,
                        "event" | "event-driven" => SocEngine::EventDriven,
                        other => return Err(format!("--engine: unknown engine {other}")),
                    };
                }
                other => {
                    return Err(format!(
                        "unknown option {other}; supported: --frames N --train --no-train \
                         --samples N --epochs N --trace PATH --profile PATH \
                         --sample-every CYCLES --engine naive|event --jobs N --sanitize"
                    ))
                }
            }
        }
        if out.frames == 0 {
            return Err("--frames must be at least 1".into());
        }
        if out.sample_every == Some(0) {
            return Err("--sample-every must be at least 1".into());
        }
        if out.sample_every.is_some() && out.trace.is_none() {
            return Err("--sample-every requires --trace".into());
        }
        if out.jobs == 0 {
            return Err("--jobs must be at least 1".into());
        }
        if out.sanitize && (out.trace.is_some() || out.profile.is_some()) {
            return Err(
                "--sanitize cannot be combined with --trace/--profile; run them separately".into(),
            );
        }
        Ok(out)
    }

    /// Builds the models per the options (training prints its progress).
    pub fn models(&self) -> TrainedModels {
        if self.train {
            eprintln!(
                "training models on {} synthetic samples for {} epochs...",
                self.samples, self.epochs
            );
            let m = TrainedModels::train(self.samples, self.epochs, 1);
            if let Some(acc) = m.classifier_accuracy {
                eprintln!("classifier test accuracy: {:.1}% (paper: 92%)", 100.0 * acc);
            }
            if let Some(err) = m.denoiser_error {
                eprintln!(
                    "denoiser reconstruction error: {:.1}% (paper: 3.1%)",
                    100.0 * err
                );
            }
            m
        } else {
            TrainedModels::untrained()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.frames, 64);
        assert!(!a.train);
    }

    #[test]
    fn overrides() {
        let a = parse(&[
            "--frames",
            "8",
            "--train",
            "--samples",
            "100",
            "--epochs",
            "2",
        ])
        .unwrap();
        assert_eq!(a.frames, 8);
        assert!(a.train);
        assert_eq!(a.samples, 100);
        assert_eq!(a.epochs, 2);
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--frames"]).is_err());
        assert!(parse(&["--frames", "abc"]).is_err());
        assert!(parse(&["--frames", "0"]).is_err());
    }

    #[test]
    fn sanitize_option() {
        let a = parse(&["--sanitize"]).unwrap();
        assert!(a.sanitize);
        assert!(!parse(&[]).unwrap().sanitize);
        assert!(parse(&["--sanitize", "--trace", "/tmp/t.json"]).is_err());
        assert!(parse(&["--sanitize", "--profile", "/tmp/p.json"]).is_err());
    }

    #[test]
    fn engine_and_jobs_options() {
        let a = parse(&["--engine", "naive", "--jobs", "3"]).unwrap();
        assert_eq!(a.engine, SocEngine::Naive);
        assert_eq!(a.jobs, 3);
        let a = parse(&["--engine", "event"]).unwrap();
        assert_eq!(a.engine, SocEngine::EventDriven);
        assert!(parse(&["--engine", "warp"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
    }

    #[test]
    fn profile_option() {
        let a = parse(&["--profile", "/tmp/p.json"]).unwrap();
        assert_eq!(
            a.profile.as_deref(),
            Some(std::path::Path::new("/tmp/p.json"))
        );
        assert!(a.trace.is_none());
        assert!(parse(&["--profile"]).is_err());
    }

    #[test]
    fn trace_options() {
        let a = parse(&["--trace", "/tmp/t.json", "--sample-every", "500"]).unwrap();
        assert_eq!(
            a.trace.as_deref(),
            Some(std::path::Path::new("/tmp/t.json"))
        );
        assert_eq!(a.sample_every, Some(500));
        assert!(parse(&["--trace"]).is_err());
        assert!(parse(&["--sample-every", "100"]).is_err(), "needs --trace");
        assert!(parse(&["--trace", "/tmp/t.json", "--sample-every", "0"]).is_err());
    }
}
