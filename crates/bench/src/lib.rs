//! Shared helpers for the benchmark harness binaries and Criterion
//! benches.
//!
//! Each binary regenerates one artifact of the paper's evaluation:
//!
//! | Binary     | Artifact |
//! |------------|----------|
//! | `table1`   | Table I — utilization, power, frames/s vs i7/Jetson |
//! | `fig7`     | Fig. 7 — frames/J for base/pipe/p2p vs baselines |
//! | `fig8`     | Fig. 8 — DRAM accesses with/without p2p |
//! | `training` | §VI accuracy targets (92 % classifier, 3.1 % denoiser) |
//!
//! All binaries accept `--frames N` (simulated frames per measurement),
//! `--train` (train the models on the synthetic dataset instead of using
//! untrained weights), `--samples N` and `--epochs N` (training budget).
//! The figure/table binaries additionally accept `--trace <path>` (write
//! a Chrome `trace_event` JSON of every simulated run, viewable at
//! ui.perfetto.dev), `--profile <path>` (profile every run online and
//! write the JSON bottleneck/latency/heatmap report, printing the text
//! report to stdout), `--sample-every <cycles>` (with `--trace`, also
//! write a `<path>.counters.csv` time-series of the SoC counters),
//! `--spans <path>` (assemble causal frame-level span trees per run and
//! write the span-report JSON there, plus a Perfetto flow-linked span
//! trace at `<path>.perfetto.json` and the critical-path text report on
//! stdout; composable with `--trace`/`--profile`),
//! `--engine naive|event` (the simulation engine), `--jobs N` (worker
//! threads for the experiment grid; tracing/profiling forces serial
//! execution), `--sanitize` (audit every run with the runtime
//! invariant sanitizer; any violation fails the harness with typed
//! diagnostics) and `--faults <plan.json>` (install a fault plan on
//! every run's SoC, with the watchdog/retry/failover recovery layer
//! armed; the plan is linted first — `espcheck` codes `E06xx`). The
//! dedicated `espprof` binary runs one configuration across execution
//! modes and checks the bottleneck report against the measured
//! throughput ordering; `espcheck` statically lints SoC configurations
//! and dataflows without simulating a cycle; `espfault` sweeps seeded
//! fault campaigns over the Fig. 7 pipelines and classifies every run
//! as clean/recovered/degraded/failed; `espspan` runs one
//! configuration across execution modes with span assembly on and
//! verifies both the attribution invariant and that the critical path
//! names the same limiting stage as the profiler's bottleneck report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod observe;
pub mod parallel;

use esp4ml::apps::TrainedModels;
use esp4ml::experiments::GridPoint;
use esp4ml::faults::FaultConfig;
use esp4ml_fault::FaultPlan;
use esp4ml_soc::SocEngine;
use std::path::PathBuf;

/// Command-line options shared by the harness binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Frames to simulate per measurement point.
    pub frames: u64,
    /// Whether to train the models first.
    pub train: bool,
    /// Training samples.
    pub samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Where to write the Chrome trace JSON, when tracing is on.
    pub trace: Option<PathBuf>,
    /// Where to write the profile report JSON, when profiling is on.
    pub profile: Option<PathBuf>,
    /// Where to write the span-report JSON, when span assembly is on
    /// (a Perfetto flow-linked span trace lands next to it).
    pub spans: Option<PathBuf>,
    /// Counter sampling period in cycles (requires `trace`).
    pub sample_every: Option<u64>,
    /// Simulation engine driving every run.
    pub engine: SocEngine,
    /// Worker threads for grid execution (ignored when tracing).
    pub jobs: usize,
    /// Run every grid point with the runtime invariant sanitizer armed
    /// (`esp4ml_soc::SanitizerConfig::all`); any violation fails the
    /// harness with the typed diagnostics.
    pub sanitize: bool,
    /// Fault plan JSON to install on every run's SoC, with the
    /// watchdog/retry/failover recovery layer armed.
    pub faults: Option<PathBuf>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            frames: 64,
            train: false,
            samples: 6000,
            epochs: 30,
            trace: None,
            profile: None,
            spans: None,
            sample_every: None,
            engine: SocEngine::default(),
            jobs: parallel::default_jobs(),
            sanitize: false,
            faults: None,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`-style options; unknown options are
    /// rejected with a message listing the supported ones.
    ///
    /// # Errors
    ///
    /// Returns a usage string when parsing fails.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<HarnessArgs, String> {
        let mut out = HarnessArgs::default();
        let mut it = args.peekable();
        while let Some(arg) = it.next() {
            let mut grab = |name: &str| -> Result<u64, String> {
                it.next()
                    .ok_or_else(|| format!("{name} needs a value"))?
                    .parse::<u64>()
                    .map_err(|e| format!("{name}: {e}"))
            };
            match arg.as_str() {
                "--frames" => out.frames = grab("--frames")?,
                "--samples" => out.samples = grab("--samples")? as usize,
                "--epochs" => out.epochs = grab("--epochs")? as usize,
                "--train" => out.train = true,
                "--no-train" => out.train = false,
                "--trace" => {
                    let path = it.next().ok_or("--trace needs a file path")?;
                    out.trace = Some(PathBuf::from(path));
                }
                "--profile" => {
                    let path = it.next().ok_or("--profile needs a file path")?;
                    out.profile = Some(PathBuf::from(path));
                }
                "--spans" => {
                    let path = it.next().ok_or("--spans needs a file path")?;
                    out.spans = Some(PathBuf::from(path));
                }
                "--sample-every" => out.sample_every = Some(grab("--sample-every")?),
                "--sanitize" => out.sanitize = true,
                "--faults" => {
                    let path = it.next().ok_or("--faults needs a fault-plan JSON path")?;
                    out.faults = Some(PathBuf::from(path));
                }
                "--jobs" => out.jobs = grab("--jobs")? as usize,
                "--engine" => {
                    let v = it.next().ok_or("--engine needs naive or event")?;
                    out.engine = match v.as_str() {
                        "naive" => SocEngine::Naive,
                        "event" | "event-driven" => SocEngine::EventDriven,
                        other => return Err(format!("--engine: unknown engine {other}")),
                    };
                }
                other => {
                    return Err(format!(
                        "unknown option {other}; supported: --frames N --train --no-train \
                         --samples N --epochs N --trace PATH --profile PATH --spans PATH \
                         --sample-every CYCLES --engine naive|event --jobs N --sanitize \
                         --faults PLAN.json"
                    ))
                }
            }
        }
        if out.frames == 0 {
            return Err("--frames must be at least 1".into());
        }
        if out.sample_every == Some(0) {
            return Err("--sample-every must be at least 1".into());
        }
        if out.sample_every.is_some() && out.trace.is_none() {
            return Err("--sample-every requires --trace".into());
        }
        if out.jobs == 0 {
            return Err("--jobs must be at least 1".into());
        }
        if out.sanitize && (out.trace.is_some() || out.profile.is_some() || out.spans.is_some()) {
            return Err(
                "--sanitize cannot be combined with --trace/--profile/--spans; \
                 run them separately"
                    .into(),
            );
        }
        if out.faults.is_some()
            && (out.trace.is_some() || out.profile.is_some() || out.spans.is_some() || out.sanitize)
        {
            return Err(
                "--faults cannot be combined with --trace/--profile/--spans/--sanitize; \
                 injected faults deliberately break the invariants those audit"
                    .into(),
            );
        }
        Ok(out)
    }

    /// Loads the `--faults` plan file into a [`FaultConfig`] (`None`
    /// when the flag was not given). The harness uses the campaign
    /// watchdog ([`esp4ml::faults::CAMPAIGN_WATCHDOG_CYCLES`]) rather
    /// than the conservative runtime default: the figure pipelines'
    /// healthy invocations finish orders of magnitude sooner, and a
    /// tight deadline keeps recovered runs' throughput interpretable.
    ///
    /// # Errors
    ///
    /// File or JSON failures, as a printable message.
    pub fn fault_config(&self) -> Result<Option<FaultConfig>, String> {
        let Some(path) = &self.faults else {
            return Ok(None);
        };
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("--faults {}: {e}", path.display()))?;
        let plan = FaultPlan::from_json(&json)
            .map_err(|e| format!("--faults {}: not a fault plan: {e}", path.display()))?;
        Ok(Some(
            FaultConfig::from_plan(plan).with_watchdog(esp4ml::faults::CAMPAIGN_WATCHDOG_CYCLES),
        ))
    }

    /// Lints a `--faults` plan against every device the grid's
    /// dataflows name, printing diagnostics to stderr. Returns `true`
    /// when the plan has errors and the harness should refuse to run.
    pub fn lint_faults(config: &FaultConfig, grid: &[GridPoint]) -> bool {
        let mut hosted: Vec<String> = grid
            .iter()
            .flat_map(|p| p.app.dataflow().stages)
            .flat_map(|s| s.devices)
            .collect();
        hosted.sort();
        hosted.dedup();
        let report = esp4ml::faults::lint_fault_plan(&config.plan, &hosted);
        for d in &report.diagnostics {
            eprintln!("{d}");
        }
        report.has_errors()
    }

    /// Builds the models per the options (training prints its progress).
    pub fn models(&self) -> TrainedModels {
        if self.train {
            eprintln!(
                "training models on {} synthetic samples for {} epochs...",
                self.samples, self.epochs
            );
            let m = TrainedModels::train(self.samples, self.epochs, 1);
            if let Some(acc) = m.classifier_accuracy {
                eprintln!("classifier test accuracy: {:.1}% (paper: 92%)", 100.0 * acc);
            }
            if let Some(err) = m.denoiser_error {
                eprintln!(
                    "denoiser reconstruction error: {:.1}% (paper: 3.1%)",
                    100.0 * err
                );
            }
            m
        } else {
            TrainedModels::untrained()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.frames, 64);
        assert!(!a.train);
    }

    #[test]
    fn overrides() {
        let a = parse(&[
            "--frames",
            "8",
            "--train",
            "--samples",
            "100",
            "--epochs",
            "2",
        ])
        .unwrap();
        assert_eq!(a.frames, 8);
        assert!(a.train);
        assert_eq!(a.samples, 100);
        assert_eq!(a.epochs, 2);
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--frames"]).is_err());
        assert!(parse(&["--frames", "abc"]).is_err());
        assert!(parse(&["--frames", "0"]).is_err());
    }

    #[test]
    fn sanitize_option() {
        let a = parse(&["--sanitize"]).unwrap();
        assert!(a.sanitize);
        assert!(!parse(&[]).unwrap().sanitize);
        assert!(parse(&["--sanitize", "--trace", "/tmp/t.json"]).is_err());
        assert!(parse(&["--sanitize", "--profile", "/tmp/p.json"]).is_err());
    }

    #[test]
    fn engine_and_jobs_options() {
        let a = parse(&["--engine", "naive", "--jobs", "3"]).unwrap();
        assert_eq!(a.engine, SocEngine::Naive);
        assert_eq!(a.jobs, 3);
        let a = parse(&["--engine", "event"]).unwrap();
        assert_eq!(a.engine, SocEngine::EventDriven);
        assert!(parse(&["--engine", "warp"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
    }

    #[test]
    fn faults_option() {
        let a = parse(&["--faults", "/tmp/plan.json"]).unwrap();
        assert_eq!(
            a.faults.as_deref(),
            Some(std::path::Path::new("/tmp/plan.json"))
        );
        assert!(parse(&[]).unwrap().faults.is_none());
        assert!(parse(&["--faults"]).is_err());
        assert!(parse(&["--faults", "p.json", "--sanitize"]).is_err());
        assert!(parse(&["--faults", "p.json", "--trace", "/tmp/t.json"]).is_err());
        assert!(parse(&["--faults", "p.json", "--profile", "/tmp/p.json"]).is_err());
    }

    #[test]
    fn fault_config_loads_a_plan_file() {
        use esp4ml_fault::FaultSpec;
        let dir = std::env::temp_dir().join("esp4ml_bench_faults_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.json");
        let plan = FaultPlan::new(9).with(FaultSpec::transient_hang("nv0", 0));
        std::fs::write(&path, plan.to_json().unwrap()).unwrap();
        let args = parse(&["--faults", path.to_str().unwrap()]).unwrap();
        let config = args.fault_config().unwrap().unwrap();
        assert_eq!(config.plan, plan);
        assert!(config.software_fallback);
        std::fs::write(&path, "not json").unwrap();
        assert!(args.fault_config().is_err());
        assert!(parse(&[]).unwrap().fault_config().unwrap().is_none());
    }

    #[test]
    fn profile_option() {
        let a = parse(&["--profile", "/tmp/p.json"]).unwrap();
        assert_eq!(
            a.profile.as_deref(),
            Some(std::path::Path::new("/tmp/p.json"))
        );
        assert!(a.trace.is_none());
        assert!(parse(&["--profile"]).is_err());
    }

    #[test]
    fn spans_option() {
        let a = parse(&["--spans", "/tmp/s.json"]).unwrap();
        assert_eq!(
            a.spans.as_deref(),
            Some(std::path::Path::new("/tmp/s.json"))
        );
        assert!(parse(&[]).unwrap().spans.is_none());
        assert!(parse(&["--spans"]).is_err());
        // Spans compose with trace and profile...
        assert!(parse(&["--spans", "s.json", "--trace", "t.json"]).is_ok());
        assert!(parse(&["--spans", "s.json", "--profile", "p.json"]).is_ok());
        // ...but not with the sanitizer or fault injection.
        assert!(parse(&["--spans", "s.json", "--sanitize"]).is_err());
        assert!(parse(&["--spans", "s.json", "--faults", "f.json"]).is_err());
    }

    #[test]
    fn trace_options() {
        let a = parse(&["--trace", "/tmp/t.json", "--sample-every", "500"]).unwrap();
        assert_eq!(
            a.trace.as_deref(),
            Some(std::path::Path::new("/tmp/t.json"))
        );
        assert_eq!(a.sample_every, Some(500));
        assert!(parse(&["--trace"]).is_err());
        assert!(parse(&["--sample-every", "100"]).is_err(), "needs --trace");
        assert!(parse(&["--trace", "/tmp/t.json", "--sample-every", "0"]).is_err());
    }
}
