//! Shared helpers for the benchmark harness binaries and Criterion
//! benches.
//!
//! Each binary regenerates one artifact of the paper's evaluation:
//!
//! | Binary     | Artifact |
//! |------------|----------|
//! | `table1`   | Table I — utilization, power, frames/s vs i7/Jetson |
//! | `fig7`     | Fig. 7 — frames/J for base/pipe/p2p vs baselines |
//! | `fig8`     | Fig. 8 — DRAM accesses with/without p2p |
//! | `training` | §VI accuracy targets (92 % classifier, 3.1 % denoiser) |
//! | `espprof`  | profile-vs-simulator consistency verdict |
//! | `espspan`  | span attribution / critical-path agreement verdict |
//! | `espfault` | seeded fault-campaign absorption verdict |
//! | `espcheck` | static SoC/dataflow lint verdict |
//!
//! All of them are thin clients of the same two shared layers:
//!
//! - [`cli`]: one table-driven command-line parser. Every binary
//!   declares which of the common flags it accepts
//!   ([`cli::HarnessSpec`]) and gets identical `--help` text, error
//!   messages and validation for the flags it shares with its siblings.
//! - [`request`]: the unified typed request API. The parsed options
//!   become a [`request::RunRequest`] — the union of the historical
//!   `--engine/--jobs/--trace/--profile/--spans/--sanitize/--faults`
//!   surfaces plus a `schema_version` — and [`request::execute`] is
//!   the single entry point that validates, admission-lints
//!   (espcheck runs before a single cycle is simulated) and runs it.
//!   The `espserve` job server speaks the same request type over
//!   HTTP, so a CLI run and a server job are the same bytes end to
//!   end.
//!
//! [`observe`] maps a response's observability artifacts back onto the
//! `--trace/--profile/--spans` output files, [`parallel`] fans a grid
//! out over worker threads, and [`chart`] renders the Fig. 7 bars.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod cli;
pub mod observe;
pub mod parallel;
pub mod request;

pub use cli::{CliError, HarnessArgs, HarnessSpec};
pub use request::{
    execute, execute_with_progress, CollectingSink, Progress, ProgressSink, RunRequest,
    RunResponse, WorkloadKind,
};
