//! Response plumbing shared by the harness binaries: run a workload
//! through the unified request API and map the response's named
//! artifacts back onto the output files named on the command line.

use crate::cli::HarnessArgs;
use crate::request::{self, Progress, ProgressSink, RequestError, RunResponse, WorkloadKind};
use std::io::Write as _;
use std::path::PathBuf;

/// The `--progress` sink: one [`Progress`] JSON line to stderr per
/// completed unit. The line bytes are exactly [`Progress::to_json_line`]
/// — the same serialization the server stores on its jobs, which is
/// what makes CLI-vs-server progress comparable byte for byte.
struct StderrProgress;

impl ProgressSink for StderrProgress {
    fn publish(&self, progress: &Progress) {
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{}", progress.to_json_line());
    }
}

/// Builds the request these options describe, executes it, and exits
/// with the binary's historical codes on failure: 2 for usage errors
/// and admission rejections (typed diagnostics on stderr, nothing
/// simulated), 1 for run failures. Response notes (sanitizer verdicts,
/// fault-recovery tallies, ring-buffer drops) go to stderr, as do the
/// `--progress` JSON lines.
pub fn run_workload(binary: &str, args: &HarnessArgs, workload: WorkloadKind) -> RunResponse {
    let models = args.models();
    let req = match args.to_request(workload) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let sink = StderrProgress;
    let progress: Option<&dyn ProgressSink> = args.progress.then_some(&sink as _);
    match request::execute_with_progress(&req, &models, progress) {
        Ok(response) => {
            for note in &response.notes {
                eprintln!("{binary}: {note}");
            }
            response
        }
        Err(RequestError::Invalid(msg)) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
        Err(RequestError::Rejected(report)) => {
            for d in &report.diagnostics {
                eprintln!("{d}");
            }
            eprintln!("{binary}: rejected by the admission lint; nothing was simulated");
            std::process::exit(2);
        }
        Err(RequestError::Run(e)) => {
            eprintln!("{binary} failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The counter CSV path derived from the trace path.
fn counters_path(trace: &std::path::Path) -> PathBuf {
    let mut name = trace.file_name().unwrap_or_default().to_os_string();
    name.push(".counters.csv");
    trace.with_file_name(name)
}

/// The Perfetto span-trace path derived from the span-report path.
fn span_trace_path(spans: &std::path::Path) -> PathBuf {
    let mut name = spans.file_name().unwrap_or_default().to_os_string();
    name.push(".perfetto.json");
    spans.with_file_name(name)
}

fn write_named(
    response: &RunResponse,
    key: &str,
    what: &str,
    path: &std::path::Path,
) -> std::io::Result<()> {
    if let Some(body) = response.artifacts.get(key) {
        std::fs::write(path, body)?;
        println!("wrote {what} to {}", path.display());
    }
    Ok(())
}

/// Writes the response's artifacts to the files the command line named:
/// the Chrome trace JSON at `--trace` (counter CSV next to it under
/// `--sample-every`), the profile report JSON at `--profile`, the
/// span-report JSON at `--spans` (Perfetto span trace next to it), the
/// verdict report at `--json`, the folded flame stacks at `--flame`,
/// and the enveloped run-metrics JSON at `--metrics`. Artifact bodies
/// are written byte-exactly — a `--metrics` file matches the espserve
/// `metrics` artifact for the same request. Text companions
/// (per-run profiles, critical paths, NoC traffic) go to stdout.
///
/// # Errors
///
/// I/O failures writing the output files.
pub fn write_artifacts(args: &HarnessArgs, response: &RunResponse) -> std::io::Result<()> {
    if let Some(path) = args.trace.as_ref() {
        write_named(response, "trace", "trace events", path)?;
        if args.sample_every.is_some() {
            if let Some(csv) = response.artifacts.get("counters_csv") {
                let p = counters_path(path);
                std::fs::write(&p, csv)?;
                println!("wrote counter samples to {}", p.display());
            }
        }
    }
    if let Some(path) = args.profile.as_ref() {
        write_named(response, "profile", "profile reports", path)?;
        if let Some(text) = response.artifacts.get("profile_text") {
            println!("\nPer-run profiles:\n{text}");
        }
    }
    if let Some(path) = args.spans.as_ref() {
        write_named(response, "spans", "span reports", path)?;
        if let Some(doc) = response.artifacts.get("span_trace") {
            let p = span_trace_path(path);
            std::fs::write(&p, doc)?;
            println!("wrote span trace to {}", p.display());
        }
        if let Some(text) = response.artifacts.get("span_text") {
            println!("\nPer-run critical paths:\n{text}");
        }
    }
    if args.trace.is_some() || args.profile.is_some() || args.spans.is_some() {
        if let Some(text) = response.artifacts.get("noc_text") {
            println!("\nPer-run NoC traffic:\n{text}");
        }
    }
    if let Some(path) = args.json.as_ref() {
        write_named(response, "report", "verdict report", path)?;
        write_named(response, "campaign", "campaign report", path)?;
    }
    if let Some(path) = args.flame.as_ref() {
        write_named(response, "flame", "flame stacks", path)?;
    }
    if let Some(path) = args.metrics.as_ref() {
        write_named(response, "metrics", "run metrics", path)?;
    }
    Ok(())
}

/// [`write_artifacts`] with the binaries' historical failure handling:
/// prints the I/O error and exits 1.
pub fn write_artifacts_or_exit(binary: &str, args: &HarnessArgs, response: &RunResponse) {
    if let Err(e) = write_artifacts(args, response) {
        eprintln!("{binary}: failed to write artifacts: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_trace_path_appends_suffix() {
        assert_eq!(
            span_trace_path(std::path::Path::new("/tmp/fig8.spans.json")),
            PathBuf::from("/tmp/fig8.spans.json.perfetto.json")
        );
    }

    #[test]
    fn counters_path_appends_suffix() {
        assert_eq!(
            counters_path(std::path::Path::new("/tmp/fig7.json")),
            PathBuf::from("/tmp/fig7.json.counters.csv")
        );
    }
}
