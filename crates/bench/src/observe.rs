//! Trace-session plumbing shared by the figure/table binaries.

use crate::HarnessArgs;
use esp4ml::trace::{perfetto, Tracer};
use esp4ml::TraceSession;
use std::path::PathBuf;

/// Builds the observability session requested on the command line, or
/// `None` when none of `--trace`, `--profile`, `--spans` was given.
///
/// `--spans` wins the session shape (optionally chaining a profiler in
/// front when `--profile` is also set), then `--profile`: both still
/// buffer events in a ring-buffer sink, so `--trace` export keeps
/// working on top of either.
pub fn session_from_args(args: &HarnessArgs) -> Option<TraceSession> {
    if args.spans.is_some() {
        return Some(TraceSession::spanned(
            args.sample_every,
            args.profile.is_some(),
        ));
    }
    if args.profile.is_some() {
        return Some(TraceSession::profiled(args.sample_every));
    }
    args.trace.as_ref()?;
    let tracer = Tracer::ring_buffer();
    Some(match args.sample_every {
        Some(every) => TraceSession::with_sampling(tracer, every),
        None => TraceSession::new(tracer),
    })
}

/// The counter CSV path derived from the trace path.
fn counters_path(trace: &std::path::Path) -> PathBuf {
    let mut name = trace.file_name().unwrap_or_default().to_os_string();
    name.push(".counters.csv");
    trace.with_file_name(name)
}

/// The Perfetto span-trace path derived from the span-report path.
fn span_trace_path(spans: &std::path::Path) -> PathBuf {
    let mut name = spans.file_name().unwrap_or_default().to_os_string();
    name.push(".perfetto.json");
    spans.with_file_name(name)
}

/// Writes the session's artifacts: the Chrome trace JSON at `--trace`
/// (with the ring buffer's dropped-event and dropped-span counts
/// attached as metadata), the counter CSV next to it when
/// `--sample-every` was given, the profile report JSON at `--profile`
/// (plus the text report on stdout), the span-report JSON at `--spans`
/// (plus the Perfetto flow-linked span trace next to it and the
/// critical-path text report on stdout), and the per-run NoC traffic
/// summary to stdout.
///
/// # Errors
///
/// I/O failures writing the output files.
pub fn finish_session(args: &HarnessArgs, session: &TraceSession) -> std::io::Result<()> {
    if let Some(path) = args.trace.as_ref() {
        let dropped = session.tracer().dropped();
        let dropped_spans = session.tracer().dropped_spans();
        let events = session.tracer().drain();
        perfetto::write_chrome_trace_with_drop_counts(path, &events, dropped, dropped_spans)?;
        println!("wrote {} trace events to {}", events.len(), path.display());
        if dropped > 0 {
            eprintln!(
                "warning: ring buffer dropped {dropped} oldest events \
                 ({dropped_spans} span-relevant)"
            );
        }
        if args.sample_every.is_some() {
            let csv = counters_path(path);
            std::fs::write(&csv, session.counters_csv())?;
            println!("wrote counter samples to {}", csv.display());
        }
    }
    if let Some(path) = args.profile.as_ref() {
        std::fs::write(path, session.profiles_json())?;
        println!(
            "wrote {} profile reports to {}",
            session.profiles().len(),
            path.display()
        );
        let summary = session.profile_summary();
        if !summary.is_empty() {
            println!("\nPer-run profiles:\n{summary}");
        }
    }
    if let Some(path) = args.spans.as_ref() {
        std::fs::write(path, session.span_reports_json())?;
        println!(
            "wrote {} span reports to {}",
            session.span_reports().len(),
            path.display()
        );
        let trace = span_trace_path(path);
        perfetto::write_span_trace(&trace, session.span_reports())?;
        println!("wrote span trace to {}", trace.display());
        let summary = session.span_summary();
        if !summary.is_empty() {
            println!("\nPer-run critical paths:\n{summary}");
        }
    }
    if args.trace.is_some() || args.profile.is_some() || args.spans.is_some() {
        let summary = session.noc_summary();
        if !summary.is_empty() {
            println!("\nPer-run NoC traffic:\n{summary}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_only_when_trace_requested() {
        let plain = HarnessArgs::default();
        assert!(session_from_args(&plain).is_none());
        let mut traced = HarnessArgs {
            trace: Some(PathBuf::from("/tmp/t.json")),
            ..HarnessArgs::default()
        };
        let session = session_from_args(&traced).expect("session");
        assert!(session.tracer().is_enabled());
        assert!(session.sample_every().is_none());
        assert!(session.profiler().is_none());
        traced.sample_every = Some(250);
        let sampled = session_from_args(&traced).expect("session");
        assert_eq!(sampled.sample_every(), Some(250));
    }

    #[test]
    fn profile_flag_builds_profiled_session() {
        let profiled = HarnessArgs {
            profile: Some(PathBuf::from("/tmp/p.json")),
            ..HarnessArgs::default()
        };
        let session = session_from_args(&profiled).expect("session");
        assert!(session.tracer().is_enabled());
        assert!(session.profiler().is_some());
    }

    #[test]
    fn spans_flag_builds_spanned_session() {
        let mut args = HarnessArgs {
            spans: Some(PathBuf::from("/tmp/s.json")),
            ..HarnessArgs::default()
        };
        let session = session_from_args(&args).expect("session");
        assert!(session.tracer().is_enabled());
        assert!(session.span_collector().is_some());
        assert!(session.profiler().is_none());
        // --spans --profile chains a profiler in front of the collector.
        args.profile = Some(PathBuf::from("/tmp/p.json"));
        let both = session_from_args(&args).expect("session");
        assert!(both.span_collector().is_some());
        assert!(both.profiler().is_some());
    }

    #[test]
    fn span_trace_path_appends_suffix() {
        assert_eq!(
            span_trace_path(std::path::Path::new("/tmp/fig8.spans.json")),
            PathBuf::from("/tmp/fig8.spans.json.perfetto.json")
        );
    }

    #[test]
    fn counters_path_appends_suffix() {
        assert_eq!(
            counters_path(std::path::Path::new("/tmp/fig7.json")),
            PathBuf::from("/tmp/fig7.json.counters.csv")
        );
    }
}
