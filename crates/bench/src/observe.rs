//! Trace-session plumbing shared by the figure/table binaries.

use crate::HarnessArgs;
use esp4ml::trace::{perfetto, Tracer};
use esp4ml::TraceSession;
use std::path::PathBuf;

/// Builds the trace session requested on the command line, or `None`
/// when `--trace` was not given.
pub fn session_from_args(args: &HarnessArgs) -> Option<TraceSession> {
    args.trace.as_ref()?;
    let tracer = Tracer::ring_buffer();
    Some(match args.sample_every {
        Some(every) => TraceSession::with_sampling(tracer, every),
        None => TraceSession::new(tracer),
    })
}

/// The counter CSV path derived from the trace path.
fn counters_path(trace: &std::path::Path) -> PathBuf {
    let mut name = trace.file_name().unwrap_or_default().to_os_string();
    name.push(".counters.csv");
    trace.with_file_name(name)
}

/// Writes the session's artifacts: the Chrome trace JSON at `--trace`,
/// the counter CSV next to it when `--sample-every` was given, and the
/// per-run NoC traffic summary to stdout.
///
/// # Errors
///
/// I/O failures writing the output files.
pub fn finish_session(args: &HarnessArgs, session: &TraceSession) -> std::io::Result<()> {
    let Some(path) = args.trace.as_ref() else {
        return Ok(());
    };
    let dropped = session.tracer().dropped();
    let events = session.tracer().drain();
    perfetto::write_chrome_trace(path, &events)?;
    println!("wrote {} trace events to {}", events.len(), path.display());
    if dropped > 0 {
        eprintln!("warning: ring buffer dropped {dropped} oldest events");
    }
    if args.sample_every.is_some() {
        let csv = counters_path(path);
        std::fs::write(&csv, session.counters_csv())?;
        println!("wrote counter samples to {}", csv.display());
    }
    let summary = session.noc_summary();
    if !summary.is_empty() {
        println!("\nPer-run NoC traffic:\n{summary}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_only_when_trace_requested() {
        let plain = HarnessArgs::default();
        assert!(session_from_args(&plain).is_none());
        let mut traced = HarnessArgs {
            trace: Some(PathBuf::from("/tmp/t.json")),
            ..HarnessArgs::default()
        };
        let session = session_from_args(&traced).expect("session");
        assert!(session.tracer().is_enabled());
        assert!(session.sample_every().is_none());
        traced.sample_every = Some(250);
        let sampled = session_from_args(&traced).expect("session");
        assert_eq!(sampled.sample_every(), Some(250));
    }

    #[test]
    fn counters_path_appends_suffix() {
        assert_eq!(
            counters_path(std::path::Path::new("/tmp/fig7.json")),
            PathBuf::from("/tmp/fig7.json.counters.csv")
        );
    }
}
