use esp4ml_nn::*;
use esp4ml_vision::SvhnGenerator;
fn main() {
    let mut gen = SvhnGenerator::new(7);
    let den_data = gen.denoising_dataset(2000, 0.1);
    let (train, test) = den_data.split(0.2);
    for lr in [0.001f32, 0.003, 0.01] {
        let mut m = Sequential::svhn_denoiser();
        let mut cfg = TrainConfig::autoencoder(30);
        cfg.optimizer = OptimizerKind::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-7,
        };
        let rep = Trainer::new(cfg).fit(&mut m, &train);
        println!(
            "lr {}: loss {:.4} err {:.3}",
            lr,
            rep.final_loss(),
            reconstruction_error(&m, &test)
        );
    }
}
