//! Accelerator descriptors: the `acc.xml` analog of the ESP flow.

use crate::CompiledNn;
use serde::{Deserialize, Serialize};

/// One memory-mapped configuration register of an accelerator.
///
/// "The list of registers is specified into an XML file for each
/// accelerator following the default ESP integration flow" (paper, §III).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterDesc {
    /// Register name as exposed to the device driver.
    pub name: String,
    /// Word offset within the tile's register file.
    pub offset: u32,
    /// Human-readable description.
    pub description: String,
    /// Whether user space may write it.
    pub writable: bool,
}

/// The integration descriptor the ESP SoC flow consumes for each
/// accelerator: name, data sizes, and the register list (including the two
/// registers ESP4ML adds to every accelerator, `LOCATION_REG` and
/// `P2P_REG`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceleratorDescriptor {
    /// IP name.
    pub name: String,
    /// Input words per invocation.
    pub input_words: u64,
    /// Output words per invocation.
    pub output_words: u64,
    /// Fixed-point width in bits.
    pub data_bits: u32,
    /// Register list.
    pub registers: Vec<RegisterDesc>,
}

impl AcceleratorDescriptor {
    /// The register offsets shared by every ESP accelerator.
    pub const REG_CMD: u32 = 0;
    /// Status register offset.
    pub const REG_STATUS: u32 = 1;
    /// `conf_size` (run-time dataset size) register offset.
    pub const REG_CONF_SIZE: u32 = 2;
    /// Source pointer (virtual address) register offset.
    pub const REG_SRC_OFFSET: u32 = 3;
    /// Destination pointer register offset.
    pub const REG_DST_OFFSET: u32 = 4;
    /// `LOCATION_REG` offset (read-only x-y coordinates, added by ESP4ML).
    pub const REG_LOCATION: u32 = 5;
    /// `P2P_REG` offset (p2p configuration, added by ESP4ML).
    pub const REG_P2P: u32 = 6;
    /// Batch length register offset.
    pub const REG_N_FRAMES: u32 = 7;
    /// Output-size register offset.
    pub const REG_CONF_OUT_SIZE: u32 = 8;
    /// Wrapper feature flags (double buffering) register offset.
    pub const REG_FLAGS: u32 = 9;

    /// Builds the descriptor for a compiled NN accelerator.
    pub fn for_nn(nn: &CompiledNn) -> Self {
        Self::with_io(
            nn.name(),
            nn.input_dim() as u64,
            nn.output_dim() as u64,
            nn.spec().total_bits(),
        )
    }

    /// Builds a descriptor from explicit I/O sizes (used by the vision
    /// kernels, which are not NN-based).
    pub fn with_io(name: &str, input_words: u64, output_words: u64, data_bits: u32) -> Self {
        let reg = |name: &str, offset: u32, description: &str, writable: bool| RegisterDesc {
            name: name.to_string(),
            offset,
            description: description.to_string(),
            writable,
        };
        AcceleratorDescriptor {
            name: name.to_string(),
            input_words,
            output_words,
            data_bits,
            registers: vec![
                reg("CMD_REG", Self::REG_CMD, "start/reset command", true),
                reg("STATUS_REG", Self::REG_STATUS, "busy/done status", false),
                reg(
                    "CONF_SIZE_REG",
                    Self::REG_CONF_SIZE,
                    "run-time dataset size in words",
                    true,
                ),
                reg(
                    "SRC_OFFSET_REG",
                    Self::REG_SRC_OFFSET,
                    "input buffer offset in the accelerator VA space",
                    true,
                ),
                reg(
                    "DST_OFFSET_REG",
                    Self::REG_DST_OFFSET,
                    "output buffer offset in the accelerator VA space",
                    true,
                ),
                reg(
                    "LOCATION_REG",
                    Self::REG_LOCATION,
                    "read-only x-y coordinates of the tile on the NoC",
                    false,
                ),
                reg(
                    "P2P_REG",
                    Self::REG_P2P,
                    "p2p enable bits, source-tile count and coordinates",
                    true,
                ),
                reg(
                    "N_FRAMES_REG",
                    Self::REG_N_FRAMES,
                    "invocations to run back-to-back in one batch",
                    true,
                ),
                reg(
                    "CONF_OUT_SIZE_REG",
                    Self::REG_CONF_OUT_SIZE,
                    "run-time output size in values",
                    true,
                ),
                reg(
                    "FLAGS_REG",
                    Self::REG_FLAGS,
                    "wrapper feature flags (bit 0: double-buffered input PLM)",
                    true,
                ),
            ],
        }
    }

    /// Renders the descriptor as the XML document the ESP flow stores.
    pub fn to_xml(&self) -> String {
        let mut xml = String::new();
        xml.push_str(&format!(
            "<accelerator name=\"{}\" input_words=\"{}\" output_words=\"{}\" data_bits=\"{}\">\n",
            self.name, self.input_words, self.output_words, self.data_bits
        ));
        for r in &self.registers {
            xml.push_str(&format!(
                "  <register name=\"{}\" offset=\"{}\" writable=\"{}\">{}</register>\n",
                r.name, r.offset, r.writable, r.description
            ));
        }
        xml.push_str("</accelerator>\n");
        xml
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hls4mlCompiler, Hls4mlConfig};
    use esp4ml_nn::{Activation, LayerSpec, Sequential};

    fn nn() -> CompiledNn {
        let mut m = Sequential::with_seed(8, 3);
        m.push(LayerSpec::dense(4, Activation::Relu));
        Hls4mlCompiler::compile(&m, &Hls4mlConfig::with_reuse(2)).unwrap()
    }

    #[test]
    fn descriptor_contains_esp4ml_registers() {
        let d = AcceleratorDescriptor::for_nn(&nn());
        let names: Vec<&str> = d.registers.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"LOCATION_REG"));
        assert!(names.contains(&"P2P_REG"));
        // LOCATION_REG is read-only.
        let loc = d
            .registers
            .iter()
            .find(|r| r.name == "LOCATION_REG")
            .unwrap();
        assert!(!loc.writable);
    }

    #[test]
    fn io_sizes_match_network() {
        let d = AcceleratorDescriptor::for_nn(&nn());
        assert_eq!(d.input_words, 8);
        assert_eq!(d.output_words, 4);
        assert_eq!(d.data_bits, 16);
    }

    #[test]
    fn register_offsets_are_unique() {
        let d = AcceleratorDescriptor::for_nn(&nn());
        let mut offsets: Vec<u32> = d.registers.iter().map(|r| r.offset).collect();
        offsets.sort_unstable();
        offsets.dedup();
        assert_eq!(offsets.len(), d.registers.len());
    }

    #[test]
    fn xml_is_well_formed_enough() {
        let d = AcceleratorDescriptor::for_nn(&nn());
        let xml = d.to_xml();
        assert!(xml.starts_with("<accelerator "));
        assert!(xml.ends_with("</accelerator>\n"));
        assert_eq!(xml.matches("<register ").count(), d.registers.len());
    }
}
