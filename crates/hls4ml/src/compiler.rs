//! The compilation entry points.

use crate::{CompiledNn, Hls4mlConfig, QuantizedDense};
use esp4ml_nn::{LayerSpec, ModelFile, Sequential};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Errors raised by the HLS4ML-analog compiler.
#[derive(Debug)]
#[non_exhaustive]
pub enum CompileError {
    /// The model has no dense layers.
    EmptyModel,
    /// A per-layer reuse list does not match the dense-layer count.
    ReuseListMismatch {
        /// Entries provided.
        provided: usize,
        /// Dense layers in the model.
        layers: usize,
    },
    /// A reuse factor of zero was requested.
    ZeroReuse,
    /// Failure loading the model files.
    Model(esp4ml_nn::SerializeError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::EmptyModel => f.write_str("model has no dense layers"),
            CompileError::ReuseListMismatch { provided, layers } => write!(
                f,
                "per-layer reuse list has {provided} entries for {layers} dense layers"
            ),
            CompileError::ZeroReuse => f.write_str("reuse factor must be at least 1"),
            CompileError::Model(e) => write!(f, "model load failed: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<esp4ml_nn::SerializeError> for CompileError {
    fn from(e: esp4ml_nn::SerializeError) -> Self {
        CompileError::Model(e)
    }
}

/// The HLS4ML-analog compiler.
///
/// "We encapsulated HLS4ML into a fully automated design flow that takes an
/// ML application developed with Keras TensorFlow and the reuse factor
/// parameter [...] and returns an accelerator that can be integrated within
/// a complete SoC" (paper, §I contribution 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct Hls4mlCompiler;

impl Hls4mlCompiler {
    /// Compiles a trained model into a fixed-point accelerator.
    ///
    /// Dropout and noise layers are inference-time no-ops and are dropped,
    /// exactly as Keras/HLS4ML drop them when exporting for inference.
    /// Per-layer reuse factors are clamped to each layer's multiplier
    /// count (HLS4ML cannot reuse a multiplier more times than there are
    /// multiplications).
    ///
    /// # Errors
    ///
    /// See [`CompileError`].
    pub fn compile(model: &Sequential, config: &Hls4mlConfig) -> Result<CompiledNn, CompileError> {
        if config.reuse_factor == 0 {
            return Err(CompileError::ZeroReuse);
        }
        let dense = model.dense_layers();
        if dense.is_empty() {
            return Err(CompileError::EmptyModel);
        }
        if let Some(list) = &config.per_layer_reuse {
            if list.len() != dense.len() {
                return Err(CompileError::ReuseListMismatch {
                    provided: list.len(),
                    layers: dense.len(),
                });
            }
            if list.contains(&0) {
                return Err(CompileError::ZeroReuse);
            }
        }
        // Sanity: specs other than dense are inference no-ops.
        debug_assert!(model.specs().iter().all(|s| matches!(
            s,
            LayerSpec::Dense { .. } | LayerSpec::Dropout { .. } | LayerSpec::GaussianNoise { .. }
        )));

        let layers: Vec<QuantizedDense> = dense
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let ops = (l.n_in() * l.n_out()) as u64;
                let reuse = config.reuse_for_layer(i).min(ops);
                QuantizedDense::quantize(
                    l.weights.as_slice(),
                    &l.bias,
                    l.n_in(),
                    l.n_out(),
                    l.activation,
                    config.precision,
                    reuse,
                )
            })
            .collect();
        Ok(CompiledNn::new(
            config.name.clone(),
            layers,
            config.precision,
        ))
    }

    /// Compiles directly from the serialized `(model.json, weights)` pair —
    /// the exact interface of Fig. 3 in the paper.
    ///
    /// # Errors
    ///
    /// Propagates model-loading failures and [`Hls4mlCompiler::compile`]
    /// errors.
    pub fn compile_files(
        topology: &Path,
        weights: &Path,
        config: &Hls4mlConfig,
    ) -> Result<CompiledNn, CompileError> {
        let model = ModelFile::load(topology, weights)?;
        Self::compile(&model, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml_nn::{Activation, Matrix};

    fn model() -> Sequential {
        let mut m = Sequential::with_seed(8, 21);
        m.push(LayerSpec::dense(16, Activation::Relu));
        m.push(LayerSpec::Dropout { rate: 0.2 });
        m.push(LayerSpec::dense(4, Activation::Softmax));
        m
    }

    #[test]
    fn compile_produces_matching_dims() {
        let acc = Hls4mlCompiler::compile(&model(), &Hls4mlConfig::with_reuse(4)).unwrap();
        assert_eq!(acc.input_dim(), 8);
        assert_eq!(acc.output_dim(), 4);
        assert_eq!(acc.layers().len(), 2); // dropout dropped
    }

    #[test]
    fn quantized_network_tracks_float_network() {
        let m = model();
        let acc = Hls4mlCompiler::compile(&m, &Hls4mlConfig::with_reuse(1)).unwrap();
        let x: Vec<f32> = (0..8).map(|i| (i as f32 - 4.0) * 0.2).collect();
        let float_out = m.forward(&Matrix::from_vec(1, 8, x.clone()));
        let fixed_out = acc.infer(&x);
        // Compare argmax (softmax vs logits both argmax-stable).
        let argmax = |v: &[f32]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        assert_eq!(argmax(float_out.row(0)), argmax(&fixed_out));
    }

    #[test]
    fn reuse_is_clamped_to_ops() {
        let acc = Hls4mlCompiler::compile(&model(), &Hls4mlConfig::with_reuse(1_000_000)).unwrap();
        // Layer 1 has 16*4 = 64 ops; its reuse must be clamped there.
        assert_eq!(acc.layers()[1].reuse(), 64);
        assert_eq!(acc.layers()[0].reuse(), 8 * 16);
    }

    #[test]
    fn per_layer_reuse_must_match() {
        let cfg = Hls4mlConfig::with_reuse(4).with_per_layer_reuse(vec![2]);
        let err = Hls4mlCompiler::compile(&model(), &cfg).unwrap_err();
        assert!(matches!(err, CompileError::ReuseListMismatch { .. }));
    }

    #[test]
    fn zero_reuse_rejected() {
        assert!(matches!(
            Hls4mlCompiler::compile(&model(), &Hls4mlConfig::with_reuse(0)),
            Err(CompileError::ZeroReuse)
        ));
        let cfg = Hls4mlConfig::with_reuse(4).with_per_layer_reuse(vec![1, 0]);
        assert!(matches!(
            Hls4mlCompiler::compile(&model(), &cfg),
            Err(CompileError::ZeroReuse)
        ));
    }

    #[test]
    fn empty_model_rejected() {
        let m = Sequential::new(8);
        assert!(matches!(
            Hls4mlCompiler::compile(&m, &Hls4mlConfig::default()),
            Err(CompileError::EmptyModel)
        ));
    }

    #[test]
    fn compile_files_roundtrip() {
        let dir = std::env::temp_dir().join("esp4ml_hls4ml_test");
        std::fs::create_dir_all(&dir).unwrap();
        let topo = dir.join("model.json");
        let weights = dir.join("model.espw");
        let m = model();
        ModelFile::save(&m, &topo, &weights).unwrap();
        let acc =
            Hls4mlCompiler::compile_files(&topo, &weights, &Hls4mlConfig::with_reuse(8)).unwrap();
        let direct = Hls4mlCompiler::compile(&m, &Hls4mlConfig::with_reuse(8)).unwrap();
        let x = vec![0.1f32; 8];
        assert_eq!(acc.infer(&x), direct.infer(&x));
    }

    #[test]
    fn higher_reuse_uses_fewer_resources() {
        let fast = Hls4mlCompiler::compile(&model(), &Hls4mlConfig::with_reuse(1)).unwrap();
        let slow = Hls4mlCompiler::compile(&model(), &Hls4mlConfig::with_reuse(64)).unwrap();
        assert!(fast.resources().dsps > slow.resources().dsps);
        assert!(fast.initiation_interval() < slow.initiation_interval());
    }
}
