//! The compiled fixed-point accelerator: behavioural model + HLS report.

use esp4ml_hls::{DenseLayerHls, FixedSpec, HlsEstimate, Resources};
use esp4ml_nn::Activation;
use serde::{Deserialize, Serialize};

/// One quantized dense layer of a compiled network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedDense {
    n_in: usize,
    n_out: usize,
    /// Row-major `n_in x n_out` weights as raw fixed-point values.
    weights: Vec<i64>,
    /// Raw fixed-point biases.
    bias: Vec<i64>,
    activation: Activation,
    spec: FixedSpec,
    reuse: u64,
}

impl QuantizedDense {
    /// Quantizes a float layer.
    pub(crate) fn quantize(
        weights: &[f32],
        bias: &[f32],
        n_in: usize,
        n_out: usize,
        activation: Activation,
        spec: FixedSpec,
        reuse: u64,
    ) -> Self {
        QuantizedDense {
            n_in,
            n_out,
            weights: weights.iter().map(|&w| spec.quantize(w as f64)).collect(),
            bias: bias.iter().map(|&b| spec.quantize(b as f64)).collect(),
            activation,
            spec,
            reuse,
        }
    }

    /// Input dimension.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output dimension.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Effective reuse factor (after clamping to the op count).
    pub fn reuse(&self) -> u64 {
        self.reuse
    }

    /// The fixed-point format.
    pub fn spec(&self) -> FixedSpec {
        self.spec
    }

    /// The HLS scheduling model of this layer.
    pub fn hls_model(&self) -> DenseLayerHls {
        DenseLayerHls::new(self.n_in as u64, self.n_out as u64, self.reuse, self.spec)
    }

    /// Fixed-point forward pass on raw values.
    ///
    /// The multiply-accumulate runs at full precision (as the HLS datapath
    /// does with a wide accumulator) and the result is rescaled, saturated
    /// and activated in the layer's own format.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != n_in`.
    pub fn forward_fixed(&self, input: &[i64]) -> Vec<i64> {
        assert_eq!(input.len(), self.n_in, "input width mismatch");
        let frac = self.spec.frac_bits();
        let mut out = Vec::with_capacity(self.n_out);
        for j in 0..self.n_out {
            // Wide accumulator: i128 cannot overflow for any realistic layer.
            let mut acc: i128 = (self.bias[j] as i128) << frac;
            for (i, &x) in input.iter().enumerate() {
                acc += x as i128 * self.weights[i * self.n_out + j] as i128;
            }
            let raw = self.spec.saturate((acc >> frac) as i64);
            out.push(self.apply_activation(raw));
        }
        out
    }

    fn apply_activation(&self, raw: i64) -> i64 {
        match self.activation {
            Activation::Linear => raw,
            // Softmax is monotone; HLS4ML computes it with a LUT only when
            // calibrated probabilities are needed. For argmax-consuming
            // pipelines the logits pass through unchanged, which preserves
            // the classification decision exactly.
            Activation::Softmax => raw,
            Activation::Relu => raw.max(0),
            Activation::Sigmoid => {
                // Piecewise LUT evaluation, as HLS4ML generates: the float
                // sigmoid of the dequantized value, re-quantized.
                let x = self.spec.dequantize(raw);
                self.spec.quantize(1.0 / (1.0 + (-x).exp()))
            }
            Activation::Tanh => {
                let x = self.spec.dequantize(raw);
                self.spec.quantize(x.tanh())
            }
        }
    }
}

/// A compiled neural-network accelerator: the output of the HLS4ML stage.
///
/// Functionally it is a fixed-point inference engine; architecturally it
/// carries the per-layer HLS reports that the SoC integration flow uses for
/// floorplanning (resources) and that the simulator uses for timing
/// (latency, initiation interval).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledNn {
    name: String,
    layers: Vec<QuantizedDense>,
    spec: FixedSpec,
}

impl CompiledNn {
    pub(crate) fn new(name: String, layers: Vec<QuantizedDense>, spec: FixedSpec) -> Self {
        assert!(!layers.is_empty(), "compiled network needs layers");
        CompiledNn { name, layers, spec }
    }

    /// The IP name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fixed-point format.
    pub fn spec(&self) -> FixedSpec {
        self.spec
    }

    /// The quantized layers.
    pub fn layers(&self) -> &[QuantizedDense] {
        &self.layers
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().expect("non-empty").n_in()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").n_out()
    }

    /// Fixed-point inference on raw values.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_dim()`.
    pub fn infer_fixed(&self, input: &[i64]) -> Vec<i64> {
        let mut a = input.to_vec();
        for layer in &self.layers {
            a = layer.forward_fixed(&a);
        }
        a
    }

    /// Float-in/float-out inference (quantizes the input, dequantizes the
    /// output) — the view the application software has of the accelerator.
    pub fn infer(&self, input: &[f32]) -> Vec<f32> {
        let raw: Vec<i64> = input
            .iter()
            .map(|&v| self.spec.quantize(v as f64))
            .collect();
        self.infer_fixed(&raw)
            .into_iter()
            .map(|r| self.spec.dequantize(r) as f32)
            .collect()
    }

    /// Argmax class of a single input (classifier convenience).
    pub fn classify(&self, input: &[f32]) -> usize {
        let out = self.infer(input);
        out.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite outputs"))
            .map(|(i, _)| i)
            .expect("non-empty output")
    }

    /// Per-layer HLS reports.
    pub fn layer_estimates(&self) -> Vec<HlsEstimate> {
        self.layers
            .iter()
            .map(|l| l.hls_model().estimate())
            .collect()
    }

    /// End-to-end latency: the layers run as an HLS dataflow pipeline, so
    /// one invocation takes the sum of layer latencies.
    pub fn latency(&self) -> u64 {
        self.layer_estimates().iter().map(|e| e.latency).sum()
    }

    /// Initiation interval: the slowest dataflow stage dominates.
    pub fn initiation_interval(&self) -> u64 {
        self.layer_estimates()
            .iter()
            .map(|e| e.initiation_interval)
            .max()
            .expect("non-empty")
    }

    /// Total resource usage.
    pub fn resources(&self) -> Resources {
        self.layer_estimates().iter().map(|e| e.resources).sum()
    }

    /// The aggregate HLS report.
    pub fn estimate(&self) -> HlsEstimate {
        HlsEstimate {
            latency: self.latency(),
            initiation_interval: self.initiation_interval(),
            resources: self.resources(),
        }
    }

    /// Splits the network into one single-layer accelerator per dense
    /// layer — the paper's *multi-tile (partitioned) classifier*, where the
    /// computation is distributed across five accelerator tiles that
    /// communicate over the NoC.
    pub fn split_layers(&self) -> Vec<CompiledNn> {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| CompiledNn {
                name: format!("{}_l{}", self.name, i),
                layers: vec![l.clone()],
                spec: self.spec,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_layer(n: usize, spec: FixedSpec) -> QuantizedDense {
        let mut w = vec![0.0f32; n * n];
        for i in 0..n {
            w[i * n + i] = 1.0;
        }
        QuantizedDense::quantize(&w, &vec![0.0; n], n, n, Activation::Linear, spec, 1)
    }

    #[test]
    fn identity_layer_passes_values() {
        let spec = FixedSpec::HLS4ML_DEFAULT;
        let l = identity_layer(4, spec);
        let x: Vec<i64> = [1.0, -2.0, 0.5, 3.25]
            .iter()
            .map(|&v| spec.quantize(v))
            .collect();
        assert_eq!(l.forward_fixed(&x), x);
    }

    #[test]
    fn relu_layer_clamps() {
        let spec = FixedSpec::HLS4ML_DEFAULT;
        let mut l = identity_layer(2, spec);
        l.activation = Activation::Relu;
        let x = vec![spec.quantize(-1.0), spec.quantize(2.0)];
        assert_eq!(l.forward_fixed(&x), vec![0, spec.quantize(2.0)]);
    }

    #[test]
    fn sigmoid_layer_matches_float_sigmoid() {
        let spec = FixedSpec::HLS4ML_DEFAULT;
        let mut l = identity_layer(1, spec);
        l.activation = Activation::Sigmoid;
        let y = l.forward_fixed(&[spec.quantize(0.0)]);
        assert!((spec.dequantize(y[0]) - 0.5).abs() < spec.resolution() * 2.0);
    }

    #[test]
    fn tanh_layer_matches_float_tanh() {
        let spec = FixedSpec::HLS4ML_DEFAULT;
        let mut l = identity_layer(1, spec);
        l.activation = Activation::Tanh;
        for v in [-2.0f64, -0.5, 0.0, 0.5, 2.0] {
            let y = l.forward_fixed(&[spec.quantize(v)]);
            let got = spec.dequantize(y[0]);
            assert!(
                (got - v.tanh()).abs() < 4.0 * spec.resolution(),
                "tanh({v}) = {got}"
            );
        }
    }

    #[test]
    fn accumulator_does_not_overflow_on_wide_layers() {
        let spec = FixedSpec::HLS4ML_DEFAULT;
        let n = 1024;
        let w = vec![0.03f32; n]; // single output neuron
        let l = QuantizedDense::quantize(&w, &[0.0], n, 1, Activation::Linear, spec, 1);
        let x = vec![spec.quantize(1.0); n];
        let y = l.forward_fixed(&x);
        // True sum 1024 * 0.03 ≈ 30.72, near the top of ap_fixed<16,6>.
        let v = spec.dequantize(y[0]);
        assert!((v - 30.72).abs() < 0.5, "got {v}");
    }

    #[test]
    fn saturation_on_overflowing_sum() {
        let spec = FixedSpec::HLS4ML_DEFAULT;
        let n = 64;
        let w = vec![1.0f32; n];
        let l = QuantizedDense::quantize(&w, &[0.0], n, 1, Activation::Linear, spec, 1);
        let x = vec![spec.quantize(1.0); n];
        // True sum is 64, above the ap_fixed<16,6> max of ~32: must saturate.
        assert_eq!(l.forward_fixed(&x)[0], spec.max_raw());
    }

    #[test]
    fn split_layers_composes_to_same_function() {
        let spec = FixedSpec::HLS4ML_DEFAULT;
        let l1 = identity_layer(3, spec);
        let mut l2 = identity_layer(3, spec);
        l2.activation = Activation::Relu;
        let nn = CompiledNn::new("t".into(), vec![l1, l2], spec);
        let parts = nn.split_layers();
        assert_eq!(parts.len(), 2);
        let x = vec![0.5f32, -0.25, 1.0];
        let direct = nn.infer(&x);
        let mut staged = x.clone();
        for p in &parts {
            staged = p.infer(&staged);
        }
        assert_eq!(direct, staged);
    }

    #[test]
    fn pipeline_ii_is_max_layer_ii() {
        let spec = FixedSpec::HLS4ML_DEFAULT;
        let a = QuantizedDense::quantize(
            &vec![0.0; 16 * 8],
            &[0.0; 8],
            16,
            8,
            Activation::Relu,
            spec,
            32,
        );
        let b =
            QuantizedDense::quantize(&[0.0; 8 * 4], &[0.0; 4], 8, 4, Activation::Softmax, spec, 8);
        let nn = CompiledNn::new("t".into(), vec![a, b], spec);
        assert_eq!(nn.initiation_interval(), 32);
        assert_eq!(
            nn.latency(),
            nn.layer_estimates().iter().map(|e| e.latency).sum::<u64>()
        );
    }
}
