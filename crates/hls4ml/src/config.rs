//! Compiler configuration.

use esp4ml_hls::FixedSpec;
use serde::{Deserialize, Serialize};

/// Tuning inputs of the HLS4ML stage: precision and reuse factor.
///
/// The reuse factor is "a single configuration parameter that specifies the
/// number of times a multiplier is used in the computation of a layer of
/// neurons" (paper, §II). A global value applies to every layer unless a
/// per-layer override is given; each layer clamps the value to its own
/// multiplier count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hls4mlConfig {
    /// Fixed-point format of weights, activations and accumulating
    /// datapath output.
    pub precision: FixedSpec,
    /// Global reuse factor.
    pub reuse_factor: u64,
    /// Optional per-dense-layer reuse factors (overrides the global one;
    /// must match the number of dense layers when present).
    pub per_layer_reuse: Option<Vec<u64>>,
    /// Name given to the generated accelerator IP.
    pub name: String,
}

impl Hls4mlConfig {
    /// Default configuration with the given global reuse factor.
    pub fn with_reuse(reuse_factor: u64) -> Self {
        Hls4mlConfig {
            precision: FixedSpec::HLS4ML_DEFAULT,
            reuse_factor,
            per_layer_reuse: None,
            name: "hls4ml_acc".to_string(),
        }
    }

    /// Sets the IP name (builder style).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Sets per-layer reuse factors (builder style).
    pub fn with_per_layer_reuse(mut self, reuse: Vec<u64>) -> Self {
        self.per_layer_reuse = Some(reuse);
        self
    }

    /// The reuse factor for dense layer `i`.
    pub fn reuse_for_layer(&self, i: usize) -> u64 {
        self.per_layer_reuse
            .as_ref()
            .and_then(|v| v.get(i).copied())
            .unwrap_or(self.reuse_factor)
    }
}

impl Default for Hls4mlConfig {
    fn default() -> Self {
        Hls4mlConfig::with_reuse(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_layer_overrides_global() {
        let c = Hls4mlConfig::with_reuse(64).with_per_layer_reuse(vec![8, 16]);
        assert_eq!(c.reuse_for_layer(0), 8);
        assert_eq!(c.reuse_for_layer(1), 16);
        // Missing entries fall back to the global factor.
        assert_eq!(c.reuse_for_layer(2), 64);
    }

    #[test]
    fn builder_name() {
        let c = Hls4mlConfig::default().named("classifier");
        assert_eq!(c.name, "classifier");
        assert_eq!(c.reuse_factor, 64);
    }
}
