//! The HLS4ML-analog compiler: trained models → SoC-ready accelerators.
//!
//! HLS4ML translates a trained Keras/PyTorch/ONNX model (a JSON topology
//! plus an HDF5 weight file) into a C++ accelerator specification that
//! Vivado HLS synthesizes for FPGAs, with a single parallelization knob —
//! the **reuse factor** — balancing latency, initiation interval and
//! resource usage. The ESP4ML flow wraps that compiler so that the
//! generated accelerator drops into an ESP tile unmodified.
//!
//! This crate reproduces the compiler stage:
//!
//! * [`Hls4mlConfig`] — precision (`ap_fixed<16,6>` by default) and reuse
//!   factor, exactly the tuning inputs of Fig. 3 in the paper.
//! * [`Hls4mlCompiler::compile`] — ingests an [`esp4ml_nn::Sequential`]
//!   model (or its serialized `model.json`/weights pair), quantizes weights
//!   to fixed point, schedules each layer through the
//!   [`esp4ml_hls::DenseLayerHls`] model, and emits a [`CompiledNn`].
//! * [`CompiledNn`] — a behavioural fixed-point inference engine with the
//!   HLS latency/II/resource report attached; the `esp4ml-soc` crate wraps
//!   it into an accelerator tile.
//! * [`AcceleratorDescriptor`] — the `acc.xml` analog: the register list
//!   and metadata the ESP integration flow needs.
//!
//! # Example
//!
//! ```
//! use esp4ml_nn::{Sequential, LayerSpec, Activation};
//! use esp4ml_hls4ml::{Hls4mlCompiler, Hls4mlConfig};
//!
//! # fn main() -> Result<(), esp4ml_hls4ml::CompileError> {
//! let mut model = Sequential::new(16);
//! model.push(LayerSpec::dense(8, Activation::Relu));
//! model.push(LayerSpec::dense(4, Activation::Softmax));
//! let acc = Hls4mlCompiler::compile(&model, &Hls4mlConfig::with_reuse(8))?;
//! let out = acc.infer(&vec![0.1; 16]);
//! assert_eq!(out.len(), 4);
//! assert!(acc.initiation_interval() >= 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiler;
mod config;
mod descriptor;
mod quantized;

pub use compiler::{CompileError, Hls4mlCompiler};
pub use config::Hls4mlConfig;
pub use descriptor::{AcceleratorDescriptor, RegisterDesc};
pub use quantized::{CompiledNn, QuantizedDense};
