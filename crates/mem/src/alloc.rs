//! Contiguous buffer allocation: the substrate behind `esp_alloc`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A handle to a contiguous physical buffer, as returned to user space by
/// `esp_alloc` (the `contig_handle_t` of the ESP runtime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContigHandle {
    /// Base physical word address.
    pub base: u64,
    /// Length in words.
    pub len: u64,
    /// Allocation id (used by free and by debug output).
    pub id: u64,
}

/// Errors returned by the contiguous allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AllocError {
    /// No free region of the requested size exists.
    OutOfMemory {
        /// Words requested.
        requested: u64,
        /// Largest free region available.
        largest_free: u64,
    },
    /// A zero-length allocation was requested.
    ZeroLength,
    /// The handle passed to [`ContigAlloc::free`] is not live.
    InvalidHandle,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "out of contiguous memory: requested {requested} words, largest free region {largest_free}"
            ),
            AllocError::ZeroLength => f.write_str("zero-length allocation"),
            AllocError::InvalidHandle => f.write_str("invalid or already-freed handle"),
        }
    }
}

impl Error for AllocError {}

/// First-fit contiguous allocator over a physical address range.
///
/// The ESP Linux runtime carves accelerator buffers out of a reserved
/// physically-contiguous region with its `contig_alloc` driver; this type
/// reproduces that allocator so that DMA addresses handed to accelerators
/// are realistic (stable across the run, non-overlapping, reusable).
///
/// # Example
///
/// ```
/// use esp4ml_mem::ContigAlloc;
/// # fn main() -> Result<(), esp4ml_mem::AllocError> {
/// let mut alloc = ContigAlloc::new(0x1000, 4096);
/// let a = alloc.alloc(1024)?;
/// let b = alloc.alloc(1024)?;
/// assert_ne!(a.base, b.base);
/// alloc.free(a)?;
/// let c = alloc.alloc(512)?; // reuses the freed region
/// assert_eq!(c.base, 0x1000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContigAlloc {
    base: u64,
    size: u64,
    /// Free regions: base -> length.
    free: BTreeMap<u64, u64>,
    /// Live allocations: id -> (base, len).
    live: BTreeMap<u64, (u64, u64)>,
    next_id: u64,
}

impl ContigAlloc {
    /// Creates an allocator managing `[base, base + size)` words.
    pub fn new(base: u64, size: u64) -> Self {
        let mut free = BTreeMap::new();
        if size > 0 {
            free.insert(base, size);
        }
        ContigAlloc {
            base,
            size,
            free,
            live: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// Base address of the managed region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size of the managed region in words.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Words currently allocated.
    pub fn used(&self) -> u64 {
        self.live.values().map(|&(_, len)| len).sum()
    }

    /// Allocates `len` contiguous words (first fit).
    ///
    /// # Errors
    ///
    /// [`AllocError::ZeroLength`] for `len == 0`;
    /// [`AllocError::OutOfMemory`] when no free region is large enough.
    pub fn alloc(&mut self, len: u64) -> Result<ContigHandle, AllocError> {
        if len == 0 {
            return Err(AllocError::ZeroLength);
        }
        let slot = self
            .free
            .iter()
            .find(|&(_, &flen)| flen >= len)
            .map(|(&fbase, &flen)| (fbase, flen));
        let Some((fbase, flen)) = slot else {
            let largest = self.free.values().copied().max().unwrap_or(0);
            return Err(AllocError::OutOfMemory {
                requested: len,
                largest_free: largest,
            });
        };
        self.free.remove(&fbase);
        if flen > len {
            self.free.insert(fbase + len, flen - len);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, (fbase, len));
        Ok(ContigHandle {
            base: fbase,
            len,
            id,
        })
    }

    /// Frees a previously allocated buffer, coalescing adjacent free
    /// regions.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidHandle`] if the handle is unknown or already
    /// freed.
    pub fn free(&mut self, handle: ContigHandle) -> Result<(), AllocError> {
        match self.live.remove(&handle.id) {
            Some((base, len)) if base == handle.base && len == handle.len => {
                self.insert_free(base, len);
                Ok(())
            }
            Some(entry) => {
                // Handle id was live but fields were tampered with; restore
                // and reject.
                self.live.insert(handle.id, entry);
                Err(AllocError::InvalidHandle)
            }
            None => Err(AllocError::InvalidHandle),
        }
    }

    /// Frees every live allocation (the `esp_cleanup` analog).
    pub fn free_all(&mut self) {
        self.live.clear();
        self.free.clear();
        if self.size > 0 {
            self.free.insert(self.base, self.size);
        }
    }

    fn insert_free(&mut self, base: u64, len: u64) {
        let mut base = base;
        let mut len = len;
        // Coalesce with predecessor.
        if let Some((&pbase, &plen)) = self.free.range(..base).next_back() {
            if pbase + plen == base {
                self.free.remove(&pbase);
                base = pbase;
                len += plen;
            }
        }
        // Coalesce with successor.
        if let Some((&nbase, &nlen)) = self.free.range(base + len..).next() {
            if base + len == nbase {
                self.free.remove(&nbase);
                len += nlen;
            }
        }
        self.free.insert(base, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_first_fit_and_disjoint() {
        let mut a = ContigAlloc::new(0, 100);
        let h1 = a.alloc(30).unwrap();
        let h2 = a.alloc(30).unwrap();
        let h3 = a.alloc(40).unwrap();
        assert_eq!(h1.base, 0);
        assert_eq!(h2.base, 30);
        assert_eq!(h3.base, 60);
        assert!(a.alloc(1).is_err());
    }

    #[test]
    fn zero_length_rejected() {
        let mut a = ContigAlloc::new(0, 10);
        assert_eq!(a.alloc(0), Err(AllocError::ZeroLength));
    }

    #[test]
    fn free_and_coalesce() {
        let mut a = ContigAlloc::new(0, 100);
        let h1 = a.alloc(30).unwrap();
        let h2 = a.alloc(30).unwrap();
        let h3 = a.alloc(40).unwrap();
        a.free(h2).unwrap();
        a.free(h1).unwrap(); // coalesces with h2's region
        let big = a.alloc(60).unwrap();
        assert_eq!(big.base, 0);
        a.free(h3).unwrap();
        a.free(big).unwrap();
        // Everything free again: one region of 100.
        let all = a.alloc(100).unwrap();
        assert_eq!(all.base, 0);
    }

    #[test]
    fn double_free_rejected() {
        let mut a = ContigAlloc::new(0, 10);
        let h = a.alloc(5).unwrap();
        a.free(h).unwrap();
        assert_eq!(a.free(h), Err(AllocError::InvalidHandle));
    }

    #[test]
    fn tampered_handle_rejected() {
        let mut a = ContigAlloc::new(0, 10);
        let mut h = a.alloc(5).unwrap();
        h.len = 6;
        assert_eq!(a.free(h), Err(AllocError::InvalidHandle));
        // The allocation is still live afterwards.
        assert_eq!(a.used(), 5);
    }

    #[test]
    fn out_of_memory_reports_largest_free() {
        let mut a = ContigAlloc::new(0, 100);
        let _h1 = a.alloc(60).unwrap();
        match a.alloc(50) {
            Err(AllocError::OutOfMemory {
                requested,
                largest_free,
            }) => {
                assert_eq!(requested, 50);
                assert_eq!(largest_free, 40);
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn free_all_resets() {
        let mut a = ContigAlloc::new(16, 64);
        a.alloc(10).unwrap();
        a.alloc(20).unwrap();
        a.free_all();
        assert_eq!(a.used(), 0);
        assert_eq!(a.alloc(64).unwrap().base, 16);
    }

    #[test]
    fn used_tracks_live_words() {
        let mut a = ContigAlloc::new(0, 100);
        let h = a.alloc(25).unwrap();
        assert_eq!(a.used(), 25);
        a.free(h).unwrap();
        assert_eq!(a.used(), 0);
    }
}
