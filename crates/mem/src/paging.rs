//! Scatter-gather virtual addressing for accelerator DMA: page table + TLB.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors raised by address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PagingError {
    /// The virtual address is not mapped.
    Unmapped {
        /// The offending virtual word address.
        vaddr: u64,
    },
    /// A mapping was requested with a zero page count.
    EmptyMapping,
}

impl fmt::Display for PagingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PagingError::Unmapped { vaddr } => {
                write!(f, "virtual address {vaddr:#x} is not mapped")
            }
            PagingError::EmptyMapping => f.write_str("mapping must contain at least one page"),
        }
    }
}

impl Error for PagingError {}

/// A per-accelerator page table.
///
/// ESP accelerators address their data sets through a private virtual
/// address space starting at 0; the ESP driver builds a page table mapping
/// it onto the (possibly scattered) physical pages of the user buffer. The
/// DMA engine walks this table through the socket TLB. In the common
/// `esp_alloc` case the physical pages are contiguous, but the table is
/// still exercised so that translation overhead is modelled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageTable {
    /// Page size in words (power of two).
    page_words: u64,
    /// Physical base address of each virtual page, in order.
    pages: Vec<u64>,
}

impl PageTable {
    /// Page size used by the ESP driver: 4 KiB = 512 words of 64 bits.
    pub const DEFAULT_PAGE_WORDS: u64 = 512;

    /// Builds a table mapping virtual page `i` to `pages[i]`.
    ///
    /// # Errors
    ///
    /// [`PagingError::EmptyMapping`] if `pages` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `page_words` is not a power of two.
    pub fn new(page_words: u64, pages: Vec<u64>) -> Result<Self, PagingError> {
        assert!(
            page_words.is_power_of_two(),
            "page size must be a power of two"
        );
        if pages.is_empty() {
            return Err(PagingError::EmptyMapping);
        }
        Ok(PageTable { page_words, pages })
    }

    /// Builds a table for a physically contiguous buffer starting at
    /// `phys_base` spanning `len` words (the `esp_alloc` fast path).
    ///
    /// # Errors
    ///
    /// [`PagingError::EmptyMapping`] if `len == 0`.
    pub fn contiguous(phys_base: u64, len: u64, page_words: u64) -> Result<Self, PagingError> {
        if len == 0 {
            return Err(PagingError::EmptyMapping);
        }
        let n_pages = len.div_ceil(page_words);
        let pages = (0..n_pages).map(|i| phys_base + i * page_words).collect();
        PageTable::new(page_words, pages)
    }

    /// Page size in words.
    pub fn page_words(&self) -> u64 {
        self.page_words
    }

    /// Number of mapped pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Translates a virtual word address.
    ///
    /// # Errors
    ///
    /// [`PagingError::Unmapped`] past the end of the table.
    pub fn translate(&self, vaddr: u64) -> Result<u64, PagingError> {
        let vpage = (vaddr / self.page_words) as usize;
        let offset = vaddr % self.page_words;
        match self.pages.get(vpage) {
            Some(&pbase) => Ok(pbase + offset),
            None => Err(PagingError::Unmapped { vaddr }),
        }
    }

    /// Splits the virtual range `[vaddr, vaddr + len)` into
    /// physically-contiguous chunks `(paddr, words)`, as the DMA engine does
    /// when issuing NoC transactions.
    ///
    /// # Errors
    ///
    /// [`PagingError::Unmapped`] if any part of the range is unmapped.
    pub fn translate_range(&self, vaddr: u64, len: u64) -> Result<Vec<(u64, u64)>, PagingError> {
        let mut chunks: Vec<(u64, u64)> = Vec::new();
        let mut v = vaddr;
        let mut remaining = len;
        while remaining > 0 {
            let paddr = self.translate(v)?;
            let in_page = self.page_words - (v % self.page_words);
            let take = in_page.min(remaining);
            // Merge with the previous chunk when physically adjacent.
            if let Some(last) = chunks.last_mut() {
                if last.0 + last.1 == paddr {
                    last.1 += take;
                    v += take;
                    remaining -= take;
                    continue;
                }
            }
            chunks.push((paddr, take));
            v += take;
            remaining -= take;
        }
        Ok(chunks)
    }
}

/// Hit/miss counters for a TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translations served from the TLB.
    pub hits: u64,
    /// Translations requiring a page-table walk.
    pub misses: u64,
}

impl TlbStats {
    /// Hit rate in `[0, 1]`; 0 when no accesses occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The small fully-associative TLB inside an ESP accelerator socket.
///
/// ESP pre-loads the TLB with the page table of the configured buffer when
/// the accelerator starts, so steady-state DMA never misses; the model
/// nevertheless implements LRU refill so that the miss path (and its
/// latency) exists, as ESP4ML's p2p modifications touched exactly this
/// logic.
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    /// (vpage, pbase) in LRU order — most recent at the back.
    entries: Vec<(u64, u64)>,
    miss_penalty: u64,
    stats: TlbStats,
}

/// Serializable state of a [`Tlb`]: the cached translations in LRU
/// order plus the hit/miss counters. Entry order is semantic — the
/// replacement victim depends on it — so it is captured exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbState {
    /// `(virtual page, physical base)` entries, most recent last.
    pub entries: Vec<(u64, u64)>,
    /// Hit/miss counters.
    pub stats: TlbStats,
}

impl Tlb {
    /// Captures the TLB entries (in LRU order) and counters.
    pub fn state(&self) -> TlbState {
        TlbState {
            entries: self.entries.clone(),
            stats: self.stats,
        }
    }

    /// Restores state captured by [`Tlb::state`]. Capacity and miss
    /// penalty are structural and kept.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot holds more entries than this TLB's
    /// capacity.
    pub fn restore_state(&mut self, state: &TlbState) {
        assert!(
            state.entries.len() <= self.capacity,
            "TLB snapshot has {} entries, capacity is {}",
            state.entries.len(),
            self.capacity
        );
        self.entries.clone_from(&state.entries);
        self.stats = state.stats;
    }

    /// Creates a TLB with `capacity` entries and the given miss penalty in
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, miss_penalty: u64) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            capacity,
            entries: Vec::with_capacity(capacity),
            miss_penalty,
            stats: TlbStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Flushes all entries (accelerator reconfiguration).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Translates `vaddr` through the TLB backed by `table`. Returns the
    /// physical address and the translation latency in cycles (0 on a hit).
    ///
    /// # Errors
    ///
    /// Propagates [`PagingError::Unmapped`] from the page-table walk.
    pub fn translate(&mut self, table: &PageTable, vaddr: u64) -> Result<(u64, u64), PagingError> {
        let vpage = vaddr / table.page_words();
        let offset = vaddr % table.page_words();
        if let Some(pos) = self.entries.iter().position(|&(v, _)| v == vpage) {
            let (_, pbase) = self.entries.remove(pos);
            self.entries.push((vpage, pbase)); // refresh LRU
            self.stats.hits += 1;
            return Ok((pbase + offset, 0));
        }
        self.stats.misses += 1;
        let pbase = table.translate(vpage * table.page_words())?;
        if self.entries.len() == self.capacity {
            self.entries.remove(0); // evict LRU
        }
        self.entries.push((vpage, pbase));
        Ok((pbase + offset, self.miss_penalty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PageTable {
        // 3 pages of 8 words mapped to scattered physical pages.
        PageTable::new(8, vec![100, 300, 200]).unwrap()
    }

    #[test]
    fn translate_within_pages() {
        let t = table();
        assert_eq!(t.translate(0).unwrap(), 100);
        assert_eq!(t.translate(7).unwrap(), 107);
        assert_eq!(t.translate(8).unwrap(), 300);
        assert_eq!(t.translate(23).unwrap(), 207);
    }

    #[test]
    fn translate_unmapped_fails() {
        let t = table();
        assert_eq!(t.translate(24), Err(PagingError::Unmapped { vaddr: 24 }));
    }

    #[test]
    fn contiguous_mapping() {
        let t = PageTable::contiguous(0x1000, 20, 8).unwrap();
        assert_eq!(t.page_count(), 3);
        assert_eq!(t.translate(0).unwrap(), 0x1000);
        assert_eq!(t.translate(19).unwrap(), 0x1013);
    }

    #[test]
    fn empty_mappings_rejected() {
        assert_eq!(PageTable::new(8, vec![]), Err(PagingError::EmptyMapping));
        assert!(PageTable::contiguous(0, 0, 8).is_err());
    }

    #[test]
    fn range_splits_at_page_boundaries() {
        let t = table();
        // [4, 20): words 4..8 in page0, 8..16 page1, 16..20 page2.
        let chunks = t.translate_range(4, 16).unwrap();
        assert_eq!(chunks, vec![(104, 4), (300, 8), (200, 4)]);
    }

    #[test]
    fn range_merges_contiguous_pages() {
        let t = PageTable::contiguous(0x1000, 32, 8).unwrap();
        let chunks = t.translate_range(0, 32).unwrap();
        assert_eq!(chunks, vec![(0x1000, 32)]);
    }

    #[test]
    fn range_unmapped_fails() {
        let t = table();
        assert!(t.translate_range(20, 8).is_err());
    }

    #[test]
    fn tlb_hits_after_first_access() {
        let t = table();
        let mut tlb = Tlb::new(4, 20);
        let (p1, l1) = tlb.translate(&t, 3).unwrap();
        assert_eq!((p1, l1), (103, 20)); // cold miss
        let (p2, l2) = tlb.translate(&t, 5).unwrap();
        assert_eq!((p2, l2), (105, 0)); // same page: hit
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn tlb_evicts_lru() {
        let t = PageTable::new(8, vec![0, 100, 200, 300]).unwrap();
        let mut tlb = Tlb::new(2, 10);
        tlb.translate(&t, 0).unwrap(); // page 0 (miss)
        tlb.translate(&t, 8).unwrap(); // page 1 (miss)
        tlb.translate(&t, 0).unwrap(); // page 0 (hit, refresh)
        tlb.translate(&t, 16).unwrap(); // page 2 (miss, evicts page 1)
        let (_, lat) = tlb.translate(&t, 8).unwrap(); // page 1 again: miss
        assert_eq!(lat, 10);
        assert_eq!(tlb.stats().misses, 4);
        assert_eq!(tlb.stats().hits, 1);
    }

    #[test]
    fn tlb_flush_forgets() {
        let t = table();
        let mut tlb = Tlb::new(4, 5);
        tlb.translate(&t, 0).unwrap();
        tlb.flush();
        let (_, lat) = tlb.translate(&t, 0).unwrap();
        assert_eq!(lat, 5);
    }

    #[test]
    fn hit_rate() {
        let s = TlbStats { hits: 3, misses: 1 };
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(TlbStats::default().hit_rate(), 0.0);
    }
}
