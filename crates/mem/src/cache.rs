//! A last-level cache (LLC) model for LLC-coherent accelerator DMA.
//!
//! ESP memory tiles can host a partition of a last-level cache so that
//! accelerator DMA is *LLC-coherent*: bursts that hit in the LLC never
//! touch DRAM. The paper's related work (Giri et al., IEEE Micro 2018)
//! identifies this as "normally the most efficient accelerator
//! cache-coherence model for non-trivial workloads with regular memory
//! access pattern" — the model ESP4ML's p2p communication is measured
//! against. This module provides the set-associative write-back cache and
//! the [`CachedDram`] wrapper the memory tile uses.

use crate::{Dram, DramConfig, DramState, DramStats};
use serde::{Deserialize, Serialize};

/// Configuration of an LLC partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in 64-bit words.
    pub size_words: u64,
    /// Line size in words.
    pub line_words: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Cycles to serve one line on a hit.
    pub hit_cycles: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // 2 MiB, 16-word (128-byte) lines, 8-way: an ESP LLC partition.
        CacheConfig {
            size_words: 256 * 1024,
            line_words: 16,
            ways: 8,
            hit_cycles: 4,
        }
    }
}

/// Hit/miss counters of a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Line accesses served from the cache.
    pub hits: u64,
    /// Line accesses requiring a DRAM fill.
    pub misses: u64,
    /// Dirty lines written back to DRAM on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Serializable state of one cache line in an [`LlcState`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineState {
    /// Tag bits of the cached line.
    pub tag: u64,
    /// Whether the way holds a line.
    pub valid: bool,
    /// Whether the line has been written since its fill.
    pub dirty: bool,
    /// LRU timestamp (the cache clock at last touch).
    pub lru: u64,
}

/// Serializable state of an [`Llc`]: the complete tag array, the LRU
/// clock and the hit/miss counters. The tag array and clock are timing
/// state — without them a restored run would see different hit/miss
/// sequences than an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcState {
    /// Tag array, `[set][way]`.
    pub sets: Vec<Vec<LineState>>,
    /// The LRU clock.
    pub clock: u64,
    /// Hit/miss/writeback counters.
    pub stats: CacheStats,
}

/// The outcome of one line access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// Dirty line address evicted to make room, if any.
    pub writeback: Option<u64>,
}

/// A set-associative write-back, write-allocate cache (tag array only —
/// the data lives in the backing DRAM, which this model uses as the
/// functional store while the cache filters the *accounted* traffic).
#[derive(Debug, Clone)]
pub struct Llc {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl Llc {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless sizes are positive, the line count divides evenly
    /// into sets, and the set count is a power of two.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_words > 0 && config.ways > 0);
        let lines = config.size_words / config.line_words;
        assert!(lines >= config.ways as u64, "cache smaller than one set");
        let n_sets = lines / config.ways as u64;
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Llc {
            config,
            sets: (0..n_sets)
                .map(|_| vec![Line::default(); config.ways as usize])
                .collect(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the counters (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Captures the tag array, LRU clock and counters for a snapshot.
    pub fn state(&self) -> LlcState {
        LlcState {
            sets: self
                .sets
                .iter()
                .map(|set| {
                    set.iter()
                        .map(|l| LineState {
                            tag: l.tag,
                            valid: l.valid,
                            dirty: l.dirty,
                            lru: l.lru,
                        })
                        .collect()
                })
                .collect(),
            clock: self.clock,
            stats: self.stats,
        }
    }

    /// Restores state captured by [`Llc::state`].
    ///
    /// # Panics
    ///
    /// Panics when the set/way geometry disagrees with this cache.
    pub fn restore_state(&mut self, state: &LlcState) {
        assert_eq!(state.sets.len(), self.sets.len(), "set count");
        for (set, ss) in self.sets.iter_mut().zip(&state.sets) {
            assert_eq!(ss.len(), set.len(), "way count");
            for (line, ls) in set.iter_mut().zip(ss) {
                *line = Line {
                    tag: ls.tag,
                    valid: ls.valid,
                    dirty: ls.dirty,
                    lru: ls.lru,
                };
            }
        }
        self.clock = state.clock;
        self.stats = state.stats;
    }

    /// Accesses the line containing `addr`; `is_write` marks it dirty.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheAccess {
        self.clock += 1;
        let line_addr = addr / self.config.line_words;
        let n_sets = self.sets.len() as u64;
        let set_idx = (line_addr % n_sets) as usize;
        let tag = line_addr / n_sets;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.clock;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return CacheAccess {
                hit: true,
                writeback: None,
            };
        }
        self.stats.misses += 1;
        // Choose victim: invalid first, else LRU.
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("non-empty set");
        let mut writeback = None;
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            let victim_line = victim.tag * n_sets + set_idx as u64;
            writeback = Some(victim_line * self.config.line_words);
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: self.clock,
        };
        CacheAccess {
            hit: false,
            writeback,
        }
    }
}

/// Serializable state of a [`CachedDram`]: the sparse DRAM image plus
/// the LLC tag state when a cache is configured.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedDramState {
    /// The backing DRAM image.
    pub dram: DramState,
    /// The LLC tag array and counters, when an LLC is present.
    pub llc: Option<LlcState>,
}

/// DRAM optionally fronted by an LLC partition: the storage stack of a
/// memory tile. Burst methods return `(data, latency_cycles)`; the DRAM
/// access counters reflect only the traffic that actually crossed the
/// off-chip boundary (misses and writebacks) when an LLC is present.
#[derive(Debug, Clone)]
pub struct CachedDram {
    dram: Dram,
    llc: Option<Llc>,
}

impl CachedDram {
    /// Plain DRAM, no cache (non-coherent DMA).
    pub fn new(config: DramConfig) -> Self {
        CachedDram {
            dram: Dram::new(config),
            llc: None,
        }
    }

    /// DRAM behind an LLC partition (LLC-coherent DMA).
    pub fn with_llc(config: DramConfig, cache: CacheConfig) -> Self {
        CachedDram {
            dram: Dram::new(config),
            llc: Some(Llc::new(cache)),
        }
    }

    /// DRAM counters (off-chip traffic only).
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// LLC counters, when an LLC is configured.
    pub fn llc_stats(&self) -> Option<&CacheStats> {
        self.llc.as_ref().map(Llc::stats)
    }

    /// Resets all counters.
    pub fn reset_stats(&mut self) {
        self.dram.reset_stats();
        if let Some(llc) = &mut self.llc {
            llc.reset_stats();
        }
    }

    /// Capacity in words.
    pub fn size_words(&self) -> u64 {
        self.dram.size_words()
    }

    /// Unaccounted word read (testbench).
    pub fn peek(&self, addr: u64) -> u64 {
        self.dram.peek(addr)
    }

    /// Unaccounted word write (testbench).
    pub fn poke(&mut self, addr: u64, value: u64) {
        self.dram.poke(addr, value);
    }

    /// Reads a burst, returning the data and the service latency.
    pub fn read_burst(&mut self, addr: u64, len: u64) -> (Vec<u64>, u64) {
        match &mut self.llc {
            None => {
                let latency = self.dram.burst_latency(len);
                (self.dram.read_burst(addr, len), latency)
            }
            Some(_) => {
                let latency = self.filter_through_llc(addr, len, false);
                let data = (addr..addr + len).map(|a| self.dram.peek(a)).collect();
                (data, latency)
            }
        }
    }

    /// Writes a burst, returning the service latency.
    pub fn write_burst(&mut self, addr: u64, data: &[u64]) -> u64 {
        match &mut self.llc {
            None => {
                let latency = self.dram.burst_latency(data.len() as u64);
                self.dram.write_burst(addr, data);
                latency
            }
            Some(_) => {
                let latency = self.filter_through_llc(addr, data.len() as u64, true);
                for (i, &w) in data.iter().enumerate() {
                    self.dram.poke(addr + i as u64, w);
                }
                latency
            }
        }
    }

    /// Captures the full storage-stack state (sparse DRAM image plus
    /// the LLC tag array, when present) for a snapshot.
    pub fn state(&self) -> CachedDramState {
        CachedDramState {
            dram: self.dram.state(),
            llc: self.llc.as_ref().map(Llc::state),
        }
    }

    /// Restores state captured by [`CachedDram::state`].
    ///
    /// # Panics
    ///
    /// Panics when the LLC presence or geometry disagrees with this
    /// stack — the cache configuration is structural, so a snapshot
    /// from a differently-configured memory tile is a caller bug.
    pub fn restore_state(&mut self, state: &CachedDramState) {
        self.dram.restore_state(&state.dram);
        match (&mut self.llc, &state.llc) {
            (None, None) => {}
            (Some(llc), Some(ls)) => llc.restore_state(ls),
            (have, want) => panic!(
                "LLC presence mismatch on restore: tile has {}, snapshot has {}",
                if have.is_some() { "an LLC" } else { "no LLC" },
                if want.is_some() { "an LLC" } else { "no LLC" },
            ),
        }
    }

    /// Runs the line-level accounting for a burst; returns its latency.
    fn filter_through_llc(&mut self, addr: u64, len: u64, is_write: bool) -> u64 {
        let llc = self.llc.as_mut().expect("llc present");
        let line_words = llc.config().line_words;
        let hit_cycles = llc.config().hit_cycles;
        let first_line = addr / line_words;
        let last_line = (addr + len.max(1) - 1) / line_words;
        let mut latency = 0;
        for line in first_line..=last_line {
            let access = llc.access(line * line_words, is_write);
            if access.hit {
                latency += hit_cycles;
            } else {
                // Write-allocate: a miss fills the line from DRAM whether
                // the access is a read or a write (dirty data leaves the
                // chip only via writebacks below).
                latency += self.dram.burst_latency(line_words);
                self.dram.stats_note_read(line_words);
            }
            if access.writeback.is_some() {
                latency += self.dram.burst_latency(line_words);
                self.dram.stats_note_write(line_words);
            }
        }
        latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> CacheConfig {
        CacheConfig {
            size_words: 64,
            line_words: 4,
            ways: 2,
            hit_cycles: 2,
        }
    }

    #[test]
    fn repeated_access_hits() {
        let mut llc = Llc::new(small_cache());
        assert!(!llc.access(0, false).hit);
        assert!(llc.access(0, false).hit);
        assert!(llc.access(3, false).hit); // same line
        assert!(!llc.access(4, false).hit); // next line
        assert_eq!(llc.stats().hits, 2);
        assert_eq!(llc.stats().misses, 2);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let cfg = small_cache(); // 16 lines, 2-way, 8 sets
        let mut llc = Llc::new(cfg);
        // Three lines mapping to the same set (stride = sets * line = 32).
        llc.access(0, true);
        llc.access(32, false);
        let third = llc.access(64, false);
        assert!(!third.hit);
        assert_eq!(third.writeback, Some(0)); // the dirty LRU line
        assert_eq!(llc.stats().writebacks, 1);
    }

    #[test]
    fn cached_dram_filters_off_chip_traffic() {
        let dram_cfg = DramConfig {
            size_words: 4096,
            first_word_latency: 10,
            per_word_latency: 1,
            banks: 1,
        };
        let mut plain = CachedDram::new(dram_cfg);
        let mut cached = CachedDram::with_llc(
            dram_cfg,
            CacheConfig {
                size_words: 1024,
                line_words: 16,
                ways: 4,
                hit_cycles: 2,
            },
        );
        for dev in [&mut plain, &mut cached] {
            dev.write_burst(0, &[7; 64]);
            let _ = dev.read_burst(0, 64);
            let _ = dev.read_burst(0, 64);
        }
        // Plain DRAM: every word crosses the boundary.
        assert_eq!(plain.dram_stats().total_accesses(), 64 * 3);
        // Cached: the write allocates 4 lines (fills), both reads hit.
        assert_eq!(cached.dram_stats().word_writes, 0);
        assert_eq!(cached.dram_stats().word_reads, 64);
        assert!(cached.llc_stats().expect("llc").hit_rate() > 0.6);
    }

    #[test]
    fn cached_reads_return_correct_data() {
        let mut cached = CachedDram::with_llc(DramConfig::default(), CacheConfig::default());
        cached.write_burst(100, &[1, 2, 3, 4]);
        let (data, _) = cached.read_burst(100, 4);
        assert_eq!(data, vec![1, 2, 3, 4]);
        // And peeks see the same (write-through functional store).
        assert_eq!(cached.peek(102), 3);
    }

    #[test]
    fn hit_latency_below_miss_latency() {
        let mut cached = CachedDram::with_llc(
            DramConfig {
                size_words: 4096,
                first_word_latency: 16,
                per_word_latency: 1,
                banks: 1,
            },
            small_cache(),
        );
        let (_, cold) = cached.read_burst(0, 4);
        let (_, warm) = cached.read_burst(0, 4);
        assert!(warm < cold, "warm {warm} !< cold {cold}");
        assert_eq!(warm, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        Llc::new(CacheConfig {
            size_words: 48,
            line_words: 4,
            ways: 2,
            hit_cycles: 1,
        });
    }
}
