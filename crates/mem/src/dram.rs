//! Off-chip DRAM model with burst timing and access accounting.

use serde::{Deserialize, Serialize};

/// Configuration of the DRAM behind a memory tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Capacity in 64-bit words.
    pub size_words: u64,
    /// Cycles from request to first word of a burst (row activation +
    /// controller overhead, in NoC clock cycles at the SoC frequency).
    pub first_word_latency: u64,
    /// Cycles per subsequent word of an open burst.
    pub per_word_latency: u64,
    /// Number of independent banks (bursts to different banks pipeline).
    pub banks: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        // 256 MiB of 64-bit words; latencies expressed in 78 MHz SoC
        // cycles, matching the FPGA prototype's MIG-attached DDR4 (~200 ns
        // first access ≈ 16 cycles at 78 MHz, then one word per cycle).
        DramConfig {
            size_words: 32 * 1024 * 1024,
            first_word_latency: 16,
            per_word_latency: 1,
            banks: 4,
        }
    }
}

/// Access counters for one DRAM device.
///
/// `word_reads + word_writes` is the "DRAM accesses" metric of the paper's
/// Fig. 8: the number of words that crossed the off-chip memory boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Words read from DRAM.
    pub word_reads: u64,
    /// Words written to DRAM.
    pub word_writes: u64,
    /// Number of read bursts.
    pub read_bursts: u64,
    /// Number of write bursts.
    pub write_bursts: u64,
    /// Total cycles spent servicing bursts (occupancy, not wall-clock).
    pub busy_cycles: u64,
}

impl DramStats {
    /// Total words moved across the DRAM pins.
    pub fn total_accesses(&self) -> u64 {
        self.word_reads + self.word_writes
    }
}

/// Serializable image of a [`Dram`]: stats plus the written contents as
/// sparse nonzero spans. The default DRAM is 32 M words, almost all of
/// them zero, so a dense image would be prohibitive both to build and to
/// serialize; spans keep snapshot cost proportional to the words the run
/// actually touched.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramState {
    /// Access counters at capture time.
    pub stats: DramStats,
    /// Dirty-window low watermark (lowest word address ever written).
    pub dirty_lo: u64,
    /// Dirty-window high watermark (one past the highest written word).
    pub dirty_hi: u64,
    /// Nonzero content spans: `(start word address, contiguous words)`.
    pub spans: Vec<(u64, Vec<u64>)>,
}

/// A word-addressable DRAM with burst accounting.
///
/// Storage is dense (`Vec<u64>`), so construction cost is proportional to
/// capacity; the default 256 MiB model allocates once and reuses pages
/// lazily via the OS. Writes maintain a dirty window (`[dirty_lo,
/// dirty_hi)`) so snapshot and restore only touch the region a run has
/// actually written, never the full capacity.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    words: Vec<u64>,
    stats: DramStats,
    /// Lowest word address ever written (`u64::MAX` when clean).
    dirty_lo: u64,
    /// One past the highest word address ever written (0 when clean).
    dirty_hi: u64,
}

impl Dram {
    /// Creates a zero-initialized DRAM.
    pub fn new(config: DramConfig) -> Self {
        Dram {
            words: vec![0; config.size_words as usize],
            config,
            stats: DramStats::default(),
            dirty_lo: u64::MAX,
            dirty_hi: 0,
        }
    }

    /// Widens the dirty window to cover `[addr, addr + len)`.
    #[inline]
    fn mark_dirty(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.dirty_lo = self.dirty_lo.min(addr);
        self.dirty_hi = self.dirty_hi.max(addr + len);
    }

    /// Captures stats and contents as a sparse [`DramState`]. Cost is
    /// proportional to the dirty window, not the DRAM capacity.
    pub fn state(&self) -> DramState {
        let mut spans: Vec<(u64, Vec<u64>)> = Vec::new();
        let (lo, hi) = (self.dirty_lo, self.dirty_hi);
        if lo < hi {
            let mut open: Option<(u64, Vec<u64>)> = None;
            for addr in lo..hi {
                let w = self.words[addr as usize];
                if w != 0 {
                    open.get_or_insert_with(|| (addr, Vec::new())).1.push(w);
                } else if let Some(span) = open.take() {
                    spans.push(span);
                }
            }
            if let Some(span) = open.take() {
                spans.push(span);
            }
        }
        DramState {
            stats: self.stats,
            dirty_lo: self.dirty_lo,
            dirty_hi: self.dirty_hi,
            spans,
        }
    }

    /// Restores stats and contents captured by [`Dram::state`]: the
    /// current dirty window is zero-filled, the snapshot's spans are
    /// re-applied and the watermarks are reset to the snapshot's. Cost
    /// is proportional to the wider of the two dirty windows.
    ///
    /// # Panics
    ///
    /// Panics when a span falls outside this DRAM's capacity (i.e. the
    /// state was captured from a larger device).
    pub fn restore_state(&mut self, state: &DramState) {
        if self.dirty_lo < self.dirty_hi {
            let (lo, hi) = (self.dirty_lo as usize, self.dirty_hi as usize);
            self.words[lo..hi].fill(0);
        }
        for (addr, data) in &state.spans {
            let end = addr + data.len() as u64;
            assert!(
                end <= self.config.size_words,
                "DRAM restore span [{addr}, {end}) out of bounds"
            );
            self.words[*addr as usize..end as usize].copy_from_slice(data);
        }
        self.stats = state.stats;
        self.dirty_lo = state.dirty_lo;
        self.dirty_hi = state.dirty_hi;
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Access counters.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets the access counters (e.g. between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Capacity in words.
    pub fn size_words(&self) -> u64 {
        self.config.size_words
    }

    /// Cycles needed to service a burst of `len` words.
    pub fn burst_latency(&self, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        self.config.first_word_latency + self.config.per_word_latency * len
    }

    /// Reads `len` words starting at `addr`, counting the accesses.
    ///
    /// # Panics
    ///
    /// Panics if the burst runs past the end of memory — physical addresses
    /// handed to the memory tile are produced by the page table, so an
    /// overrun is a simulator bug, not a recoverable condition.
    pub fn read_burst(&mut self, addr: u64, len: u64) -> Vec<u64> {
        let (a, l) = (addr as usize, len as usize);
        assert!(
            addr + len <= self.config.size_words,
            "DRAM read burst [{addr}, {}) out of bounds",
            addr + len
        );
        self.stats.word_reads += len;
        self.stats.read_bursts += 1;
        self.stats.busy_cycles += self.burst_latency(len);
        self.words[a..a + l].to_vec()
    }

    /// Writes `data` starting at `addr`, counting the accesses.
    ///
    /// # Panics
    ///
    /// Panics if the burst runs past the end of memory (see
    /// [`Dram::read_burst`]).
    pub fn write_burst(&mut self, addr: u64, data: &[u64]) {
        let len = data.len() as u64;
        assert!(
            addr + len <= self.config.size_words,
            "DRAM write burst [{addr}, {}) out of bounds",
            addr + len
        );
        self.stats.word_writes += len;
        self.stats.write_bursts += 1;
        self.stats.busy_cycles += self.burst_latency(len);
        self.mark_dirty(addr, len);
        self.words[addr as usize..(addr + len) as usize].copy_from_slice(data);
    }

    /// Reads a single word *without* counting it as a DRAM access. Used by
    /// debug/validation paths (the testbench checking results) that would
    /// not exist in hardware.
    pub fn peek(&self, addr: u64) -> u64 {
        self.words[addr as usize]
    }

    /// Writes a single word without accounting (testbench initialization).
    pub fn poke(&mut self, addr: u64, value: u64) {
        self.mark_dirty(addr, 1);
        self.words[addr as usize] = value;
    }

    /// Records `words` read from DRAM without moving data — used by cache
    /// front-ends that perform the functional transfer separately but must
    /// account the off-chip fill traffic.
    pub fn stats_note_read(&mut self, words: u64) {
        self.stats.word_reads += words;
        self.stats.read_bursts += 1;
    }

    /// Records `words` written to DRAM without moving data (cache
    /// writeback accounting).
    pub fn stats_note_write(&mut self, words: u64) {
        self.stats.word_writes += words;
        self.stats.write_bursts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dram {
        Dram::new(DramConfig {
            size_words: 1024,
            first_word_latency: 10,
            per_word_latency: 1,
            banks: 2,
        })
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = small();
        d.write_burst(100, &[5, 6, 7, 8]);
        assert_eq!(d.read_burst(100, 4), vec![5, 6, 7, 8]);
    }

    #[test]
    fn stats_count_words_and_bursts() {
        let mut d = small();
        d.write_burst(0, &[1, 2]);
        d.read_burst(0, 2);
        d.read_burst(0, 1);
        let s = d.stats();
        assert_eq!(s.word_writes, 2);
        assert_eq!(s.word_reads, 3);
        assert_eq!(s.write_bursts, 1);
        assert_eq!(s.read_bursts, 2);
        assert_eq!(s.total_accesses(), 5);
    }

    #[test]
    fn burst_latency_model() {
        let d = small();
        assert_eq!(d.burst_latency(0), 0);
        assert_eq!(d.burst_latency(1), 11);
        assert_eq!(d.burst_latency(64), 74);
    }

    #[test]
    fn peek_poke_do_not_count() {
        let mut d = small();
        d.poke(5, 99);
        assert_eq!(d.peek(5), 99);
        assert_eq!(d.stats().total_accesses(), 0);
    }

    #[test]
    fn reset_stats_zeroes_counters() {
        let mut d = small();
        d.write_burst(0, &[1]);
        d.reset_stats();
        assert_eq!(d.stats(), &DramStats::default());
    }

    #[test]
    fn state_captures_sparse_spans() {
        let mut d = small();
        d.write_burst(10, &[1, 2, 0, 0, 3]);
        d.poke(500, 7);
        let s = d.state();
        assert_eq!(s.spans, vec![(10, vec![1, 2]), (14, vec![3]), (500, vec![7])]);
        assert_eq!((s.dirty_lo, s.dirty_hi), (10, 501));

        // Diverge, then restore: contents and stats return exactly.
        d.write_burst(600, &[9; 8]);
        d.poke(11, 42);
        d.restore_state(&s);
        assert_eq!(d.state(), s);
        assert_eq!(d.peek(11), 2);
        assert_eq!(d.peek(600), 0);
        assert_eq!(d.stats(), &s.stats);
    }

    #[test]
    fn restore_on_clean_dram_reinstates_contents() {
        let mut a = small();
        a.write_burst(0, &[5, 0, 6]);
        let s = a.state();
        let mut b = small();
        b.restore_state(&s);
        assert_eq!(b.read_burst(0, 3), vec![5, 0, 6]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let mut d = small();
        d.read_burst(1020, 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_out_of_bounds_panics() {
        let mut d = small();
        d.write_burst(1023, &[1, 2]);
    }
}
