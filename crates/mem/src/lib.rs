//! Memory-system substrates for the ESP4ML reproduction.
//!
//! ESP accelerators move long bursts of data between their on-chip private
//! local memories (PLMs) and off-chip DRAM via DMA, with virtual addressing
//! provided by a per-accelerator page table and a TLB inside the tile
//! socket. This crate models every memory component the ESP4ML flow relies
//! on:
//!
//! * [`Dram`] — the off-chip main memory behind a memory tile, with a burst
//!   timing model and the per-access counters that produce the paper's
//!   Fig. 8 (DRAM accesses with and without p2p communication).
//! * [`ContigAlloc`] — the contiguous-buffer allocator backing the
//!   `esp_alloc` runtime call.
//! * [`PageTable`] and [`Tlb`] — scatter-gather virtual addressing for
//!   accelerator DMA.
//! * [`Plm`] — banked private local memory of an accelerator tile.
//!
//! # Example
//!
//! ```
//! use esp4ml_mem::{Dram, DramConfig};
//!
//! let mut dram = Dram::new(DramConfig::default());
//! dram.write_burst(0x100, &[1, 2, 3]);
//! assert_eq!(dram.read_burst(0x100, 3), vec![1, 2, 3]);
//! assert_eq!(dram.stats().word_writes, 3);
//! assert_eq!(dram.stats().word_reads, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod cache;
mod dram;
mod paging;
mod plm;

pub use alloc::{AllocError, ContigAlloc, ContigHandle};
pub use cache::{
    CacheAccess, CacheConfig, CacheStats, CachedDram, CachedDramState, LineState, Llc, LlcState,
};
pub use dram::{Dram, DramConfig, DramState, DramStats};
pub use paging::{PageTable, PagingError, Tlb, TlbState, TlbStats};
pub use plm::{Plm, PlmConfig, PlmError};
