//! Private local memory (PLM) of an accelerator tile.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Configuration of a PLM instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlmConfig {
    /// Total capacity in 64-bit words.
    pub size_words: u64,
    /// Number of banks; words are interleaved word-by-word across banks so
    /// a sequential burst streams one word per cycle per bank port.
    pub banks: u32,
}

impl Default for PlmConfig {
    fn default() -> Self {
        // 16 KiB per buffer is typical of HLS-generated accelerators on
        // Ultrascale+ (a handful of BRAM36 per bank).
        PlmConfig {
            size_words: 4096,
            banks: 2,
        }
    }
}

/// Errors raised by PLM accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlmError {
    /// An access fell outside the PLM.
    OutOfBounds {
        /// Offending word offset.
        offset: u64,
        /// PLM capacity in words.
        size: u64,
    },
}

impl fmt::Display for PlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlmError::OutOfBounds { offset, size } => {
                write!(f, "PLM access at word {offset} outside capacity {size}")
            }
        }
    }
}

impl Error for PlmError {}

/// A banked on-chip scratchpad.
///
/// The PLM decouples an accelerator's compute datapath from DMA: the LOAD
/// phase fills `_inbuff`, COMPUTE reads/writes the buffers, STORE drains
/// `_outbuff` (see the wrapper in the paper's Fig. 4). BRAM cost is modelled
/// by the HLS resource estimator in `esp4ml-hls`; this type provides the
/// functional storage plus simple port accounting.
#[derive(Debug, Clone)]
pub struct Plm {
    config: PlmConfig,
    words: Vec<u64>,
    reads: u64,
    writes: u64,
}

impl Plm {
    /// Creates a zeroed PLM.
    pub fn new(config: PlmConfig) -> Self {
        Plm {
            words: vec![0; config.size_words as usize],
            config,
            reads: 0,
            writes: 0,
        }
    }

    /// The PLM configuration.
    pub fn config(&self) -> &PlmConfig {
        &self.config
    }

    /// Capacity in words.
    pub fn size_words(&self) -> u64 {
        self.config.size_words
    }

    /// Total word reads so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total word writes so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Cycles to stream `len` sequential words through the bank ports.
    pub fn stream_latency(&self, len: u64) -> u64 {
        len.div_ceil(self.config.banks as u64)
    }

    /// Reads `len` words starting at `offset`.
    ///
    /// # Errors
    ///
    /// [`PlmError::OutOfBounds`] if the range exceeds capacity.
    pub fn read(&mut self, offset: u64, len: u64) -> Result<Vec<u64>, PlmError> {
        self.check(offset, len)?;
        self.reads += len;
        Ok(self.words[offset as usize..(offset + len) as usize].to_vec())
    }

    /// Writes `data` starting at `offset`.
    ///
    /// # Errors
    ///
    /// [`PlmError::OutOfBounds`] if the range exceeds capacity.
    pub fn write(&mut self, offset: u64, data: &[u64]) -> Result<(), PlmError> {
        self.check(offset, data.len() as u64)?;
        self.writes += data.len() as u64;
        self.words[offset as usize..offset as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn check(&self, offset: u64, len: u64) -> Result<(), PlmError> {
        if offset + len > self.config.size_words {
            Err(PlmError::OutOfBounds {
                offset: offset + len,
                size: self.config.size_words,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plm() -> Plm {
        Plm::new(PlmConfig {
            size_words: 64,
            banks: 2,
        })
    }

    #[test]
    fn write_read_roundtrip() {
        let mut p = plm();
        p.write(10, &[1, 2, 3]).unwrap();
        assert_eq!(p.read(10, 3).unwrap(), vec![1, 2, 3]);
        assert_eq!(p.reads(), 3);
        assert_eq!(p.writes(), 3);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut p = plm();
        assert!(p.write(62, &[0, 0, 0]).is_err());
        assert!(p.read(64, 1).is_err());
        // Boundary-exact access is fine.
        assert!(p.write(61, &[0, 0, 0]).is_ok());
    }

    #[test]
    fn stream_latency_uses_banks() {
        let p = plm();
        assert_eq!(p.stream_latency(64), 32);
        assert_eq!(p.stream_latency(1), 1);
        assert_eq!(p.stream_latency(0), 0);
    }
}
