//! A 5x7 digit font used by the synthetic SVHN generator.

/// 5x7 bitmaps for digits 0-9, row-major, `#` = ink.
const GLYPHS: [[&str; 7]; 10] = [
    [
        " ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### ",
    ],
    [
        "  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### ",
    ],
    [
        " ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####",
    ],
    [
        " ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### ",
    ],
    [
        "   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # ",
    ],
    [
        "#####", "#    ", "#### ", "    #", "    #", "#   #", " ### ",
    ],
    [
        " ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### ",
    ],
    [
        "#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   ",
    ],
    [
        " ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### ",
    ],
    [
        " ### ", "#   #", "#   #", " ####", "    #", "    #", " ### ",
    ],
];

/// Glyph width in cells.
pub(crate) const GLYPH_W: usize = 5;
/// Glyph height in cells.
pub(crate) const GLYPH_H: usize = 7;

/// Whether cell `(col, row)` of `digit`'s glyph is inked.
///
/// # Panics
///
/// Panics if `digit > 9` or the cell is out of glyph bounds.
pub(crate) fn glyph_cell(digit: usize, col: usize, row: usize) -> bool {
    GLYPHS[digit][row].as_bytes()[col] == b'#'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_are_well_formed() {
        for (d, glyph) in GLYPHS.iter().enumerate() {
            for (row, line) in glyph.iter().enumerate() {
                assert_eq!(line.len(), GLYPH_W, "digit {d} row {row}");
            }
        }
    }

    #[test]
    fn glyphs_are_distinct() {
        for a in 0..10 {
            for b in (a + 1)..10 {
                let mut same = true;
                for row in 0..GLYPH_H {
                    for col in 0..GLYPH_W {
                        if glyph_cell(a, col, row) != glyph_cell(b, col, row) {
                            same = false;
                        }
                    }
                }
                assert!(!same, "digits {a} and {b} have identical glyphs");
            }
        }
    }

    #[test]
    fn every_glyph_has_ink() {
        for d in 0..10 {
            let ink = (0..GLYPH_H)
                .flat_map(|r| (0..GLYPH_W).map(move |c| (c, r)))
                .filter(|&(c, r)| glyph_cell(d, c, r))
                .count();
            assert!(ink >= 7, "digit {d} too sparse");
        }
    }
}
