//! Synthetic SVHN-like dataset generation.
//!
//! SVHN images are 32×32 crops of house numbers photographed from the
//! street: digits at varying scale and position, environmental noise,
//! shadows, distortion, and frequently distracting digits at the crop
//! edges. The generator reproduces those statistics procedurally so the
//! full ESP4ML flow (train → compile → run on the SoC) exercises a task of
//! comparable structure without redistributing the original data.

use crate::font::{glyph_cell, GLYPH_H, GLYPH_W};
use esp4ml_nn::{Dataset, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length (SVHN crops are 32×32).
pub const IMG_SIDE: usize = 32;
/// Pixels per image.
pub const IMG_PIXELS: usize = IMG_SIDE * IMG_SIDE;

/// One generated sample: a grey image in `[0, 1]` and its digit label.
#[derive(Debug, Clone, PartialEq)]
pub struct SvhnSample {
    /// Row-major 32×32 grey image, values in `[0, 1]`.
    pub image: Vec<f32>,
    /// The centred digit, 0-9.
    pub label: usize,
}

/// Procedural generator of SVHN-like samples.
///
/// Deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct SvhnGenerator {
    rng: StdRng,
}

impl SvhnGenerator {
    /// Creates a generator with a seed.
    pub fn new(seed: u64) -> Self {
        SvhnGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates one clean sample.
    pub fn sample(&mut self) -> SvhnSample {
        let label = self.rng.gen_range(0..10usize);
        let image = self.render(label);
        SvhnSample { image, label }
    }

    /// Generates `n` clean samples.
    pub fn samples(&mut self, n: usize) -> Vec<SvhnSample> {
        (0..n).map(|_| self.sample()).collect()
    }

    fn render(&mut self, digit: usize) -> Vec<f32> {
        let rng = &mut self.rng;
        // Background: base brightness with a linear gradient (shadow).
        let base: f32 = rng.gen_range(0.15..0.45);
        let gx: f32 = rng.gen_range(-0.15..0.15);
        let gy: f32 = rng.gen_range(-0.15..0.15);
        let mut img = vec![0.0f32; IMG_PIXELS];
        for y in 0..IMG_SIDE {
            for x in 0..IMG_SIDE {
                let fx = x as f32 / IMG_SIDE as f32 - 0.5;
                let fy = y as f32 / IMG_SIDE as f32 - 0.5;
                img[y * IMG_SIDE + x] = (base + gx * fx + gy * fy).clamp(0.0, 1.0);
            }
        }
        // Digit ink mostly brighter than background, occasionally darker.
        // (Real SVHN has both polarities in roughly equal measure; with
        // the reproduction's much smaller synthetic training set an 85/15
        // split keeps the task difficulty near the paper's 92% operating
        // point — documented in DESIGN.md.)
        let polarity: f32 = if rng.gen_bool(0.15) { -1.0 } else { 1.0 };
        let contrast: f32 = rng.gen_range(0.35..0.55) * polarity;
        // Geometry: scale, offset, shear.
        let scale: f32 = rng.gen_range(3.0..4.2);
        let ox: f32 = rng.gen_range(-3.0..3.0) + (IMG_SIDE as f32 - GLYPH_W as f32 * scale) / 2.0;
        let oy: f32 = rng.gen_range(-2.0..2.0) + (IMG_SIDE as f32 - GLYPH_H as f32 * scale) / 2.0;
        let shear: f32 = rng.gen_range(-0.15..0.15);
        Self::draw_glyph(&mut img, digit, scale, ox, oy, shear, contrast);
        // Distractor digit fragments at the crop edges (SVHN crops often
        // include neighbouring digits).
        if rng.gen_bool(0.4) {
            let d2 = rng.gen_range(0..10usize);
            let side = if rng.gen_bool(0.5) { -14.0 } else { 26.0 };
            let c2 = rng.gen_range(0.2..0.4) * polarity;
            Self::draw_glyph(&mut img, d2, scale * 0.9, side, oy, shear, c2);
        }
        // Mild blur (photographic softness): one 3x3 box pass.
        let img = Self::box_blur(&img);
        img.into_iter().map(|v| v.clamp(0.0, 1.0)).collect()
    }

    fn draw_glyph(
        img: &mut [f32],
        digit: usize,
        scale: f32,
        ox: f32,
        oy: f32,
        shear: f32,
        contrast: f32,
    ) {
        for y in 0..IMG_SIDE {
            for x in 0..IMG_SIDE {
                // Map pixel back into glyph space with shear.
                let gy = (y as f32 - oy) / scale;
                let gx = (x as f32 - ox) / scale - shear * gy;
                if gx >= 0.0 && gy >= 0.0 {
                    let (cx, cy) = (gx as usize, gy as usize);
                    if cx < GLYPH_W && cy < GLYPH_H && glyph_cell(digit, cx, cy) {
                        let p = &mut img[y * IMG_SIDE + x];
                        *p = (*p + contrast).clamp(0.0, 1.0);
                    }
                }
            }
        }
    }

    fn box_blur(img: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; IMG_PIXELS];
        for y in 0..IMG_SIDE {
            for x in 0..IMG_SIDE {
                let mut sum = 0.0;
                let mut n = 0.0;
                for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        let (nx, ny) = (x as i32 + dx, y as i32 + dy);
                        if nx >= 0
                            && ny >= 0
                            && (nx as usize) < IMG_SIDE
                            && (ny as usize) < IMG_SIDE
                        {
                            sum += img[ny as usize * IMG_SIDE + nx as usize];
                            n += 1.0;
                        }
                    }
                }
                out[y * IMG_SIDE + x] = sum / n;
            }
        }
        out
    }

    /// Adds Gaussian noise with standard deviation `stddev` (the denoiser's
    /// corrupted input, as the paper "added Gaussian noise to the SVHN
    /// dataset").
    pub fn add_noise(&mut self, image: &[f32], stddev: f32) -> Vec<f32> {
        image
            .iter()
            .map(|&v| (v + stddev * self.sample_normal()).clamp(0.0, 1.0))
            .collect()
    }

    fn sample_normal(&mut self) -> f32 {
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Darkens an image by `factor` (the paper "darkened the SVHN dataset"
    /// for the night-vision application).
    pub fn darken(image: &[f32], factor: f32) -> Vec<f32> {
        image.iter().map(|&v| v * factor).collect()
    }

    /// Builds a classification dataset: flattened images as inputs, one-hot
    /// labels as targets.
    pub fn classification_dataset(&mut self, n: usize) -> Dataset {
        let samples = self.samples(n);
        let mut xs = Vec::with_capacity(n * IMG_PIXELS);
        let mut labels = Vec::with_capacity(n);
        for s in &samples {
            xs.extend_from_slice(&s.image);
            labels.push(s.label);
        }
        Dataset::new(
            Matrix::from_vec(n, IMG_PIXELS, xs),
            Dataset::one_hot(&labels, 10),
        )
    }

    /// Builds a denoising dataset: noisy images as inputs, clean images as
    /// targets.
    pub fn denoising_dataset(&mut self, n: usize, stddev: f32) -> Dataset {
        let samples = self.samples(n);
        let mut noisy = Vec::with_capacity(n * IMG_PIXELS);
        let mut clean = Vec::with_capacity(n * IMG_PIXELS);
        for s in &samples {
            noisy.extend(self.add_noise(&s.image, stddev));
            clean.extend_from_slice(&s.image);
        }
        Dataset::new(
            Matrix::from_vec(n, IMG_PIXELS, noisy),
            Matrix::from_vec(n, IMG_PIXELS, clean),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_shape_and_range() {
        let mut g = SvhnGenerator::new(42);
        let s = g.sample();
        assert_eq!(s.image.len(), IMG_PIXELS);
        assert!(s.label < 10);
        assert!(s.image.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = SvhnGenerator::new(7).samples(3);
        let b = SvhnGenerator::new(7).samples(3);
        assert_eq!(a, b);
        let c = SvhnGenerator::new(8).samples(3);
        assert_ne!(a, c);
    }

    #[test]
    fn digit_changes_pixels() {
        // Two samples with different labels should differ substantially.
        let mut g = SvhnGenerator::new(3);
        let mut by_label: Vec<Option<Vec<f32>>> = vec![None; 10];
        for _ in 0..200 {
            let s = g.sample();
            if by_label[s.label].is_none() {
                by_label[s.label] = Some(s.image);
            }
        }
        let found = by_label.iter().filter(|x| x.is_some()).count();
        assert!(found >= 9, "only {found} labels seen in 200 samples");
    }

    #[test]
    fn noise_perturbs_but_stays_in_range() {
        let mut g = SvhnGenerator::new(1);
        let s = g.sample();
        let noisy = g.add_noise(&s.image, 0.1);
        assert!(noisy.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let diff: f32 = s
            .image
            .iter()
            .zip(&noisy)
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / IMG_PIXELS as f32;
        assert!(diff > 0.02, "noise too weak: {diff}");
    }

    #[test]
    fn darken_scales() {
        let img = vec![0.8f32; 4];
        assert_eq!(SvhnGenerator::darken(&img, 0.25), vec![0.2f32; 4]);
    }

    #[test]
    fn classification_dataset_aligned() {
        let mut g = SvhnGenerator::new(5);
        let d = g.classification_dataset(20);
        assert_eq!(d.len(), 20);
        assert_eq!(d.x.cols(), IMG_PIXELS);
        assert_eq!(d.y.cols(), 10);
        for r in 0..20 {
            let sum: f32 = d.y.row(r).iter().sum();
            assert_eq!(sum, 1.0);
        }
    }

    #[test]
    fn denoising_dataset_pairs_noisy_with_clean() {
        let mut g = SvhnGenerator::new(5);
        let d = g.denoising_dataset(5, 0.1);
        assert_eq!(d.x.cols(), IMG_PIXELS);
        assert_eq!(d.y.cols(), IMG_PIXELS);
        // Inputs differ from targets (noise was added).
        let diff: f32 =
            d.x.as_slice()
                .iter()
                .zip(d.y.as_slice())
                .map(|(a, b)| (a - b).abs())
                .sum();
        assert!(diff > 1.0);
    }
}
