//! The Night-Vision accelerator: the three kernels behind one ESP socket.

use crate::kernels::{equalize, histogram, noise_filter, LEVELS};
use crate::svhn::IMG_PIXELS;
use esp4ml_hls::{FixedSpec, PipelinedLoopHls, Resources};
use esp4ml_soc::{AcceleratorKernel, KernelOutput};

/// The Night-Vision accelerator kernel: noise filtering, histogram and
/// histogram equalization fused behind one accelerator tile, exactly as
/// the paper builds it from SystemC with Stratus HLS.
///
/// I/O values on the NoC are 16-bit fixed-point (`ap_fixed<16, 6>`)
/// normalized intensities, so the accelerator composes directly with the
/// HLS4ML classifier in a p2p pipeline.
#[derive(Debug, Clone)]
pub struct NightVisionKernel {
    name: String,
    pixels: u64,
    spec: FixedSpec,
}

impl NightVisionKernel {
    /// Creates a night-vision accelerator for 32×32 frames.
    pub fn new(name: &str) -> Self {
        Self::with_pixels(name, IMG_PIXELS as u64)
    }

    /// Creates a night-vision accelerator for an arbitrary (square) frame
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `pixels` is not a perfect square (the filter kernel is
    /// windowed over a square image).
    pub fn with_pixels(name: &str, pixels: u64) -> Self {
        let side = (pixels as f64).sqrt() as u64;
        assert_eq!(side * side, pixels, "frame must be square");
        NightVisionKernel {
            name: name.to_string(),
            pixels,
            spec: FixedSpec::HLS4ML_DEFAULT,
        }
    }

    /// The Stratus HLS models of the three loops: filter (3×3 window,
    /// II=6 — the 9-element median network shares the line-buffer BRAM
    /// ports, so Stratus schedules the window update conservatively),
    /// histogram (II=1), equalization (CDF scan over 256 levels plus the
    /// remap loop, II=1).
    fn hls_models(&self) -> [PipelinedLoopHls; 4] {
        let n = self.pixels;
        [
            // noise filter: 9-deep window sort network per pixel
            PipelinedLoopHls::new(n, 6, 12, 24, 0, self.spec),
            // histogram: one increment per pixel
            PipelinedLoopHls::new(n, 1, 3, 2, 0, self.spec),
            // CDF scan over the 256 bins + LUT build (one divide → 4 DSPs)
            PipelinedLoopHls::new(LEVELS as u64, 1, 6, 6, 4, self.spec),
            // remap: one table lookup per pixel
            PipelinedLoopHls::new(n, 1, 2, 2, 0, self.spec),
        ]
    }

    fn fixed_to_intensity(&self, raw: u64) -> u8 {
        let bits = self.spec.total_bits();
        let shift = 64 - bits;
        let signed = ((raw << shift) as i64) >> shift;
        let v = self.spec.dequantize(signed);
        (v.clamp(0.0, 1.0) * 255.0).round() as u8
    }

    fn intensity_to_fixed(&self, p: u8) -> u64 {
        let raw = self.spec.quantize(p as f64 / 255.0);
        (raw as u64) & ((1u64 << self.spec.total_bits()) - 1)
    }
}

impl AcceleratorKernel for NightVisionKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        // Every instance runs the same fixed pixel pipeline, so all
        // Night-Vision tiles are interchangeable under failover.
        "night_vision"
    }

    fn input_values(&self) -> u64 {
        self.pixels
    }

    fn output_values(&self) -> u64 {
        self.pixels
    }

    fn data_bits(&self) -> u32 {
        self.spec.total_bits()
    }

    fn compute(&mut self, input: &[u64]) -> KernelOutput {
        let pixels: Vec<u8> = input.iter().map(|&v| self.fixed_to_intensity(v)).collect();
        let filtered = noise_filter(&pixels);
        let bins = histogram(&filtered);
        let equalized = equalize(&filtered, &bins);
        let values = equalized
            .into_iter()
            .map(|p| self.intensity_to_fixed(p))
            .collect();
        // The three loops run as a dataflow chain on distinct pixel
        // streams; one frame's latency is the sum of loop latencies.
        let cycles = self.hls_models().iter().map(|m| m.latency()).sum();
        KernelOutput { values, cycles }
    }

    fn initiation_interval(&self) -> u64 {
        self.hls_models()
            .iter()
            .map(|m| m.initiation_interval())
            .max()
            .expect("non-empty")
    }

    fn resources(&self) -> Resources {
        let mut r: Resources = self.hls_models().iter().map(|m| m.resources()).sum();
        // Line buffers (filter) + histogram bins + LUT storage in BRAM,
        // plus the window shift registers, inter-kernel dataflow FIFOs and
        // the 9-element compare-exchange network that the per-loop model
        // does not capture.
        r.brams += 6;
        r += Resources::new(12_000, 14_000, 0, 0);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{night_vision, to_intensity};
    use crate::svhn::SvhnGenerator;

    #[test]
    fn io_sizes() {
        let k = NightVisionKernel::new("nv");
        assert_eq!(k.input_values(), 1024);
        assert_eq!(k.output_values(), 1024);
        assert_eq!(k.data_bits(), 16);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        NightVisionKernel::with_pixels("nv", 1000);
    }

    #[test]
    fn compute_matches_software_reference() {
        let mut gen = SvhnGenerator::new(9);
        let img = SvhnGenerator::darken(&gen.sample().image, 0.3);
        let spec = FixedSpec::HLS4ML_DEFAULT;
        let mut k = NightVisionKernel::new("nv");
        let wire: Vec<u64> = img
            .iter()
            .map(|&v| (spec.quantize(v as f64) as u64) & 0xffff)
            .collect();
        let out = k.compute(&wire);
        assert_eq!(out.values.len(), 1024);
        // Compare against the float reference at 8-bit intensity level.
        let reference = to_intensity(&night_vision(&img));
        let hw: Vec<u8> = out
            .values
            .iter()
            .map(|&v| {
                let signed = ((v << 48) as i64) >> 48;
                (spec.dequantize(signed).clamp(0.0, 1.0) * 255.0).round() as u8
            })
            .collect();
        let close = hw
            .iter()
            .zip(&reference)
            .filter(|(a, b)| (**a as i32 - **b as i32).abs() <= 2)
            .count();
        // Fixed-point quantization of [0,1] at 10 fractional bits resolves
        // ~4 intensity steps; allow small deviations but require bulk
        // agreement.
        assert!(close > 900, "only {close}/1024 pixels match the reference");
    }

    #[test]
    fn latency_scales_with_pixels() {
        let mut small = NightVisionKernel::with_pixels("s", 256);
        let mut large = NightVisionKernel::with_pixels("l", 1024);
        let o_small = small.compute(&vec![0u64; 256]);
        let o_large = large.compute(&vec![0u64; 1024]);
        assert!(o_large.cycles > o_small.cycles * 3);
        // Filter at II=6 plus two II=1 passes plus the CDF scan.
        assert!(o_large.cycles > 8 * 1024 && o_large.cycles < 9 * 1024);
    }

    #[test]
    fn resources_include_bram_buffers() {
        let k = NightVisionKernel::new("nv");
        let r = k.resources();
        assert!(r.brams >= 6);
        assert!(r.luts > 0);
        assert!(r.dsps >= 4);
    }
}
