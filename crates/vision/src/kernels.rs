//! Night-vision kernels: noise filtering, histogram, histogram
//! equalization.
//!
//! These are the software reference implementations of the three
//! computational kernels the paper designs in SystemC and synthesizes with
//! Stratus HLS (§VI, "Night-Vision application"). The accelerator version
//! in [`crate::accel`] runs exactly this code behaviourally and attaches
//! the Stratus-style HLS timing/resource model.
//!
//! All kernels operate on 8-bit intensities (`0..=255`); conversion from
//! the `[0, 1]` float images of the dataset is provided by
//! [`to_intensity`] / [`from_intensity`].

/// Number of intensity levels (8-bit pipeline).
pub const LEVELS: usize = 256;

/// Converts a `[0, 1]` float image to 8-bit intensities.
pub fn to_intensity(image: &[f32]) -> Vec<u8> {
    image
        .iter()
        .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8)
        .collect()
}

/// Converts 8-bit intensities back to a `[0, 1]` float image.
pub fn from_intensity(pixels: &[u8]) -> Vec<f32> {
    pixels.iter().map(|&p| p as f32 / 255.0).collect()
}

/// 3×3 median noise filter over a square image.
///
/// Border pixels use the available neighbourhood (no padding), matching
/// the windowed line-buffer implementation of the hardware kernel.
///
/// # Panics
///
/// Panics if `pixels.len()` is not a perfect square.
pub fn noise_filter(pixels: &[u8]) -> Vec<u8> {
    let side = (pixels.len() as f64).sqrt() as usize;
    assert_eq!(side * side, pixels.len(), "image must be square");
    let mut out = vec![0u8; pixels.len()];
    let mut window = [0u8; 9];
    for y in 0..side {
        for x in 0..side {
            let mut n = 0;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let (nx, ny) = (x as i32 + dx, y as i32 + dy);
                    if nx >= 0 && ny >= 0 && (nx as usize) < side && (ny as usize) < side {
                        window[n] = pixels[ny as usize * side + nx as usize];
                        n += 1;
                    }
                }
            }
            let w = &mut window[..n];
            w.sort_unstable();
            out[y * side + x] = w[n / 2];
        }
    }
    out
}

/// 256-bin intensity histogram.
pub fn histogram(pixels: &[u8]) -> [u32; LEVELS] {
    let mut bins = [0u32; LEVELS];
    for &p in pixels {
        bins[p as usize] += 1;
    }
    bins
}

/// Histogram equalization: remaps intensities through the normalized CDF,
/// stretching the dynamic range of under-exposed (night) images.
pub fn equalize(pixels: &[u8], bins: &[u32; LEVELS]) -> Vec<u8> {
    let total: u64 = bins.iter().map(|&b| b as u64).sum();
    if total == 0 {
        return pixels.to_vec();
    }
    // cdf_min is the first non-zero CDF value (standard formulation).
    let mut cdf = [0u64; LEVELS];
    let mut acc = 0u64;
    for (i, &b) in bins.iter().enumerate() {
        acc += b as u64;
        cdf[i] = acc;
    }
    let cdf_min = cdf.iter().copied().find(|&c| c > 0).unwrap_or(0);
    let denom = total.saturating_sub(cdf_min).max(1);
    let mut lut = [0u8; LEVELS];
    for i in 0..LEVELS {
        let num = cdf[i].saturating_sub(cdf_min) * 255;
        lut[i] = (num / denom).min(255) as u8;
    }
    pixels.iter().map(|&p| lut[p as usize]).collect()
}

/// The full Night-Vision pipeline on a `[0, 1]` float image: noise filter →
/// histogram → equalization, returning a `[0, 1]` float image.
pub fn night_vision(image: &[f32]) -> Vec<f32> {
    let pixels = to_intensity(image);
    let filtered = noise_filter(&pixels);
    let bins = histogram(&filtered);
    let equalized = equalize(&filtered, &bins);
    from_intensity(&equalized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intensity_roundtrip() {
        let img = vec![0.0f32, 0.5, 1.0, 0.25];
        let px = to_intensity(&img);
        assert_eq!(px, vec![0, 128, 255, 64]);
        let back = from_intensity(&px);
        for (a, b) in img.iter().zip(&back) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn median_removes_salt_noise() {
        // Uniform image with one hot pixel: the median kills it.
        let mut px = vec![100u8; 16];
        px[5] = 255;
        let out = noise_filter(&px);
        assert_eq!(out[5], 100);
    }

    #[test]
    fn median_preserves_uniform_regions() {
        let px = vec![42u8; 25];
        assert_eq!(noise_filter(&px), px);
    }

    #[test]
    fn histogram_counts() {
        let px = vec![0u8, 0, 1, 255];
        let bins = histogram(&px);
        assert_eq!(bins[0], 2);
        assert_eq!(bins[1], 1);
        assert_eq!(bins[255], 1);
        assert_eq!(bins.iter().sum::<u32>(), 4);
    }

    #[test]
    fn equalize_stretches_dark_image() {
        // All intensities packed into [20, 60]: equalization must spread
        // them over the full range.
        let px: Vec<u8> = (0..256).map(|i| 20 + (i % 41) as u8).collect();
        let bins = histogram(&px);
        let eq = equalize(&px, &bins);
        let max = *eq.iter().max().unwrap();
        let min = *eq.iter().min().unwrap();
        assert_eq!(min, 0);
        assert!(max >= 250, "max {max}");
    }

    #[test]
    fn equalize_monotone() {
        // Equalization must never invert intensity ordering.
        let px: Vec<u8> = (0..=255).collect();
        let bins = histogram(&px);
        let eq = equalize(&px, &bins);
        for w in eq.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn equalize_empty_histogram_is_identity() {
        let px = vec![7u8; 4];
        let bins = [0u32; LEVELS];
        assert_eq!(equalize(&px, &bins), px);
    }

    #[test]
    fn night_vision_brightens_dark_images() {
        let dark: Vec<f32> = (0..1024)
            .map(|i| 0.05 + 0.1 * ((i % 7) as f32 / 7.0))
            .collect();
        let out = night_vision(&dark);
        let mean_in: f32 = dark.iter().sum::<f32>() / 1024.0;
        let mean_out: f32 = out.iter().sum::<f32>() / 1024.0;
        assert!(mean_out > mean_in * 2.0, "{mean_out} vs {mean_in}");
    }

    proptest! {
        /// Equalization output is always within range and total pixel count
        /// is conserved by the histogram.
        #[test]
        fn histogram_conserves_pixels(px in proptest::collection::vec(0u8..=255, 64)) {
            let bins = histogram(&px);
            prop_assert_eq!(bins.iter().map(|&b| b as usize).sum::<usize>(), px.len());
        }

        /// The median filter never invents intensities outside the input's
        /// min..=max range.
        #[test]
        fn median_output_bounded(px in proptest::collection::vec(0u8..=255, 16)) {
            let out = noise_filter(&px);
            let lo = *px.iter().min().unwrap();
            let hi = *px.iter().max().unwrap();
            prop_assert!(out.iter().all(|&p| p >= lo && p <= hi));
        }
    }
}
