//! Computer-vision substrate: night-vision kernels and a synthetic
//! SVHN-like dataset.
//!
//! The paper's evaluation runs two kinds of vision workloads:
//!
//! * A **Night-Vision** application of three kernels — noise filtering,
//!   histogram, and histogram equalization — designed in SystemC and
//!   synthesized with Stratus HLS, used as a pre-processing step before
//!   the MLP classifier on *darkened* street-view images.
//! * Two ML applications (digit classification, image denoising) trained
//!   on the **Street View House Numbers (SVHN)** dataset.
//!
//! SVHN itself is not redistributable here, so [`svhn::SvhnGenerator`]
//! synthesizes SVHN-like 32×32 grey images procedurally: digits with
//! per-sample distortion, clutter and shadows, plus noisy and darkened
//! variants for the denoiser and night-vision applications (the
//! substitution is documented in `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use esp4ml_vision::svhn::SvhnGenerator;
//! use esp4ml_vision::kernels::night_vision;
//!
//! let mut gen = SvhnGenerator::new(1);
//! let sample = gen.sample();
//! let dark = SvhnGenerator::darken(&sample.image, 0.25);
//! let restored = night_vision(&dark);
//! // Equalization restores contrast lost by darkening.
//! let spread = |img: &[f32]| {
//!     let max = img.iter().cloned().fold(0.0f32, f32::max);
//!     let min = img.iter().cloned().fold(1.0f32, f32::min);
//!     max - min
//! };
//! assert!(spread(&restored) > spread(&dark));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
mod font;
pub mod kernels;
pub mod svhn;

pub use accel::NightVisionKernel;
pub use svhn::{SvhnGenerator, SvhnSample};
