//! `esp_alloc` / `esp_run` / `esp_cleanup`: the runtime engine.

use crate::{Dataflow, DeviceInfo, DeviceRegistry, ExecMode, RunMetrics, RuntimeError};
use esp4ml_check::{codes, Diagnostic};
use esp4ml_mem::{ContigAlloc, ContigHandle};
use esp4ml_noc::Coord;
use esp4ml_soc::{AccelConfig, Soc, SocSnapshot};
use esp4ml_trace::{CounterRegistry, TileCoord, TraceEvent, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Driver/syscall overhead charged per accelerator invocation, in SoC
/// cycles: the `ioctl` path through the Linux kernel on the Ariane core.
const DEFAULT_IOCTL_CYCLES: u64 = 300;

/// Default per-invocation watchdog deadline, in cycles: how long the
/// driver waits for a completion interrupt before declaring the
/// invocation lost. Override per run with [`RunSpec::watchdog_cycles`].
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 500_000_000;

/// What the runtime does when an invocation's watchdog expires: bounded
/// retry with exponential backoff, then (optionally) remap the stage
/// instance to a spare device of the same kind.
///
/// Without a policy ([`RunSpec::recover`] never called) a watchdog expiry
/// is fatal, exactly as before the recovery layer existed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Re-issues of one invocation after watchdog expiries before the
    /// runtime gives up on the device.
    pub max_retries: u32,
    /// Backoff burned before the first retry, in cycles (a wedged device
    /// may need its reset to propagate; immediate re-issue also risks
    /// re-triggering a transient fault window).
    pub backoff_cycles: u64,
    /// Multiplier applied to the backoff on each subsequent retry
    /// (exponential backoff; 1 = constant).
    pub backoff_factor: u64,
    /// After retries are exhausted, remap the stage instance to an idle
    /// spare device of the same kind and I/O shape.
    pub failover: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 2,
            backoff_cycles: 1_000,
            backoff_factor: 2,
            failover: true,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff for retry `attempt` (1-based): `backoff_cycles *
    /// backoff_factor^(attempt-1)`, saturating.
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        self.backoff_cycles.saturating_mul(
            self.backoff_factor
                .saturating_pow(attempt.saturating_sub(1)),
        )
    }
}

/// Book-keeping for one recovering run.
#[derive(Debug)]
struct RecoveryCtx {
    /// Per-invocation watchdog deadline in cycles.
    watchdog: u64,
    /// Recovery policy; `None` = watchdog expiry is fatal.
    policy: Option<RecoveryPolicy>,
    /// Cycle at which the run started (timeouts report measured elapsed
    /// cycles, not the configured budget).
    start_cycle: u64,
    /// Invocations re-issued after a watchdog expiry.
    retries: u64,
    /// Stage instances remapped to a spare.
    failovers: u64,
    /// Devices abandoned by failover — never picked as spares again.
    banned: HashSet<Coord>,
}

/// A typed description of one `esp_run` invocation: the dataflow plus the
/// run options that used to be scattered across runtime setters
/// ([`EspRuntime::set_ioctl_cycles`], [`EspRuntime::set_tracer`]).
///
/// ```
/// use esp4ml_runtime::{Dataflow, ExecMode, RunSpec};
///
/// let df = Dataflow::linear(&[&["classifier"]]);
/// let spec = RunSpec::new(&df).mode(ExecMode::P2p).ioctl_cycles(500);
/// assert_eq!(spec.exec_mode(), ExecMode::P2p);
/// ```
#[derive(Debug, Clone)]
pub struct RunSpec<'a> {
    dataflow: &'a Dataflow,
    mode: ExecMode,
    ioctl_cycles: Option<u64>,
    tracer: Option<Tracer>,
    watchdog_cycles: Option<u64>,
    recovery: Option<RecoveryPolicy>,
}

impl<'a> RunSpec<'a> {
    /// Starts a run specification for `dataflow` in [`ExecMode::Base`].
    pub fn new(dataflow: &'a Dataflow) -> Self {
        RunSpec {
            dataflow,
            mode: ExecMode::Base,
            ioctl_cycles: None,
            tracer: None,
            watchdog_cycles: None,
            recovery: None,
        }
    }

    /// Selects the execution mode (Fig. 7's `base` / `pipe` / `p2p`).
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the per-invocation driver overhead for this run only.
    pub fn ioctl_cycles(mut self, cycles: u64) -> Self {
        self.ioctl_cycles = Some(cycles);
        self
    }

    /// Installs `tracer` on the runtime and SoC before the run.
    pub fn trace(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Overrides the per-invocation watchdog deadline for this run
    /// (defaults to [`DEFAULT_WATCHDOG_CYCLES`]). The watchdog replaces
    /// the old global run timeout: every invocation must raise its
    /// completion interrupt within `cycles` of being issued.
    pub fn watchdog_cycles(mut self, cycles: u64) -> Self {
        self.watchdog_cycles = Some(cycles);
        self
    }

    /// Enables fault recovery for this run: on a watchdog expiry the
    /// runtime resets and retries the invocation per `policy`, then fails
    /// over to a spare device of the same kind if the policy allows it.
    pub fn recover(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// The dataflow this spec runs.
    pub fn dataflow(&self) -> &'a Dataflow {
        self.dataflow
    }

    /// The selected execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }
}

/// The buffers backing one application dataflow (returned by
/// [`EspRuntime::prepare`], the `esp_alloc` step).
///
/// Region 0 holds the input frames, partitioned by first-stage instance;
/// region `i` holds the output of stage `i-1` (used only by the
/// memory-communication modes); the last region holds the application
/// output, partitioned by last-stage instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppBuffers {
    /// The underlying contiguous allocation.
    pub handle: ContigHandle,
    /// Word offset of each region within the buffer (length `depth + 1`).
    pub region_offsets: Vec<u64>,
    /// Frames the buffers were sized for.
    pub frames: u64,
    /// Input words per frame, per stage (length `depth`).
    pub stage_in_words: Vec<u64>,
    /// Output words per frame of the final stage.
    pub out_words: u64,
    /// Instance count of the first stage (input partitioning).
    pub first_width: u64,
    /// Instance count of the last stage (output partitioning).
    pub last_width: u64,
    /// Input values per frame of the first stage.
    pub in_values: u64,
    /// Output values per frame of the last stage.
    pub out_values: u64,
    /// Data width in bits of the first stage's input.
    pub in_bits: u32,
    /// Data width in bits of the last stage's output.
    pub out_bits: u32,
}

impl AppBuffers {
    /// Frames assigned to instance `j` of a stage with `k` instances.
    pub fn frames_for_instance(frames: u64, k: u64, j: u64) -> u64 {
        (frames + k - 1 - j) / k
    }

    /// Words per instance sub-region for a stage of width `k` with
    /// `words`-word frames.
    fn sub_region_words(frames: u64, k: u64, words: u64) -> u64 {
        frames.div_ceil(k) * words
    }

    /// Word address of input frame `f` (within the SoC address space).
    pub fn input_frame_addr(&self, f: u64) -> u64 {
        let k = self.first_width;
        let (j, local) = (f % k, f / k);
        let sub = Self::sub_region_words(self.frames, k, self.stage_in_words[0]);
        self.handle.base + self.region_offsets[0] + j * sub + local * self.stage_in_words[0]
    }

    /// Word address of output frame `f`.
    pub fn output_frame_addr(&self, f: u64) -> u64 {
        let k = self.last_width;
        let (j, local) = (f % k, f / k);
        let sub = Self::sub_region_words(self.frames, k, self.out_words);
        self.handle.base
            + self.region_offsets[self.region_offsets.len() - 1]
            + j * sub
            + local * self.out_words
    }
}

/// The complete serializable state of an [`EspRuntime`]: the machine
/// snapshot plus the software state layered on top of it.
///
/// Captured alongside the [`SocSnapshot`]:
///
/// * `alloc` — the contiguous allocator, so a forked runtime can keep
///   allocating without colliding with buffers the prefix carved out.
/// * `ioctl_cycles` — the persistent driver-overhead setting
///   ([`EspRuntime::set_ioctl_cycles`]).
/// * `counters` — the cross-run counter accumulation
///   ([`EspRuntime::counters`]); runs executed after a restore add onto
///   exactly the totals the snapshot recorded, so forked and cold-start
///   counter dumps match byte for byte.
///
/// Excluded:
///
/// * the device registry — probed deterministically from the SoC
///   floorplan, which [`Soc::restore`] verifies is unchanged;
/// * the tracer — a live host-side handle, like in [`SocSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeSnapshot {
    /// The full machine state underneath the runtime.
    pub soc: SocSnapshot,
    /// The contiguous-buffer allocator (live handles and free list).
    pub alloc: ContigAlloc,
    /// The persistent per-invocation driver overhead, in cycles.
    pub ioctl_cycles: u64,
    /// Counters accumulated across every run so far.
    pub counters: CounterRegistry,
}

/// Per-instance placement computed from the dataflow and the registry.
#[derive(Debug, Clone)]
struct Plan {
    /// `[stage][instance]` device info.
    stages: Vec<Vec<DeviceInfo>>,
}

impl Plan {
    fn resolve(dataflow: &Dataflow, registry: &DeviceRegistry) -> Result<Plan, RuntimeError> {
        dataflow.validate().map_err(RuntimeError::BadDataflow)?;
        let mut stages = Vec::with_capacity(dataflow.depth());
        for spec in &dataflow.stages {
            let mut instances = Vec::with_capacity(spec.width());
            for name in &spec.devices {
                let info = registry
                    .lookup(name)
                    .ok_or_else(|| RuntimeError::UnknownDevice { name: name.clone() })?;
                instances.push(info);
            }
            // All instances of a stage must be interchangeable.
            let first = &instances[0];
            for other in &instances[1..] {
                if other.input_values != first.input_values
                    || other.output_values != first.output_values
                    || other.data_bits != first.data_bits
                {
                    return Err(RuntimeError::BadDataflow(Diagnostic::error(
                        codes::STAGE_WIDTHS,
                        format!("device {}", other.name),
                        format!(
                            "stage instances {} and {} have different I/O shapes",
                            first.name, other.name
                        ),
                    )));
                }
            }
            stages.push(instances);
        }
        for w in stages.windows(2) {
            let (a, b) = (&w[0][0], &w[1][0]);
            if a.output_values != b.input_values {
                return Err(RuntimeError::BadDataflow(Diagnostic::error(
                    codes::STAGE_WIDTHS,
                    format!("device {}", b.name),
                    format!(
                        "stage output {} values does not feed stage input {} values",
                        a.output_values, b.input_values
                    ),
                )));
            }
        }
        Ok(Plan { stages })
    }
}

/// The ESP runtime: owns the simulated SoC, the contiguous allocator and
/// the device registry, and implements the `esp_*` API of the paper's
/// generated applications (Fig. 5).
#[derive(Debug)]
pub struct EspRuntime {
    soc: Soc,
    alloc: ContigAlloc,
    registry: DeviceRegistry,
    ioctl_cycles: u64,
    tracer: Tracer,
    counters: CounterRegistry,
}

impl EspRuntime {
    /// Boots the runtime on an SoC: probes all devices and carves the
    /// contiguous-allocation region out of DRAM (the driver's reserved
    /// memory pool).
    ///
    /// # Errors
    ///
    /// Propagates SoC query failures.
    pub fn new(soc: Soc) -> Result<Self, RuntimeError> {
        let registry = DeviceRegistry::probe(&soc);
        // Reserve the upper half of DRAM word space for contig buffers.
        let alloc = ContigAlloc::new(0, 16 * 1024 * 1024);
        Ok(EspRuntime {
            soc,
            alloc,
            registry,
            ioctl_cycles: DEFAULT_IOCTL_CYCLES,
            tracer: Tracer::disabled(),
            counters: CounterRegistry::new(),
        })
    }

    /// Installs a trace sink handle on the runtime and the whole SoC
    /// underneath it (mesh, accelerator and memory tiles).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.soc.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Named counters accumulated across every [`EspRuntime::run`]:
    /// the same deltas that each run's [`RunMetrics`] reports, summed
    /// behind the generic snapshot/diff API.
    pub fn counters(&self) -> &CounterRegistry {
        &self.counters
    }

    /// The device registry.
    pub fn registry(&self) -> &DeviceRegistry {
        &self.registry
    }

    /// The underlying SoC (e.g. for resource and power reporting).
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// Mutable access to the underlying SoC.
    pub fn soc_mut(&mut self) -> &mut Soc {
        &mut self.soc
    }

    /// Overrides the per-invocation driver overhead in cycles.
    pub fn set_ioctl_cycles(&mut self, cycles: u64) {
        self.ioctl_cycles = cycles;
    }

    /// Hardware execution counters of a device (the ESP monitors API):
    /// busy/load/compute/store cycles, frames, DMA and p2p word counts.
    pub fn device_stats(&self, name: &str) -> Option<esp4ml_soc::AccelStats> {
        let info = self.registry.lookup(name)?;
        self.soc.accel(info.coord).ok().map(|t| *t.stats())
    }

    /// Captures the complete serializable runtime state — machine
    /// snapshot, allocator, driver settings and accumulated counters —
    /// as a [`RuntimeSnapshot`] that [`EspRuntime::restore`] resumes
    /// byte-identically.
    pub fn snapshot(&self) -> RuntimeSnapshot {
        RuntimeSnapshot {
            soc: self.soc.snapshot(),
            alloc: self.alloc.clone(),
            ioctl_cycles: self.ioctl_cycles,
            counters: self.counters.clone(),
        }
    }

    /// Restores a state captured by [`EspRuntime::snapshot`], replacing
    /// the SoC state, allocator, driver settings and counters wholesale.
    /// The runtime must sit on the same floorplan the snapshot was taken
    /// on; the device registry is not touched (it is derived from that
    /// floorplan). The tracer is left as-is.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Soc`] with
    /// [`SocError::SnapshotMismatch`](esp4ml_soc::SocError::SnapshotMismatch)
    /// when the snapshot's floorplan does not match; the runtime is
    /// unmodified in that case.
    pub fn restore(&mut self, snapshot: &RuntimeSnapshot) -> Result<(), RuntimeError> {
        self.soc.restore(&snapshot.soc)?;
        self.alloc = snapshot.alloc.clone();
        self.ioctl_cycles = snapshot.ioctl_cycles;
        self.counters = snapshot.counters.clone();
        Ok(())
    }

    /// Allocates a raw contiguous buffer (`esp_alloc`).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Alloc`] when the pool is exhausted.
    pub fn esp_alloc(&mut self, words: u64) -> Result<ContigHandle, RuntimeError> {
        Ok(self.alloc.alloc(words)?)
    }

    /// Frees every allocation (`esp_cleanup`).
    pub fn esp_cleanup(&mut self) {
        self.alloc.free_all();
    }

    /// Allocates and maps the buffers for a dataflow over `frames` frames,
    /// installing each device's page table.
    ///
    /// # Errors
    ///
    /// Unknown devices, invalid dataflows, exhausted memory.
    pub fn prepare(
        &mut self,
        dataflow: &Dataflow,
        frames: u64,
    ) -> Result<AppBuffers, RuntimeError> {
        let plan = Plan::resolve(dataflow, &self.registry)?;
        let depth = plan.stages.len();
        let mut region_offsets = Vec::with_capacity(depth + 1);
        let mut stage_in_words = Vec::with_capacity(depth);
        let mut cursor = 0u64;
        for (s, stage) in plan.stages.iter().enumerate() {
            let info = &stage[0];
            let words = info.input_words();
            stage_in_words.push(words);
            region_offsets.push(cursor);
            let k = if s == 0 { stage.len() as u64 } else { 1 };
            cursor += AppBuffers::sub_region_words(frames, k, words) * k.max(1);
            if s == 0 && stage.len() as u64 > 1 {
                // Partitioned region already accounts for all instances.
            }
        }
        let last = &plan.stages[depth - 1][0];
        let out_words = last.output_words();
        region_offsets.push(cursor);
        let k_last = plan.stages[depth - 1].len() as u64;
        cursor += AppBuffers::sub_region_words(frames, k_last, out_words) * k_last;

        let handle = self.esp_alloc(cursor.max(1))?;
        // Map the whole buffer into every participating accelerator's VA
        // space (identity offsets within the buffer).
        for stage in &plan.stages {
            for info in stage {
                self.soc
                    .map_contiguous(info.coord, 0, handle.base + handle.len)?;
            }
        }
        Ok(AppBuffers {
            handle,
            region_offsets,
            frames,
            stage_in_words,
            out_words,
            first_width: plan.stages[0].len() as u64,
            last_width: k_last,
            in_values: plan.stages[0][0].input_values,
            out_values: last.output_values,
            in_bits: plan.stages[0][0].data_bits,
            out_bits: last.data_bits,
        })
    }

    /// Writes input frame `f` (values) into the prepared buffers.
    ///
    /// # Errors
    ///
    /// Out-of-range addresses.
    pub fn write_frame(
        &mut self,
        buf: &AppBuffers,
        f: u64,
        values: &[u64],
    ) -> Result<(), RuntimeError> {
        let addr = buf.input_frame_addr(f);
        self.soc.dram_write_values(addr, values, buf.in_bits)?;
        Ok(())
    }

    /// Reads output frame `f` (values) from the prepared buffers.
    ///
    /// # Errors
    ///
    /// Out-of-range addresses.
    pub fn read_frame(&self, buf: &AppBuffers, f: u64) -> Result<Vec<u64>, RuntimeError> {
        let addr = buf.output_frame_addr(f);
        Ok(self
            .soc
            .dram_read_values(addr, buf.out_values as usize, buf.out_bits)?)
    }

    /// Executes a [`RunSpec`] over the prepared buffers — the typed
    /// replacement for the removed `esp_run` shim. A spec-level ioctl
    /// override applies to this run only; a spec-level tracer is
    /// installed on the runtime and SoC as [`EspRuntime::set_tracer`]
    /// would.
    ///
    /// # Errors
    ///
    /// Unknown devices, invalid dataflows, or a simulation timeout.
    pub fn run(
        &mut self,
        spec: &RunSpec<'_>,
        buf: &AppBuffers,
    ) -> Result<RunMetrics, RuntimeError> {
        if let Some(tracer) = &spec.tracer {
            self.set_tracer(tracer.clone());
        }
        let saved_ioctl = self.ioctl_cycles;
        if let Some(cycles) = spec.ioctl_cycles {
            self.ioctl_cycles = cycles;
        }
        let watchdog = spec.watchdog_cycles.unwrap_or(DEFAULT_WATCHDOG_CYCLES);
        let result = self.run_spec_inner(spec.dataflow, buf, spec.mode, watchdog, spec.recovery);
        self.ioctl_cycles = saved_ioctl;
        result
    }

    fn run_spec_inner(
        &mut self,
        dataflow: &Dataflow,
        buf: &AppBuffers,
        mode: ExecMode,
        watchdog: u64,
        policy: Option<RecoveryPolicy>,
    ) -> Result<RunMetrics, RuntimeError> {
        // The plan is mutable: failover remaps stage instances in place,
        // and the remap is sticky for the rest of the run.
        let mut plan = Plan::resolve(dataflow, &self.registry)?;
        let start_cycle = self.soc.cycle();
        let stats0 = self.soc.stats();
        let hops0 = self.soc.noc_stats().total_flit_hops();
        let faults0 = self.soc.faults_injected();
        self.soc.take_irqs(); // discard stale interrupts
        let mut ctx = RecoveryCtx {
            watchdog,
            policy,
            start_cycle,
            retries: 0,
            failovers: 0,
            banned: HashSet::new(),
        };

        let invocations = match mode {
            ExecMode::Base => self.run_base(&mut plan, buf, &mut ctx)?,
            ExecMode::Pipe => self.run_pipe(&mut plan, buf, &mut ctx)?,
            ExecMode::P2p => self.run_p2p(&plan, buf, &mut ctx)?,
        };

        let stats1 = self.soc.stats();
        let metrics = RunMetrics {
            frames: buf.frames,
            cycles: self.soc.cycle() - start_cycle,
            dram_reads: stats1.dram_word_reads - stats0.dram_word_reads,
            dram_writes: stats1.dram_word_writes - stats0.dram_word_writes,
            dram_accesses: (stats1.dram_word_reads + stats1.dram_word_writes)
                - (stats0.dram_word_reads + stats0.dram_word_writes),
            noc_flit_hops: self.soc.noc_stats().total_flit_hops() - hops0,
            invocations,
            clock_hz: self.soc.clock_hz(),
            faults_injected: self.soc.faults_injected() - faults0,
            retries: ctx.retries,
            failovers: ctx.failovers,
        };
        self.counters.add("runtime.frames", metrics.frames);
        self.counters
            .add("runtime.invocations", metrics.invocations);
        self.counters.add("soc.cycles", metrics.cycles);
        self.counters.add("soc.dram_reads", metrics.dram_reads);
        self.counters.add("soc.dram_writes", metrics.dram_writes);
        self.counters.add("noc.flit_hops", metrics.noc_flit_hops);
        // Recovery counters only exist once something goes wrong, keeping
        // healthy-run counter dumps byte-identical to the pre-fault era.
        if metrics.faults_injected > 0 {
            self.counters
                .add("soc.faults_injected", metrics.faults_injected);
        }
        if metrics.retries > 0 {
            self.counters.add("runtime.retries", metrics.retries);
        }
        if metrics.failovers > 0 {
            self.counters.add("runtime.failovers", metrics.failovers);
        }
        Ok(metrics)
    }

    /// Builds the timeout error, reporting how long the run actually ran
    /// (not the configured budget) plus a deadlock diagnosis if the
    /// sanitizer can name one.
    fn timeout_err(&self, ctx: &RecoveryCtx) -> RuntimeError {
        RuntimeError::Timeout {
            cycles: self.soc.cycle() - ctx.start_cycle,
            diagnosis: self.soc.diagnose_deadlock().map(|d| d.to_string()),
        }
    }

    /// Resets a wedged device and burns the policy's backoff before the
    /// caller re-issues the invocation (`attempt` is 1-based).
    fn retry_backoff(
        &mut self,
        coord: Coord,
        name: &str,
        attempt: u32,
        policy: &RecoveryPolicy,
        ctx: &mut RecoveryCtx,
    ) -> Result<(), RuntimeError> {
        let proc = self.soc.primary_proc();
        let backoff = policy.backoff_for(attempt);
        let device = name.to_string();
        self.tracer
            .emit(self.soc.cycle(), TileCoord::new(proc.x, proc.y), || {
                TraceEvent::RetryScheduled {
                    device,
                    attempt,
                    backoff,
                }
            });
        self.soc.reset_accel(coord)?;
        if backoff > 0 {
            self.soc.run_cycles(backoff);
        }
        ctx.retries += 1;
        Ok(())
    }

    /// Finds an idle spare for `failed`: same kind and I/O shape, not part
    /// of the plan, not previously abandoned.
    fn find_spare(
        &self,
        plan: &Plan,
        failed: &DeviceInfo,
        ctx: &RecoveryCtx,
    ) -> Option<DeviceInfo> {
        if failed.kind.is_empty() {
            return None; // hand-registered record predating kinds
        }
        let in_plan: HashSet<Coord> = plan
            .stages
            .iter()
            .flat_map(|st| st.iter().map(|d| d.coord))
            .collect();
        self.registry.devices().into_iter().find(|d| {
            d.kind == failed.kind
                && d.input_values == failed.input_values
                && d.output_values == failed.output_values
                && d.data_bits == failed.data_bits
                && !in_plan.contains(&d.coord)
                && !ctx.banned.contains(&d.coord)
        })
    }

    /// Remaps stage `s`, instance `j` to a spare device. Returns `false`
    /// when no spare exists (the caller then gives up).
    fn failover(
        &mut self,
        plan: &mut Plan,
        s: usize,
        j: usize,
        buf: &AppBuffers,
        ctx: &mut RecoveryCtx,
    ) -> Result<bool, RuntimeError> {
        let failed = plan.stages[s][j].clone();
        let Some(spare) = self.find_spare(plan, &failed, ctx) else {
            return Ok(false);
        };
        // `prepare` only mapped the planned devices; the spare needs the
        // application buffer in its VA space before it can DMA.
        self.soc
            .map_contiguous(spare.coord, 0, buf.handle.base + buf.handle.len)?;
        ctx.banned.insert(failed.coord);
        let proc = self.soc.primary_proc();
        let (from, to) = (failed.name.clone(), spare.name.clone());
        self.tracer
            .emit(self.soc.cycle(), TileCoord::new(proc.x, proc.y), || {
                TraceEvent::FailedOver { from, to }
            });
        plan.stages[s][j] = spare;
        ctx.failovers += 1;
        Ok(true)
    }

    /// Source address of stage `s`, instance `j`, frame `f` in DMA modes.
    fn dma_src(&self, buf: &AppBuffers, _plan: &Plan, s: usize, f: u64) -> u64 {
        if s == 0 {
            buf.input_frame_addr(f)
        } else {
            buf.handle.base + buf.region_offsets[s] + f * buf.stage_in_words[s]
        }
    }

    /// Destination address of stage `s`, frame `f` in DMA modes.
    fn dma_dst(&self, buf: &AppBuffers, plan: &Plan, s: usize, f: u64) -> u64 {
        if s == plan.stages.len() - 1 {
            buf.output_frame_addr(f)
        } else {
            let words = buf.stage_in_words[s + 1];
            buf.handle.base + buf.region_offsets[s + 1] + f * words
        }
    }

    /// Issues one single-frame DMA invocation (configure + start) for
    /// global frame `frame`, charging the ioctl overhead.
    fn issue_dma_invocation(
        &mut self,
        coord: Coord,
        src: u64,
        dst: u64,
        frame: u64,
    ) -> Result<(), RuntimeError> {
        let cfg = AccelConfig::dma_to_dma(src, dst, 1).with_frame_ids(frame, 1);
        self.soc.configure_accel(coord, &cfg)?;
        self.soc.start_accel(coord)?;
        self.ioctl(coord);
        Ok(())
    }

    /// Charges the per-invocation driver overhead, tracing the ioctl as
    /// issued from the primary processor tile.
    fn ioctl(&mut self, coord: Coord) {
        let proc = self.soc.primary_proc();
        self.tracer
            .emit(self.soc.cycle(), TileCoord::new(proc.x, proc.y), || {
                let device = self
                    .soc
                    .accel(coord)
                    .map(|t| t.kernel_name().to_string())
                    .unwrap_or_default();
                TraceEvent::IoctlIssue { device }
            });
        self.soc.run_cycles(self.ioctl_cycles);
    }

    fn run_base(
        &mut self,
        plan: &mut Plan,
        buf: &AppBuffers,
        ctx: &mut RecoveryCtx,
    ) -> Result<u64, RuntimeError> {
        let mut invocations = 0u64;
        for f in 0..buf.frames {
            for s in 0..plan.stages.len() {
                let j = (f % plan.stages[s].len() as u64) as usize;
                let mut attempt: u32 = 0;
                loop {
                    let coord = plan.stages[s][j].coord;
                    let src = self.dma_src(buf, plan, s, f);
                    let dst = self.dma_dst(buf, plan, s, f);
                    self.issue_dma_invocation(coord, src, dst, f)?;
                    invocations += 1;
                    if self.wait_for_irq(coord, ctx.watchdog) {
                        break;
                    }
                    // Watchdog expired: retry with backoff, then fail over.
                    let Some(policy) = ctx.policy else {
                        return Err(self.timeout_err(ctx));
                    };
                    attempt += 1;
                    if attempt <= policy.max_retries {
                        let info = plan.stages[s][j].clone();
                        self.retry_backoff(coord, &info.name, attempt, &policy, ctx)?;
                        continue;
                    }
                    // Quiesce the abandoned device so it stops holding NoC
                    // or PLM resources, then try a spare.
                    self.soc.reset_accel(coord)?;
                    if policy.failover && self.failover(plan, s, j, buf, ctx)? {
                        attempt = 0;
                        continue;
                    }
                    return Err(self.timeout_err(ctx));
                }
            }
        }
        Ok(invocations)
    }

    fn run_pipe(
        &mut self,
        plan: &mut Plan,
        buf: &AppBuffers,
        ctx: &mut RecoveryCtx,
    ) -> Result<u64, RuntimeError> {
        let depth = plan.stages.len();
        let frames = buf.frames;
        // Per stage: which frames have completed.
        let mut done: Vec<Vec<bool>> = (0..depth).map(|_| vec![false; frames as usize]).collect();
        // Per instance: busy frame (if any), next local frame index, and
        // the watchdog state of the in-flight invocation.
        #[derive(Clone, Copy)]
        struct Inst {
            busy_frame: Option<u64>,
            next_local: u64,
            issued_at: u64,
            attempts: u32,
        }
        let mut insts: Vec<Vec<Inst>> = plan
            .stages
            .iter()
            .map(|st| {
                vec![
                    Inst {
                        busy_frame: None,
                        next_local: 0,
                        issued_at: 0,
                        attempts: 0,
                    };
                    st.len()
                ]
            })
            .collect();
        let mut invocations = 0u64;
        loop {
            // Retire finished invocations. Coordinates are looked up in
            // the (possibly failed-over) live plan, not a frozen map.
            for coord in self.soc.take_irqs() {
                for (s, stage) in plan.stages.iter().enumerate() {
                    for (j, info) in stage.iter().enumerate() {
                        if info.coord == coord {
                            if let Some(f) = insts[s][j].busy_frame.take() {
                                done[s][f as usize] = true;
                            }
                        }
                    }
                }
            }
            if done[depth - 1].iter().all(|&d| d) {
                break;
            }
            // Issue every ready invocation (each serializes on the core).
            for s in 0..depth {
                let k = plan.stages[s].len() as u64;
                #[allow(clippy::needless_range_loop)] // j also indexes insts[s]
                for j in 0..plan.stages[s].len() {
                    if insts[s][j].busy_frame.is_some() {
                        continue;
                    }
                    let f = j as u64 + insts[s][j].next_local * k;
                    if f >= frames {
                        continue;
                    }
                    let ready = s == 0 || done[s - 1][f as usize];
                    if !ready {
                        continue;
                    }
                    let coord = plan.stages[s][j].coord;
                    let src = self.dma_src(buf, plan, s, f);
                    let dst = self.dma_dst(buf, plan, s, f);
                    self.issue_dma_invocation(coord, src, dst, f)?;
                    invocations += 1;
                    insts[s][j].busy_frame = Some(f);
                    insts[s][j].next_local += 1;
                    insts[s][j].issued_at = self.soc.cycle();
                    insts[s][j].attempts = 0;
                }
            }
            // Expire overdue invocations (per-invocation watchdog).
            let now = self.soc.cycle();
            // Indexed loops: `s`/`j` address insts[][] while `plan` is
            // re-borrowed mutably on failover, so enumerate() can't hold
            // a borrow across the body.
            #[allow(clippy::needless_range_loop)]
            for s in 0..depth {
                #[allow(clippy::needless_range_loop)]
                for j in 0..plan.stages[s].len() {
                    let inst = insts[s][j];
                    let Some(f) = inst.busy_frame else { continue };
                    if now <= inst.issued_at + ctx.watchdog {
                        continue;
                    }
                    let Some(policy) = ctx.policy else {
                        return Err(self.timeout_err(ctx));
                    };
                    let coord = plan.stages[s][j].coord;
                    let attempt = inst.attempts + 1;
                    if attempt <= policy.max_retries {
                        let name = plan.stages[s][j].name.clone();
                        self.retry_backoff(coord, &name, attempt, &policy, ctx)?;
                    } else {
                        self.soc.reset_accel(coord)?;
                        if !(policy.failover && self.failover(plan, s, j, buf, ctx)?) {
                            return Err(self.timeout_err(ctx));
                        }
                    }
                    // Re-issue the same frame on the (possibly remapped)
                    // instance.
                    let coord = plan.stages[s][j].coord;
                    let src = self.dma_src(buf, plan, s, f);
                    let dst = self.dma_dst(buf, plan, s, f);
                    self.issue_dma_invocation(coord, src, dst, f)?;
                    invocations += 1;
                    insts[s][j].issued_at = self.soc.cycle();
                    insts[s][j].attempts = if attempt <= policy.max_retries {
                        attempt
                    } else {
                        0 // fresh device, fresh retry budget
                    };
                }
            }
            // Fast-forward to the earliest watchdog deadline among busy
            // instances: the event-driven engine stops sooner at the next
            // interesting cycle, the naive engine ticks once. Issue
            // decisions only change when an IRQ retires, so skipping
            // boring cycles cannot alter the schedule.
            let next_deadline = insts
                .iter()
                .flatten()
                .filter(|i| i.busy_frame.is_some())
                .map(|i| i.issued_at + ctx.watchdog)
                .min();
            let Some(next_deadline) = next_deadline else {
                // Nothing in flight yet frames remain: the schedule is
                // wedged (cannot happen with a well-formed plan).
                return Err(self.timeout_err(ctx));
            };
            let now = self.soc.cycle();
            self.soc
                .step((next_deadline + 1).saturating_sub(now).max(1));
        }
        Ok(invocations)
    }

    fn run_p2p(
        &mut self,
        plan: &Plan,
        buf: &AppBuffers,
        ctx: &mut RecoveryCtx,
    ) -> Result<u64, RuntimeError> {
        let depth = plan.stages.len();
        let frames = buf.frames;
        let mut invocations = 0u64;
        // One outstanding batch invocation per instance, with its config
        // retained for watchdog-driven re-issue. Failover is NOT supported
        // in p2p mode: peers address their sources by tile coordinate in
        // `P2P_REG`, so swapping one instance would require reconfiguring
        // (and restarting) every consumer mid-flight. Retry alone still
        // recovers hangs at start: a restarted producer finds its
        // consumers parked in LOAD, waiting for the p2p data.
        struct P2pWait {
            coord: Coord,
            name: String,
            cfg: AccelConfig,
            issued_at: u64,
            attempts: u32,
        }
        let mut waits: Vec<P2pWait> = Vec::new();
        for (s, stage) in plan.stages.iter().enumerate() {
            let k = stage.len() as u64;
            for (j, info) in stage.iter().enumerate() {
                let n = AppBuffers::frames_for_instance(frames, k, j as u64);
                if n == 0 {
                    continue;
                }
                let sub_in = AppBuffers::sub_region_words(frames, k, buf.stage_in_words[s]);
                let cfg = if depth == 1 {
                    // Degenerate single-stage dataflow: plain DMA.
                    let src = buf.handle.base + buf.region_offsets[0] + j as u64 * sub_in;
                    AccelConfig::dma_to_dma(src, buf.output_frame_addr(j as u64), n)
                } else if s == 0 {
                    let src = buf.handle.base + buf.region_offsets[0] + j as u64 * sub_in;
                    AccelConfig::dma_to_p2p(src, n)
                } else {
                    let prev = &plan.stages[s - 1];
                    let sources: Vec<Coord> = if prev.len() == stage.len() {
                        vec![prev[j].coord]
                    } else {
                        prev.iter().map(|i| i.coord).collect()
                    };
                    if s == depth - 1 {
                        let sub_out = AppBuffers::sub_region_words(frames, k, buf.out_words);
                        let dst = buf.handle.base + buf.region_offsets[depth] + j as u64 * sub_out;
                        AccelConfig::p2p_to_dma(sources, dst, n)
                    } else {
                        AccelConfig::p2p_to_p2p(sources, n)
                    }
                };
                // Instance `j` of a width-`k` stage serves global frames
                // j, j+k, j+2k, ... (the round-robin frame assignment).
                let cfg = cfg.with_frame_ids(j as u64, k);
                self.soc.configure_accel(info.coord, &cfg)?;
                self.soc.start_accel(info.coord)?;
                self.ioctl(info.coord);
                invocations += 1;
                waits.push(P2pWait {
                    coord: info.coord,
                    name: info.name.clone(),
                    cfg,
                    issued_at: self.soc.cycle(),
                    attempts: 0,
                });
            }
        }
        // Hardware synchronizes the pipeline; wait for every instance.
        while !waits.is_empty() {
            let irqs = self.soc.take_irqs();
            waits.retain(|w| !irqs.contains(&w.coord));
            if waits.is_empty() {
                break;
            }
            // Expire overdue batch invocations and re-issue them with
            // their retained config (bounded retry, no failover).
            let now = self.soc.cycle();
            for w in waits.iter_mut() {
                if now <= w.issued_at + ctx.watchdog {
                    continue;
                }
                let Some(policy) = ctx.policy else {
                    return Err(self.timeout_err(ctx));
                };
                w.attempts += 1;
                if w.attempts > policy.max_retries {
                    return Err(self.timeout_err(ctx));
                }
                self.retry_backoff(w.coord, &w.name, w.attempts, &policy, ctx)?;
                self.soc.configure_accel(w.coord, &w.cfg)?;
                self.soc.start_accel(w.coord)?;
                self.ioctl(w.coord);
                invocations += 1;
                w.issued_at = self.soc.cycle();
            }
            let next_deadline = waits
                .iter()
                .map(|w| w.issued_at + ctx.watchdog)
                .min()
                .expect("waits is non-empty");
            let now = self.soc.cycle();
            self.soc
                .step((next_deadline + 1).saturating_sub(now).max(1));
        }
        Ok(invocations)
    }

    /// Steps the SoC until `coord` raises its completion interrupt.
    /// Returns `false` when the per-invocation watchdog expires first
    /// (the caller decides whether that is fatal).
    fn wait_for_irq(&mut self, coord: Coord, watchdog: u64) -> bool {
        let deadline = self.soc.cycle() + watchdog;
        loop {
            if self.soc.take_irqs().contains(&coord) {
                return true;
            }
            if self.soc.cycle() > deadline {
                return false;
            }
            self.soc
                .step((deadline + 1).saturating_sub(self.soc.cycle()).max(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml_fault::{FaultPlan, FaultSpec};
    use esp4ml_soc::{ScaleKernel, SocBuilder, SocEngine};

    /// Fallible helpers: tests bubble failures up with `?` instead of
    /// unwrapping at every call site.
    fn two_stage_runtime() -> Result<EspRuntime, RuntimeError> {
        let soc = SocBuilder::new(3, 2)
            .processor(Coord::new(0, 0))
            .memory(Coord::new(1, 0))
            .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("x2", 16, 2)))
            .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("x3", 16, 3)))
            .build()
            .map_err(RuntimeError::Soc)?;
        EspRuntime::new(soc)
    }

    fn run_mode(mode: ExecMode) -> Result<(Vec<Vec<u64>>, RunMetrics), RuntimeError> {
        let mut rt = two_stage_runtime()?;
        let df = Dataflow::linear(&[&["x2"], &["x3"]]);
        let frames = 4;
        let buf = rt.prepare(&df, frames)?;
        for f in 0..frames {
            let vals: Vec<u64> = (0..16).map(|i| i + 100 * f).collect();
            rt.write_frame(&buf, f, &vals)?;
        }
        let m = rt.run(&RunSpec::new(&df).mode(mode), &buf)?;
        let mut outs = Vec::new();
        for f in 0..frames {
            outs.push(rt.read_frame(&buf, f)?);
        }
        Ok((outs, m))
    }

    #[test]
    fn all_modes_compute_the_same_result() -> Result<(), RuntimeError> {
        let (base, mb) = run_mode(ExecMode::Base)?;
        let (pipe, mp) = run_mode(ExecMode::Pipe)?;
        let (p2p, m2) = run_mode(ExecMode::P2p)?;
        for f in 0..4usize {
            let expected: Vec<u64> = (0..16).map(|i| (i + 100 * f as u64) * 6).collect();
            assert_eq!(base[f], expected, "base frame {f}");
            assert_eq!(pipe[f], expected, "pipe frame {f}");
            assert_eq!(p2p[f], expected, "p2p frame {f}");
        }
        assert_eq!(mb.frames, 4);
        assert!(mb.invocations == 8 && mp.invocations == 8 && m2.invocations == 2);
        Ok(())
    }

    /// The fork contract behind shared-prefix memoization: executing the
    /// load/config prefix once, snapshotting, and forking the snapshot
    /// across modes must be indistinguishable — metrics, outputs and the
    /// full final machine state — from a cold start per mode.
    #[test]
    fn forked_prefix_runs_match_cold_start() -> Result<(), RuntimeError> {
        let frames = 4;
        let fill = |rt: &mut EspRuntime, buf: &AppBuffers| -> Result<(), RuntimeError> {
            for f in 0..frames {
                let vals: Vec<u64> = (0..16).map(|i| i + 100 * f).collect();
                rt.write_frame(buf, f, &vals)?;
            }
            Ok(())
        };
        let modes = [ExecMode::Base, ExecMode::Pipe, ExecMode::P2p];

        // Cold start: a fresh runtime executes the prefix for every mode.
        let mut cold = Vec::new();
        for mode in modes {
            let mut rt = two_stage_runtime()?;
            let df = Dataflow::linear(&[&["x2"], &["x3"]]);
            let buf = rt.prepare(&df, frames)?;
            fill(&mut rt, &buf)?;
            let m = rt.run(&RunSpec::new(&df).mode(mode), &buf)?;
            let out = rt.read_frame(&buf, frames - 1)?;
            cold.push((m, out, rt.snapshot()));
        }

        // Forked: the prefix runs once and the snapshot is reused.
        let mut rt = two_stage_runtime()?;
        let df = Dataflow::linear(&[&["x2"], &["x3"]]);
        let buf = rt.prepare(&df, frames)?;
        fill(&mut rt, &buf)?;
        let warm = rt.snapshot();
        for (mode, (m_cold, out_cold, snap_cold)) in modes.into_iter().zip(&cold) {
            rt.restore(&warm)?;
            let m = rt.run(&RunSpec::new(&df).mode(mode), &buf)?;
            assert_eq!(&m, m_cold, "{mode:?} metrics diverge");
            assert_eq!(&rt.read_frame(&buf, frames - 1)?, out_cold);
            assert_eq!(&rt.snapshot(), snap_cold, "{mode:?} final state diverges");
        }
        Ok(())
    }

    #[test]
    fn restore_rejects_foreign_floorplan() -> Result<(), RuntimeError> {
        let rt = two_stage_runtime()?;
        let snap = rt.snapshot();
        let soc = SocBuilder::new(2, 2)
            .processor(Coord::new(0, 0))
            .memory(Coord::new(1, 0))
            .build()
            .map_err(RuntimeError::Soc)?;
        let mut other = EspRuntime::new(soc)?;
        assert!(matches!(
            other.restore(&snap),
            Err(RuntimeError::Soc(esp4ml_soc::SocError::SnapshotMismatch(_)))
        ));
        Ok(())
    }

    #[test]
    fn pipe_is_faster_than_base() {
        // Use compute-heavy kernels so execution is not ioctl-bound (with
        // trivial kernels both modes degenerate to syscall cost, which is
        // itself a faithful behaviour).
        let run = |mode: ExecMode| {
            let soc = SocBuilder::new(3, 2)
                .processor(Coord::new(0, 0))
                .memory(Coord::new(1, 0))
                .accelerator(
                    Coord::new(0, 1),
                    Box::new(ScaleKernel::new("x2", 16, 2).with_cycles_per_value(150)),
                )
                .accelerator(
                    Coord::new(1, 1),
                    Box::new(ScaleKernel::new("x3", 16, 3).with_cycles_per_value(150)),
                )
                .build()
                .unwrap();
            let mut rt = EspRuntime::new(soc).unwrap();
            let df = Dataflow::linear(&[&["x2"], &["x3"]]);
            let buf = rt.prepare(&df, 8).unwrap();
            for f in 0..8 {
                rt.write_frame(&buf, f, &[1; 16]).unwrap();
            }
            rt.run(&RunSpec::new(&df).mode(mode), &buf).unwrap().cycles
        };
        let base = run(ExecMode::Base);
        let pipe = run(ExecMode::Pipe);
        assert!(
            (pipe as f64) < base as f64 * 0.75,
            "pipe {pipe} !<< base {base}"
        );
    }

    #[test]
    fn p2p_reduces_dram_accesses() -> Result<(), RuntimeError> {
        let (_, mp) = run_mode(ExecMode::Pipe)?;
        let (_, m2) = run_mode(ExecMode::P2p)?;
        assert!(
            m2.dram_accesses < mp.dram_accesses / 2 + 1,
            "p2p {} vs pipe {}",
            m2.dram_accesses,
            mp.dram_accesses
        );
        // Exactly input + output should hit DRAM under p2p.
        assert_eq!(m2.dram_accesses, 4 * 4 + 4 * 4);
        Ok(())
    }

    #[test]
    fn unknown_device_rejected() -> Result<(), RuntimeError> {
        let mut rt = two_stage_runtime()?;
        let df = Dataflow::linear(&[&["nope"]]);
        assert!(matches!(
            rt.prepare(&df, 1),
            Err(RuntimeError::UnknownDevice { .. })
        ));
        Ok(())
    }

    #[test]
    fn mismatched_stage_sizes_rejected() {
        let soc = SocBuilder::new(3, 2)
            .processor(Coord::new(0, 0))
            .memory(Coord::new(1, 0))
            .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("a", 16, 2)))
            .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("b", 8, 3)))
            .build()
            .unwrap();
        let mut rt = EspRuntime::new(soc).unwrap();
        let df = Dataflow::linear(&[&["a"], &["b"]]);
        assert!(matches!(
            rt.prepare(&df, 1),
            Err(RuntimeError::BadDataflow(_))
        ));
    }

    #[test]
    fn fan_in_pipeline_runs_p2p() {
        // Two producers, one consumer (the 4NV+1Cl shape, scaled down).
        let soc = SocBuilder::new(3, 2)
            .processor(Coord::new(0, 0))
            .memory(Coord::new(1, 0))
            .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("p0", 8, 2)))
            .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("p1", 8, 2)))
            .accelerator(Coord::new(2, 1), Box::new(ScaleKernel::new("c", 8, 5)))
            .build()
            .unwrap();
        let mut rt = EspRuntime::new(soc).unwrap();
        let df = Dataflow::linear(&[&["p0", "p1"], &["c"]]);
        let frames = 6;
        let buf = rt.prepare(&df, frames).unwrap();
        for f in 0..frames {
            rt.write_frame(&buf, f, &[f + 1; 8]).unwrap();
        }
        let m = rt
            .run(&RunSpec::new(&df).mode(ExecMode::P2p), &buf)
            .unwrap();
        assert_eq!(m.invocations, 3);
        for f in 0..frames {
            assert_eq!(
                rt.read_frame(&buf, f).unwrap(),
                vec![(f + 1) * 10; 8],
                "frame {f}"
            );
        }
    }

    #[test]
    fn esp_alloc_and_cleanup() -> Result<(), RuntimeError> {
        let mut rt = two_stage_runtime()?;
        let h = rt.esp_alloc(1024)?;
        assert_eq!(h.len, 1024);
        rt.esp_cleanup();
        let h2 = rt.esp_alloc(1024)?;
        assert_eq!(h2.base, h.base);
        Ok(())
    }

    #[test]
    fn ioctl_overhead_slows_dma_modes() -> Result<(), RuntimeError> {
        let run_with = |cycles: u64| -> Result<u64, RuntimeError> {
            let mut rt = two_stage_runtime()?;
            let df = Dataflow::linear(&[&["x2"], &["x3"]]);
            let buf = rt.prepare(&df, 4)?;
            for f in 0..4 {
                rt.write_frame(&buf, f, &[1; 16])?;
            }
            Ok(rt
                .run(&RunSpec::new(&df).ioctl_cycles(cycles), &buf)?
                .cycles)
        };
        // 8 invocations at +990 cycles each, minus the execution that the
        // longer ioctl window hides.
        assert!(run_with(1000)? > run_with(10)? + 4000);
        Ok(())
    }

    #[test]
    fn watchdog_retry_recovers_transient_hang() -> Result<(), RuntimeError> {
        let mut rt = two_stage_runtime()?;
        // Swallow the second start command x2 receives (frame 1).
        let plan = FaultPlan::new(0).with(FaultSpec::transient_hang("x2", 1));
        rt.soc_mut().install_fault_plan(&plan);
        let df = Dataflow::linear(&[&["x2"], &["x3"]]);
        let frames = 3;
        let buf = rt.prepare(&df, frames)?;
        for f in 0..frames {
            rt.write_frame(&buf, f, &[f + 1; 16])?;
        }
        let spec = RunSpec::new(&df)
            .watchdog_cycles(50_000)
            .recover(RecoveryPolicy::default());
        let m = rt.run(&spec, &buf)?;
        assert!(m.retries >= 1, "no retry recorded: {m:?}");
        assert_eq!(m.failovers, 0);
        assert!(m.faults_injected >= 1);
        for f in 0..frames {
            assert_eq!(rt.read_frame(&buf, f)?, vec![(f + 1) * 6; 16], "frame {f}");
        }
        Ok(())
    }

    #[test]
    fn permanent_hang_fails_over_to_spare() -> Result<(), RuntimeError> {
        let soc = SocBuilder::new(3, 2)
            .processor(Coord::new(0, 0))
            .memory(Coord::new(1, 0))
            .accelerator(
                Coord::new(0, 1),
                Box::new(ScaleKernel::new("x2", 16, 2).with_kind("doubler")),
            )
            .accelerator(
                Coord::new(1, 1),
                Box::new(ScaleKernel::new("x2_spare", 16, 2).with_kind("doubler")),
            )
            .accelerator(Coord::new(2, 1), Box::new(ScaleKernel::new("x3", 16, 3)))
            .build()
            .map_err(RuntimeError::Soc)?;
        let mut rt = EspRuntime::new(soc)?;
        let plan = FaultPlan::new(0).with(FaultSpec::permanent_hang("x2"));
        rt.soc_mut().install_fault_plan(&plan);
        let df = Dataflow::linear(&[&["x2"], &["x3"]]);
        let buf = rt.prepare(&df, 2)?;
        for f in 0..2 {
            rt.write_frame(&buf, f, &[5; 16])?;
        }
        let policy = RecoveryPolicy {
            max_retries: 1,
            backoff_cycles: 100,
            backoff_factor: 2,
            failover: true,
        };
        let spec = RunSpec::new(&df)
            .mode(ExecMode::Pipe)
            .watchdog_cycles(50_000)
            .recover(policy);
        let m = rt.run(&spec, &buf)?;
        assert_eq!(m.failovers, 1, "{m:?}");
        assert!(m.retries >= 1, "{m:?}");
        for f in 0..2 {
            assert_eq!(rt.read_frame(&buf, f)?, vec![30; 16], "frame {f}");
        }
        Ok(())
    }

    #[test]
    fn p2p_retries_hang_at_start() -> Result<(), RuntimeError> {
        let mut rt = two_stage_runtime()?;
        // The consumer never starts its batch on the first attempt; the
        // producer parks in STORE waiting for p2p requests, so both
        // invocations eventually trip their watchdogs and restart.
        let plan = FaultPlan::new(0).with(FaultSpec::transient_hang("x3", 0));
        rt.soc_mut().install_fault_plan(&plan);
        let df = Dataflow::linear(&[&["x2"], &["x3"]]);
        let frames = 4;
        let buf = rt.prepare(&df, frames)?;
        for f in 0..frames {
            rt.write_frame(&buf, f, &[f + 1; 16])?;
        }
        let spec = RunSpec::new(&df)
            .mode(ExecMode::P2p)
            .watchdog_cycles(50_000)
            .recover(RecoveryPolicy::default());
        let m = rt.run(&spec, &buf)?;
        assert!(m.retries >= 1, "{m:?}");
        assert_eq!(m.failovers, 0, "p2p never fails over");
        for f in 0..frames {
            assert_eq!(rt.read_frame(&buf, f)?, vec![(f + 1) * 6; 16], "frame {f}");
        }
        Ok(())
    }

    #[test]
    fn timeout_reports_measured_elapsed_cycles() {
        let run = |engine: SocEngine| {
            let mut rt = two_stage_runtime().unwrap();
            rt.soc_mut().set_engine(engine);
            let plan = FaultPlan::new(0).with(FaultSpec::permanent_hang("x2"));
            rt.soc_mut().install_fault_plan(&plan);
            let df = Dataflow::linear(&[&["x2"], &["x3"]]);
            let buf = rt.prepare(&df, 1).unwrap();
            rt.write_frame(&buf, 0, &[1; 16]).unwrap();
            match rt.run(&RunSpec::new(&df).watchdog_cycles(50_000), &buf) {
                Err(RuntimeError::Timeout { cycles, .. }) => cycles,
                other => panic!("expected timeout, got {other:?}"),
            }
        };
        let naive = run(SocEngine::Naive);
        let event = run(SocEngine::EventDriven);
        assert_eq!(naive, event, "engines disagree on measured elapsed");
        // The error reports how long the run actually ran, not the
        // configured watchdog constant.
        assert!(naive > 50_000 && naive < DEFAULT_WATCHDOG_CYCLES);
    }

    #[test]
    fn exhausted_retries_without_spare_time_out() {
        let mut rt = two_stage_runtime().unwrap();
        let plan = FaultPlan::new(0).with(FaultSpec::permanent_hang("x2"));
        rt.soc_mut().install_fault_plan(&plan);
        let df = Dataflow::linear(&[&["x2"], &["x3"]]);
        let buf = rt.prepare(&df, 1).unwrap();
        rt.write_frame(&buf, 0, &[1; 16]).unwrap();
        let policy = RecoveryPolicy {
            max_retries: 1,
            backoff_cycles: 10,
            backoff_factor: 2,
            failover: true, // no same-kind spare exists
        };
        let err = rt
            .run(
                &RunSpec::new(&df).watchdog_cycles(20_000).recover(policy),
                &buf,
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Timeout { .. }), "{err:?}");
    }

    #[test]
    fn recovery_policy_is_free_on_healthy_runs() -> Result<(), RuntimeError> {
        let run = |recover: bool| -> Result<RunMetrics, RuntimeError> {
            let mut rt = two_stage_runtime()?;
            let df = Dataflow::linear(&[&["x2"], &["x3"]]);
            let buf = rt.prepare(&df, 4)?;
            for f in 0..4 {
                rt.write_frame(&buf, f, &[1; 16])?;
            }
            let mut spec = RunSpec::new(&df).mode(ExecMode::Pipe);
            if recover {
                spec = spec.recover(RecoveryPolicy::default());
            }
            rt.run(&spec, &buf)
        };
        let plain = run(false)?;
        let recov = run(true)?;
        assert_eq!(plain, recov, "recovery arming must be zero-cost");
        assert_eq!(recov.retries, 0);
        assert_eq!(recov.faults_injected, 0);
        Ok(())
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RecoveryPolicy {
            max_retries: 5,
            backoff_cycles: 100,
            backoff_factor: 3,
            failover: false,
        };
        assert_eq!(p.backoff_for(1), 100);
        assert_eq!(p.backoff_for(2), 300);
        assert_eq!(p.backoff_for(3), 900);
    }

    #[test]
    fn spec_ioctl_override_is_per_run() -> Result<(), RuntimeError> {
        let mut rt = two_stage_runtime()?;
        let df = Dataflow::linear(&[&["x2"], &["x3"]]);
        let buf = rt.prepare(&df, 1)?;
        rt.write_frame(&buf, 0, &[1; 16])?;
        let slow = rt.run(&RunSpec::new(&df).ioctl_cycles(5_000), &buf)?;
        // The override must not leak into a spec without one.
        let normal = rt.run(&RunSpec::new(&df), &buf)?;
        assert!(slow.cycles > normal.cycles + 2 * 4_000);
        Ok(())
    }
}
