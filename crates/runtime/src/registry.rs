//! The device registry: the driver-probe layer.

use esp4ml_noc::Coord;
use esp4ml_soc::{regs, Soc};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything the driver records about one probed accelerator.
///
/// In the paper, "any registered accelerator (discovered when probe is
/// executed) is added to a global linked list protected by a spinlock",
/// which lets any driver thread map a device *name* (known in user space)
/// to x-y coordinates (never exposed to user space).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceInfo {
    /// Device name (the kernel name).
    pub name: String,
    /// Device kind: the interchangeability class used by failover remaps.
    /// Devices of the same kind and I/O shape run the same computation
    /// (see `AcceleratorKernel::kind`). Defaults to the device name for
    /// records written before kinds existed.
    #[serde(default)]
    pub kind: String,
    /// Tile coordinates, read from `LOCATION_REG` at probe time.
    pub coord: Coord,
    /// Input values per invocation.
    pub input_values: u64,
    /// Output values per invocation.
    pub output_values: u64,
    /// Data width in bits.
    pub data_bits: u32,
    /// Steady-state initiation interval of the kernel datapath in cycles,
    /// as reported by the HLS flow (drives pipeline balancing, §V).
    pub initiation_interval: u64,
}

impl DeviceInfo {
    /// Input words (packed) per invocation.
    pub fn input_words(&self) -> u64 {
        let per_word = (64 / self.data_bits) as u64;
        self.input_values.div_ceil(per_word)
    }

    /// Output words (packed) per invocation.
    pub fn output_words(&self) -> u64 {
        let per_word = (64 / self.data_bits) as u64;
        self.output_values.div_ceil(per_word)
    }
}

/// The global device list, protected by a lock (the spinlock analog).
#[derive(Debug, Clone, Default)]
pub struct DeviceRegistry {
    devices: Arc<Mutex<Vec<DeviceInfo>>>,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// Probes every accelerator tile of `soc`, reading its `LOCATION_REG`
    /// over the register interface (exactly what the ESP Linux driver does
    /// in `probe`).
    pub fn probe(soc: &Soc) -> Self {
        let registry = DeviceRegistry::new();
        for coord in soc.accel_coords() {
            let tile = soc.accel(coord).expect("accelerator coordinate");
            let loc = Coord::from_reg(tile.read_reg(regs::REG_LOCATION));
            debug_assert_eq!(loc, coord);
            let kernel = tile.kernel();
            registry.register(DeviceInfo {
                name: kernel.name().to_string(),
                kind: kernel.kind().to_string(),
                coord: loc,
                input_values: kernel.input_values(),
                output_values: kernel.output_values(),
                data_bits: kernel.data_bits(),
                initiation_interval: kernel.initiation_interval(),
            });
        }
        registry
    }

    /// Adds a device to the global list.
    pub fn register(&self, info: DeviceInfo) {
        self.devices.lock().push(info);
    }

    /// Looks up a device by name.
    pub fn lookup(&self, name: &str) -> Option<DeviceInfo> {
        self.devices.lock().iter().find(|d| d.name == name).cloned()
    }

    /// All registered devices, in probe order.
    pub fn devices(&self) -> Vec<DeviceInfo> {
        self.devices.lock().clone()
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.lock().len()
    }

    /// Whether no device was probed.
    pub fn is_empty(&self) -> bool {
        self.devices.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml_soc::{ScaleKernel, SocBuilder};

    #[test]
    fn probe_discovers_all_accelerators() {
        let soc = SocBuilder::new(3, 2)
            .processor(Coord::new(0, 0))
            .memory(Coord::new(1, 0))
            .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("a", 16, 2)))
            .accelerator(Coord::new(2, 1), Box::new(ScaleKernel::new("b", 8, 3)))
            .build()
            .unwrap();
        let reg = DeviceRegistry::probe(&soc);
        assert_eq!(reg.len(), 2);
        let a = reg.lookup("a").unwrap();
        assert_eq!(a.coord, Coord::new(0, 1));
        assert_eq!(a.input_values, 16);
        assert_eq!(a.input_words(), 4);
        assert!(reg.lookup("missing").is_none());
    }

    #[test]
    fn word_counts_round_up() {
        let d = DeviceInfo {
            name: "x".into(),
            kind: "x".into(),
            coord: Coord::default(),
            input_values: 10,
            output_values: 1,
            data_bits: 16,
            initiation_interval: 1,
        };
        assert_eq!(d.input_words(), 3);
        assert_eq!(d.output_words(), 1);
    }

    #[test]
    fn registry_is_shared() {
        let r1 = DeviceRegistry::new();
        let r2 = r1.clone();
        r1.register(DeviceInfo {
            name: "dev".into(),
            kind: "dev".into(),
            coord: Coord::new(1, 1),
            input_values: 4,
            output_values: 4,
            data_bits: 16,
            initiation_interval: 4,
        });
        assert_eq!(r2.len(), 1);
    }
}
