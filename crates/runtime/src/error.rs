//! Runtime error type.

use esp4ml_check::Diagnostic;
use esp4ml_mem::AllocError;
use esp4ml_soc::SocError;
use std::error::Error;
use std::fmt;

/// Errors raised by the ESP runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// Underlying SoC failure.
    Soc(SocError),
    /// Contiguous allocation failure.
    Alloc(AllocError),
    /// A dataflow referenced a device name that no driver probed.
    UnknownDevice {
        /// The missing device name.
        name: String,
    },
    /// The dataflow is structurally invalid. The [`Diagnostic`] carries
    /// the stable error code (`E02xx`/`E03xx`) and fix hint.
    BadDataflow(Diagnostic),
    /// The simulated execution did not finish within the cycle budget
    /// (deadlock or missing configuration).
    Timeout {
        /// Cycles executed before giving up.
        cycles: u64,
        /// Wait-for-graph deadlock diagnosis, when the SoC had blocked
        /// tiles at timeout (see `esp4ml_soc::DeadlockDiagnosis`).
        diagnosis: Option<String>,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Soc(e) => write!(f, "soc error: {e}"),
            RuntimeError::Alloc(e) => write!(f, "allocation error: {e}"),
            RuntimeError::UnknownDevice { name } => write!(f, "no such device: {name}"),
            RuntimeError::BadDataflow(diag) => write!(f, "invalid dataflow: {}", diag.message),
            RuntimeError::Timeout { cycles, diagnosis } => {
                write!(f, "execution did not finish within {cycles} cycles")?;
                if let Some(d) = diagnosis {
                    write!(f, " ({d})")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Soc(e) => Some(e),
            RuntimeError::Alloc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SocError> for RuntimeError {
    fn from(e: SocError) -> Self {
        RuntimeError::Soc(e)
    }
}

impl From<AllocError> for RuntimeError {
    fn from(e: AllocError) -> Self {
        RuntimeError::Alloc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(RuntimeError::UnknownDevice { name: "nv".into() }
            .to_string()
            .contains("nv"));
        assert!(RuntimeError::Timeout {
            cycles: 5,
            diagnosis: None
        }
        .to_string()
        .contains('5'));
    }

    #[test]
    fn timeout_display_appends_diagnosis() {
        let e = RuntimeError::Timeout {
            cycles: 7,
            diagnosis: Some("blocked: tile(1,1) waiting".into()),
        };
        let text = e.to_string();
        assert!(text.contains("7 cycles"));
        assert!(text.contains("tile(1,1)"));
    }

    #[test]
    fn bad_dataflow_display_keeps_message() {
        let diag = Diagnostic::error(
            esp4ml_check::codes::EMPTY_DATAFLOW,
            "dataflow",
            "dataflow has no stages",
        );
        assert_eq!(
            RuntimeError::BadDataflow(diag).to_string(),
            "invalid dataflow: dataflow has no stages"
        );
    }
}
