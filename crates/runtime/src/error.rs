//! Runtime error type.

use esp4ml_mem::AllocError;
use esp4ml_soc::SocError;
use std::error::Error;
use std::fmt;

/// Errors raised by the ESP runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum RuntimeError {
    /// Underlying SoC failure.
    Soc(SocError),
    /// Contiguous allocation failure.
    Alloc(AllocError),
    /// A dataflow referenced a device name that no driver probed.
    UnknownDevice {
        /// The missing device name.
        name: String,
    },
    /// The dataflow is structurally invalid.
    BadDataflow(String),
    /// The simulated execution did not finish within the cycle budget
    /// (deadlock or missing configuration).
    Timeout {
        /// Cycles executed before giving up.
        cycles: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Soc(e) => write!(f, "soc error: {e}"),
            RuntimeError::Alloc(e) => write!(f, "allocation error: {e}"),
            RuntimeError::UnknownDevice { name } => write!(f, "no such device: {name}"),
            RuntimeError::BadDataflow(msg) => write!(f, "invalid dataflow: {msg}"),
            RuntimeError::Timeout { cycles } => {
                write!(f, "execution did not finish within {cycles} cycles")
            }
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Soc(e) => Some(e),
            RuntimeError::Alloc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SocError> for RuntimeError {
    fn from(e: SocError) -> Self {
        RuntimeError::Soc(e)
    }
}

impl From<AllocError> for RuntimeError {
    fn from(e: AllocError) -> Self {
        RuntimeError::Alloc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(RuntimeError::UnknownDevice { name: "nv".into() }
            .to_string()
            .contains("nv"));
        assert!(RuntimeError::Timeout { cycles: 5 }
            .to_string()
            .contains('5'));
    }
}
