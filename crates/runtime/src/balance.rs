//! Pipeline throughput balancing (§V of the paper).
//!
//! "They can tune the throughput of the system by balancing each stage of
//! this pipeline: e.g., if a slow accelerator is feeding a faster one,
//! multiple instances of the slower accelerator can be activated to feed a
//! single accelerator downstream." This module computes those instance
//! counts from the stages' initiation intervals.

/// Suggests per-stage instance counts for a linear pipeline.
///
/// `stage_iis[i]` is the initiation interval (cycles/frame) of one
/// instance of stage `i`; `max_width` bounds the replication (the
/// `P2P_REG` supports at most 4 sources). The effective interval of a
/// stage with `k` instances is `ii / k`.
///
/// The balancing goal follows the paper: replicate *slower* stages until
/// they keep up with the fastest single-instance stage (or until
/// `max_width` caps them), using as few instances as possible. Returned
/// widths respect the runtime's dataflow-wiring constraint — consecutive
/// stages must have equal width or fan in to width 1, so every valid
/// vector is a constant prefix followed by an all-ones suffix.
///
/// # Panics
///
/// Panics if `stage_iis` is empty, contains a zero, or `max_width == 0`.
pub fn suggest_stage_widths(stage_iis: &[u64], max_width: usize) -> Vec<usize> {
    assert!(!stage_iis.is_empty(), "pipeline needs at least one stage");
    assert!(max_width > 0, "max width must be positive");
    assert!(
        stage_iis.iter().all(|&ii| ii > 0),
        "initiation intervals must be positive"
    );
    // Target interval: the fastest single-instance stage sets the pace,
    // unless even full replication cannot bring some stage down to it.
    let fastest = *stage_iis.iter().min().expect("non-empty");
    let floor = stage_iis
        .iter()
        .map(|&ii| ii.div_ceil(max_width as u64))
        .max()
        .expect("non-empty");
    let target = fastest.max(floor);
    // Enumerate the (tiny) valid search space and pick the cheapest
    // vector meeting the target; ties break towards the shorter prefix.
    let n = stage_iis.len();
    let mut best: Option<(usize, Vec<usize>)> = None;
    for w in 1..=max_width {
        for split in 0..=n {
            let widths: Vec<usize> = (0..n).map(|i| if i < split { w } else { 1 }).collect();
            if pipeline_interval(stage_iis, &widths) > target {
                continue;
            }
            let instances: usize = widths.iter().sum();
            if best.as_ref().is_none_or(|(bc, _)| instances < *bc) {
                best = Some((instances, widths));
            }
        }
    }
    best.expect("target is achievable by construction").1
}

/// The steady-state pipeline interval (cycles/frame) for the given
/// per-stage IIs and instance counts.
///
/// # Panics
///
/// Panics on length mismatch or zero widths.
pub fn pipeline_interval(stage_iis: &[u64], widths: &[usize]) -> u64 {
    assert_eq!(stage_iis.len(), widths.len(), "length mismatch");
    stage_iis
        .iter()
        .zip(widths)
        .map(|(&ii, &k)| {
            assert!(k > 0, "stage width must be positive");
            ii.div_ceil(k as u64)
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_producer_gets_replicated() {
        // The paper's Night-Vision (slow) feeding the classifier (fast):
        // NV II ~ 8400, Cl II ~ 2400 → 4 NV + 1 Cl.
        let widths = suggest_stage_widths(&[8400, 2400], 4);
        assert_eq!(widths, vec![4, 1]);
        assert!(pipeline_interval(&[8400, 2400], &widths) <= 2400);
    }

    #[test]
    fn balanced_pipeline_stays_minimal() {
        let widths = suggest_stage_widths(&[1000, 1000, 1000], 4);
        assert_eq!(widths, vec![1, 1, 1]);
    }

    #[test]
    fn interval_improves_with_width() {
        let iis = [8000u64, 2000];
        let one = pipeline_interval(&iis, &[1, 1]);
        let four = pipeline_interval(&iis, &[4, 1]);
        assert_eq!(one, 8000);
        assert_eq!(four, 2000);
    }

    #[test]
    fn widths_respect_wiring_constraint() {
        // Whatever the IIs, consecutive widths must be equal or fan in to 1.
        for iis in [
            vec![100u64, 400, 100],
            vec![400, 100, 400],
            vec![100, 100, 400, 50],
            vec![1, 1000],
        ] {
            let w = suggest_stage_widths(&iis, 4);
            for pair in w.windows(2) {
                assert!(
                    pair[0] == pair[1] || pair[1] == 1,
                    "widths {w:?} violate wiring for IIs {iis:?}"
                );
            }
            assert!(w.iter().all(|&k| (1..=4).contains(&k)));
        }
    }

    #[test]
    fn max_width_bounds_replication() {
        let widths = suggest_stage_widths(&[100_000, 10], 2);
        assert_eq!(widths[0], 2);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_panics() {
        suggest_stage_widths(&[], 4);
    }
}
