//! Execution metrics returned by `esp_run`.

use serde::{Deserialize, Serialize};

/// Metrics for one `esp_run` execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Application frames processed end-to-end.
    pub frames: u64,
    /// Cycles from the first invocation to the last completion.
    pub cycles: u64,
    /// DRAM words accessed (reads + writes) during the run.
    pub dram_accesses: u64,
    /// DRAM words read.
    pub dram_reads: u64,
    /// DRAM words written.
    pub dram_writes: u64,
    /// NoC flit-hops during the run.
    pub noc_flit_hops: u64,
    /// Accelerator invocations issued (each costing one ioctl path).
    pub invocations: u64,
    /// SoC clock in Hz, for unit conversions.
    pub clock_hz: f64,
    /// Injected hardware faults that fired during the run (zero unless a
    /// `FaultPlan` was installed on the SoC).
    #[serde(default)]
    pub faults_injected: u64,
    /// Invocations re-issued after a watchdog expiry (recovery layer).
    #[serde(default)]
    pub retries: u64,
    /// Stage instances remapped to a spare device after retry exhaustion.
    #[serde(default)]
    pub failovers: u64,
}

impl RunMetrics {
    /// Throughput in frames per second.
    pub fn frames_per_second(&self) -> f64 {
        esp4ml_trace::frames_per_second(self.frames, self.cycles, self.clock_hz)
    }

    /// Energy efficiency in frames per joule at the given average power.
    ///
    /// Non-positive power yields 0.0 frames/J (there is no meaningful
    /// efficiency without a power draw). Negative power is a programming
    /// error in the caller's power model and trips a debug assertion.
    pub fn frames_per_joule(&self, watts: f64) -> f64 {
        debug_assert!(
            watts >= 0.0,
            "negative average power ({watts} W) — broken power model"
        );
        if watts <= 0.0 {
            return 0.0;
        }
        self.frames_per_second() / watts
    }

    /// Wall-clock seconds of the run (0.0 when the clock is unset, like
    /// [`RunMetrics::frames_per_second`] — never NaN).
    pub fn seconds(&self) -> f64 {
        if self.clock_hz <= 0.0 {
            return 0.0;
        }
        self.cycles as f64 / self.clock_hz
    }

    /// Renders the metrics in the Prometheus text exposition format: one
    /// gauge per field, each preceded by its `# HELP` / `# TYPE` comment
    /// lines, in a fixed order. Pairs with
    /// [`CounterRegistry::render_prometheus`](esp4ml_trace::CounterRegistry::render_prometheus)
    /// for scrape-style exports of a run.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut gauge = |name: &str, help: &str, value: String| {
            let _ = writeln!(out, "# HELP esp4ml_run_{name} {help}");
            let _ = writeln!(out, "# TYPE esp4ml_run_{name} gauge");
            let _ = writeln!(out, "esp4ml_run_{name} {value}");
        };
        gauge(
            "frames",
            "Application frames processed end-to-end.",
            self.frames.to_string(),
        );
        gauge(
            "cycles",
            "Cycles from the first invocation to the last completion.",
            self.cycles.to_string(),
        );
        gauge(
            "frames_per_second",
            "Throughput in frames per second.",
            format!("{}", self.frames_per_second()),
        );
        gauge(
            "dram_reads",
            "DRAM words read during the run.",
            self.dram_reads.to_string(),
        );
        gauge(
            "dram_writes",
            "DRAM words written during the run.",
            self.dram_writes.to_string(),
        );
        gauge(
            "dram_accesses",
            "DRAM words accessed (reads + writes) during the run.",
            self.dram_accesses.to_string(),
        );
        gauge(
            "noc_flit_hops",
            "NoC flit-hops during the run.",
            self.noc_flit_hops.to_string(),
        );
        gauge(
            "invocations",
            "Accelerator invocations issued (each costing one ioctl path).",
            self.invocations.to_string(),
        );
        gauge(
            "faults_injected",
            "Injected hardware faults that fired during the run.",
            self.faults_injected.to_string(),
        );
        gauge(
            "retries",
            "Invocations re-issued after a watchdog expiry.",
            self.retries.to_string(),
        );
        gauge(
            "failovers",
            "Stage instances remapped to a spare device.",
            self.failovers.to_string(),
        );
        out
    }
}

impl std::fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} frames in {} cycles ({:.0} frames/s at {:.0} MHz), {} DRAM word accesses, {} invocations",
            self.frames,
            self.cycles,
            self.frames_per_second(),
            self.clock_hz / 1.0e6,
            self.dram_accesses,
            self.invocations,
        )?;
        // Recovery counters appear only when something actually went
        // wrong, so healthy-run output stays byte-identical.
        if self.faults_injected > 0 {
            write!(f, ", {} faults injected", self.faults_injected)?;
        }
        if self.retries > 0 {
            write!(f, ", {} retries", self.retries)?;
        }
        if self.failovers > 0 {
            write!(f, ", {} failovers", self.failovers)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            frames: 100,
            cycles: 780_000,
            clock_hz: 78.0e6,
            ..Default::default()
        }
    }

    #[test]
    fn fps() {
        assert!((metrics().frames_per_second() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn frames_per_joule() {
        let m = metrics();
        assert!((m.frames_per_joule(2.0) - 5_000.0).abs() < 1e-6);
        assert_eq!(m.frames_per_joule(0.0), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "negative average power")]
    fn negative_watts_is_a_programming_error() {
        metrics().frames_per_joule(-1.0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn negative_watts_returns_zero_in_release() {
        assert_eq!(metrics().frames_per_joule(-1.0), 0.0);
    }

    #[test]
    fn seconds() {
        assert!((metrics().seconds() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn default_seconds_is_zero_not_nan() {
        // Regression: cycles/clock_hz used to be 0.0/0.0 = NaN here.
        let s = RunMetrics::default().seconds();
        assert_eq!(s, 0.0);
        assert!(!s.is_nan());
    }

    #[test]
    fn zero_cycles_fps_is_zero() {
        assert_eq!(RunMetrics::default().frames_per_second(), 0.0);
    }

    #[test]
    fn display_summarizes() {
        let s = metrics().to_string();
        assert!(s.contains("100 frames"));
        assert!(s.contains("10000 frames/s"));
        assert!(!s.contains("retries"), "healthy run shows no recovery");
    }

    #[test]
    fn display_appends_recovery_counters_only_when_nonzero() {
        let mut m = metrics();
        m.faults_injected = 1;
        m.retries = 2;
        m.failovers = 1;
        let s = m.to_string();
        assert!(s.contains("1 faults injected"), "{s}");
        assert!(s.contains("2 retries"), "{s}");
        assert!(s.contains("1 failovers"), "{s}");
    }

    #[test]
    fn prometheus_exposition_is_stable() {
        let text = metrics().render_prometheus();
        // Snapshot of the head of the exposition: HELP, TYPE, value.
        assert!(
            text.starts_with(
                "# HELP esp4ml_run_frames Application frames processed end-to-end.\n\
                 # TYPE esp4ml_run_frames gauge\n\
                 esp4ml_run_frames 100\n\
                 # HELP esp4ml_run_cycles Cycles from the first invocation to the last completion.\n\
                 # TYPE esp4ml_run_cycles gauge\n\
                 esp4ml_run_cycles 780000\n"
            ),
            "unexpected exposition head:\n{text}"
        );
        assert!(
            text.contains("esp4ml_run_frames_per_second 10000\n"),
            "{text}"
        );
        assert!(text.contains("esp4ml_run_retries 0\n"), "{text}");
        // Every gauge carries both comment lines.
        let helps = text.matches("# HELP ").count();
        let types = text.matches("# TYPE ").count();
        assert_eq!(helps, types);
        assert_eq!(helps, 11);
    }

    #[test]
    fn json_without_recovery_fields_still_parses() {
        // Plans serialized before the recovery counters existed must load.
        let old = r#"{"frames":1,"cycles":2,"dram_accesses":0,"dram_reads":0,
            "dram_writes":0,"noc_flit_hops":0,"invocations":1,"clock_hz":1.0}"#;
        let m: RunMetrics = serde_json::from_str(old).unwrap();
        assert_eq!(m.retries, 0);
        assert_eq!(m.failovers, 0);
        assert_eq!(m.faults_injected, 0);
    }
}
