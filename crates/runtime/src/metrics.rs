//! Execution metrics returned by `esp_run`.

use serde::{Deserialize, Serialize};

/// Metrics for one `esp_run` execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Application frames processed end-to-end.
    pub frames: u64,
    /// Cycles from the first invocation to the last completion.
    pub cycles: u64,
    /// DRAM words accessed (reads + writes) during the run.
    pub dram_accesses: u64,
    /// DRAM words read.
    pub dram_reads: u64,
    /// DRAM words written.
    pub dram_writes: u64,
    /// NoC flit-hops during the run.
    pub noc_flit_hops: u64,
    /// Accelerator invocations issued (each costing one ioctl path).
    pub invocations: u64,
    /// SoC clock in Hz, for unit conversions.
    pub clock_hz: f64,
}

impl RunMetrics {
    /// Throughput in frames per second.
    pub fn frames_per_second(&self) -> f64 {
        esp4ml_trace::frames_per_second(self.frames, self.cycles, self.clock_hz)
    }

    /// Energy efficiency in frames per joule at the given average power.
    pub fn frames_per_joule(&self, watts: f64) -> f64 {
        if watts <= 0.0 {
            return 0.0;
        }
        self.frames_per_second() / watts
    }

    /// Wall-clock seconds of the run.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / self.clock_hz
    }
}

impl std::fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} frames in {} cycles ({:.0} frames/s at {:.0} MHz), {} DRAM word accesses, {} invocations",
            self.frames,
            self.cycles,
            self.frames_per_second(),
            self.clock_hz / 1.0e6,
            self.dram_accesses,
            self.invocations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> RunMetrics {
        RunMetrics {
            frames: 100,
            cycles: 780_000,
            clock_hz: 78.0e6,
            ..Default::default()
        }
    }

    #[test]
    fn fps() {
        assert!((metrics().frames_per_second() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn frames_per_joule() {
        let m = metrics();
        assert!((m.frames_per_joule(2.0) - 5_000.0).abs() < 1e-6);
        assert_eq!(m.frames_per_joule(0.0), 0.0);
    }

    #[test]
    fn seconds() {
        assert!((metrics().seconds() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_fps_is_zero() {
        assert_eq!(RunMetrics::default().frames_per_second(), 0.0);
    }

    #[test]
    fn display_summarizes() {
        let s = metrics().to_string();
        assert!(s.contains("100 frames"));
        assert!(s.contains("10000 frames/s"));
    }
}
