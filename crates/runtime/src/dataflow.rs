//! User-level dataflow descriptions (the generated `dflow.h` analog).

use esp4ml_check::{codes, Diagnostic};
use serde::{Deserialize, Serialize};

/// One pipeline stage: one or more identical device instances that share
/// the work round-robin (frame `f` goes to instance `f % n`).
///
/// Running several instances of a slow stage to feed one faster downstream
/// stage is exactly the throughput-balancing technique of §V ("if a slow
/// accelerator is feeding a faster one, multiple instances of the slower
/// accelerator can be activated").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Device names of the instances (as probed by the driver).
    pub devices: Vec<String>,
}

impl StageSpec {
    /// A stage with the given device instances.
    pub fn new<S: Into<String>>(devices: impl IntoIterator<Item = S>) -> Self {
        StageSpec {
            devices: devices.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of parallel instances.
    pub fn width(&self) -> usize {
        self.devices.len()
    }
}

/// How `esp_run` maps the dataflow onto the SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// Serial single-thread execution: one accelerator invocation at a
    /// time, all communication through memory (the paper's *base* bars).
    Base,
    /// Software pipeline: one thread per accelerator, dependencies enforced
    /// with pthread-style synchronization, communication through memory
    /// (the *pipe* bars).
    Pipe,
    /// Hardware pipeline: single invocation per accelerator with p2p
    /// communication; synchronization happens in the NoC (the *p2p* bars).
    P2p,
}

impl ExecMode {
    /// All modes, in the order the paper's figures present them.
    pub const ALL: [ExecMode; 3] = [ExecMode::Base, ExecMode::Pipe, ExecMode::P2p];

    /// The label used in Fig. 7.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Base => "base",
            ExecMode::Pipe => "pipe",
            ExecMode::P2p => "p2p",
        }
    }
}

/// A linear pipeline of stages — the dataflow shape of all four
/// case-study applications (Fig. 6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataflow {
    /// Stages in execution order.
    pub stages: Vec<StageSpec>,
}

impl Dataflow {
    /// Builds a linear dataflow from stage device lists, e.g.
    /// `Dataflow::linear(&[&["nv0", "nv1"], &["classifier"]])`.
    pub fn linear(stages: &[&[&str]]) -> Self {
        Dataflow {
            stages: stages
                .iter()
                .map(|devs| StageSpec::new(devs.iter().copied()))
                .collect(),
        }
    }

    /// Number of stages.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Total device instances across stages.
    pub fn total_instances(&self) -> usize {
        self.stages.iter().map(StageSpec::width).sum()
    }

    /// Structural validation (device existence and size compatibility are
    /// checked by the runtime against the registry).
    ///
    /// Fan-out from a single producer to multiple consumers is rejected:
    /// the on-demand p2p service serves requests in arrival order, which
    /// only preserves frame order when consecutive stages have equal width
    /// or fan *in* to a single consumer.
    ///
    /// # Errors
    ///
    /// Returns a typed [`Diagnostic`] for the first structural problem
    /// found (its `Display` carries the same description as ever).
    pub fn validate(&self) -> Result<(), Diagnostic> {
        match self.lint().into_iter().next() {
            Some(diag) => Err(diag),
            None => Ok(()),
        }
    }

    /// Structural linting: like [`Dataflow::validate`] but collects
    /// *every* finding instead of stopping at the first.
    pub fn lint(&self) -> Vec<Diagnostic> {
        let mut found = Vec::new();
        if self.stages.is_empty() {
            found.push(
                Diagnostic::error(codes::EMPTY_DATAFLOW, "dataflow", "dataflow has no stages")
                    .with_hint("declare at least one stage with one device instance"),
            );
            return found;
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.devices.is_empty() {
                found.push(Diagnostic::error(
                    codes::EMPTY_STAGE,
                    format!("stage {i}"),
                    format!("stage {i} has no device instances"),
                ));
            }
            if s.devices.len() > 4 {
                found.push(
                    Diagnostic::error(
                        codes::STAGE_FAN_IN,
                        format!("stage {i}"),
                        format!(
                            "stage {i} has {} instances; the P2P_REG supports at most 4 sources",
                            s.devices.len()
                        ),
                    )
                    .with_hint("split the stage or reduce its instance count to 4"),
                );
            }
        }
        for (i, w) in self.stages.windows(2).enumerate() {
            let (a, b) = (w[0].width(), w[1].width());
            if a != b && b != 1 {
                found.push(
                    Diagnostic::error(
                        codes::STAGE_WIDTHS,
                        format!("stages {i} -> {}", i + 1),
                        format!(
                            "stage widths {a} -> {b}: only equal-width or fan-in-to-one supported"
                        ),
                    )
                    .with_hint(
                        "the on-demand p2p service preserves frame order only for \
                         equal-width or fan-in-to-one stage transitions",
                    ),
                );
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for s in &self.stages {
            for d in &s.devices {
                if !seen.insert(d.clone()) {
                    found.push(Diagnostic::error(
                        codes::DUPLICATE_STAGE_DEVICE,
                        format!("device {d}"),
                        format!("device {d} appears twice in the dataflow"),
                    ));
                }
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_builder() {
        let df = Dataflow::linear(&[&["a", "b"], &["c"]]);
        assert_eq!(df.depth(), 2);
        assert_eq!(df.total_instances(), 3);
        assert_eq!(df.stages[0].width(), 2);
        assert!(df.validate().is_ok());
    }

    #[test]
    fn empty_dataflow_invalid() {
        assert!(Dataflow { stages: vec![] }.validate().is_err());
        assert!(Dataflow::linear(&[&[]]).validate().is_err());
    }

    #[test]
    fn fan_out_rejected() {
        let df = Dataflow::linear(&[&["a"], &["b", "c"]]);
        assert!(df.validate().is_err());
    }

    #[test]
    fn fan_in_accepted() {
        let df = Dataflow::linear(&[&["a", "b", "c", "d"], &["e"]]);
        assert!(df.validate().is_ok());
    }

    #[test]
    fn too_many_sources_rejected() {
        let df = Dataflow::linear(&[&["a", "b", "c", "d", "e"], &["f"]]);
        assert!(df.validate().is_err());
    }

    #[test]
    fn duplicate_device_rejected() {
        let df = Dataflow::linear(&[&["a"], &["a"]]);
        assert!(df.validate().is_err());
    }

    #[test]
    fn mode_labels() {
        assert_eq!(ExecMode::Base.label(), "base");
        assert_eq!(ExecMode::ALL.len(), 3);
    }
}

impl Dataflow {
    /// Serializes the dataflow to JSON — the generated `dflow1.h`
    /// configuration of the paper's Fig. 5, in declarative form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("dataflow serializes")
    }

    /// Parses a dataflow from JSON and validates its structure.
    ///
    /// # Errors
    ///
    /// Malformed JSON (`E0206`) or a structurally invalid dataflow
    /// (`E0201`–`E0205`).
    pub fn from_json(json: &str) -> Result<Dataflow, Diagnostic> {
        let df: Dataflow = serde_json::from_str(json)
            .map_err(|e| Diagnostic::error(codes::DATAFLOW_PARSE, "dataflow", e.to_string()))?;
        df.validate()?;
        Ok(df)
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let df = Dataflow::linear(&[&["nv0", "nv1"], &["cl0"]]);
        let back = Dataflow::from_json(&df.to_json()).expect("parses");
        assert_eq!(back, df);
    }

    #[test]
    fn from_json_validates_structure() {
        // Fan-out 1 -> 2 must be rejected even if the JSON parses.
        let json = r#"{"stages":[{"devices":["a"]},{"devices":["b","c"]}]}"#;
        assert!(Dataflow::from_json(json).is_err());
        assert!(Dataflow::from_json("not json").is_err());
    }
}
