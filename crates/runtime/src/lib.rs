//! The ESP4ML embedded software runtime (the Linux layer of the paper).
//!
//! The paper's runtime system (§V) hides memory allocation, accelerator
//! invocation and synchronization behind a small API: the application
//! calls `esp_alloc` for a contiguous buffer, describes its computation as
//! a *dataflow* of accelerator invocations (each using DMA or p2p
//! communication), and calls `esp_run`. The runtime spawns one thread per
//! running accelerator; p2p-connected accelerators are synchronized by the
//! hardware, DMA-connected ones by pthread primitives.
//!
//! This crate reproduces that layer on top of the [`esp4ml_soc`]
//! simulator:
//!
//! * [`DeviceRegistry`] — the driver-probe step: every accelerator is
//!   discovered, its `LOCATION_REG` read, and the name→coordinates mapping
//!   recorded in a global list protected by a lock (the paper's
//!   spinlock-protected linked list). Applications name devices; they
//!   never see coordinates, so the dataflow is floorplan-independent.
//! * [`Dataflow`] — the user-level pipeline description (the `dflow1.h`
//!   analog): stages of device instances, with an [`ExecMode`] choosing
//!   serial execution (`Base`), a software pipeline (`Pipe`), or a p2p
//!   hardware pipeline (`P2p`).
//! * [`EspRuntime`] — `esp_alloc` / `esp_run` / `esp_cleanup`, driving the
//!   simulated SoC cycle-by-cycle while playing the role of the threads
//!   scheduled on the Ariane core.
//!
//! # Example
//!
//! ```
//! use esp4ml_noc::Coord;
//! use esp4ml_soc::{SocBuilder, ScaleKernel};
//! use esp4ml_runtime::{Dataflow, EspRuntime, ExecMode, RunSpec};
//!
//! # fn main() -> Result<(), esp4ml_runtime::RuntimeError> {
//! let soc = SocBuilder::new(2, 2)
//!     .processor(Coord::new(0, 0))
//!     .memory(Coord::new(1, 0))
//!     .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("x2", 8, 2)))
//!     .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("x5", 8, 5)))
//!     .build()?;
//! let mut rt = EspRuntime::new(soc)?;
//! let dataflow = Dataflow::linear(&[&["x2"], &["x5"]]);
//! let frames = 4;
//! let buf = rt.prepare(&dataflow, frames)?;
//! for f in 0..frames {
//!     let vals: Vec<u64> = (0..8).map(|i| i + f).collect();
//!     rt.write_frame(&buf, f, &vals)?;
//! }
//! let metrics = rt.run(&RunSpec::new(&dataflow).mode(ExecMode::P2p), &buf)?;
//! assert_eq!(metrics.frames, frames);
//! assert_eq!(rt.read_frame(&buf, 0)?, vec![0, 10, 20, 30, 40, 50, 60, 70]);
//! rt.esp_cleanup();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
mod dataflow;
mod error;
mod metrics;
mod registry;
mod runtime;

pub use dataflow::{Dataflow, ExecMode, StageSpec};
pub use error::RuntimeError;
pub use metrics::RunMetrics;
pub use registry::{DeviceInfo, DeviceRegistry};
pub use runtime::{
    AppBuffers, EspRuntime, RecoveryPolicy, RunSpec, RuntimeSnapshot, DEFAULT_WATCHDOG_CYCLES,
};
