//! Static NoC bandwidth-feasibility analysis for multi-tenant
//! deployments.
//!
//! The model is deliberately simple and *conservative*: each tenant
//! declares, per directed link and plane, how many flits one of its
//! frames pushes over that link (an over-approximation derived from
//! stage widths, burst sizes and message framing — see
//! `esp4ml::deploy`). Multiplying by the tenant's frame-rate target
//! gives a static flits/s demand; summing over tenants and dividing by
//! the link capacity (one flit per cycle per directed link per plane)
//! gives a utilization. A utilization above 1.0 is infeasible
//! (`E0704`): no schedule can move more than one flit per cycle over a
//! physical channel.
//!
//! For feasible deployments the same numbers bound cross-tenant
//! interference. On a work-conserving link, the service rate left for
//! tenant *t* is at least `capacity - demand_others`, so the worst-case
//! slowdown of *t* on link *l* is at most
//! `1 / (1 - utilization_others(l))`, and over the whole NoC at most
//! the maximum over the links *t* uses. The bound is sound because
//! every quantity in it over-approximates the real demand — see the
//! "deployment analysis" section of DESIGN.md for the full argument.
//!
//! Everything here is pure data math; no simulator types appear.

use crate::cdg::Link;
use serde::Serialize;
use std::collections::BTreeMap;

/// One tenant's static demand on one directed link of one plane.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LinkDemand {
    /// Plane display name (`"dma-req"` / `"dma-rsp"`).
    pub plane: String,
    /// The directed link.
    pub link: Link,
    /// Over-approximated flits one frame of this tenant pushes over the
    /// link.
    pub flits_per_frame: f64,
}

/// One tenant's complete static demand profile.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantDemand {
    /// Tenant name (unique within the deployment).
    pub name: String,
    /// The tenant's frame-rate target in frames per second.
    pub frame_rate_hz: f64,
    /// Per-link per-plane flits-per-frame demands. Duplicate
    /// `(plane, link)` entries are summed.
    pub demands: Vec<LinkDemand>,
}

/// The utilization of one directed link under the composed deployment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LinkUtilization {
    /// Plane display name.
    pub plane: String,
    /// The directed link.
    pub link: Link,
    /// Summed demand in flits per second.
    pub flits_per_sec: f64,
    /// Demand over capacity; above 1.0 the deployment is infeasible.
    pub utilization: f64,
    /// Per-tenant shares of `flits_per_sec`, keyed by tenant name.
    pub by_tenant: BTreeMap<String, f64>,
}

/// The worst-case interference bound for one tenant.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantBound {
    /// Tenant name.
    pub name: String,
    /// Worst-case slowdown factor versus running alone: the maximum of
    /// `1 / (1 - utilization_others)` over the links the tenant uses.
    /// `1.0` means no contention; infinity serializes as `null` and
    /// means some link the tenant needs is already saturated by the
    /// others.
    pub slowdown_bound: f64,
    /// The `(plane, link)` attaining the bound, if the tenant uses any
    /// link at all.
    pub bottleneck: Option<(String, Link)>,
}

/// The composed bandwidth picture of a deployment.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BandwidthAnalysis {
    /// Link capacity used for the analysis, in flits per second.
    pub capacity_flits_per_sec: f64,
    /// Every link with non-zero demand, most utilized first (ties
    /// broken by plane then link for determinism).
    pub links: Vec<LinkUtilization>,
    /// Per-tenant slowdown bounds, in input order.
    pub tenants: Vec<TenantBound>,
}

impl BandwidthAnalysis {
    /// Links whose utilization exceeds 1.0 (+epsilon for float noise).
    pub fn saturated(&self) -> impl Iterator<Item = &LinkUtilization> {
        self.links.iter().filter(|l| l.utilization > 1.0 + 1e-9)
    }
}

/// Composes per-tenant demands into per-link utilizations and
/// per-tenant worst-case slowdown bounds.
///
/// `capacity_flits_per_sec` is the per-directed-link per-plane capacity
/// (clock frequency × flits per cycle; see
/// `esp4ml_noc::LINK_CAPACITY_FLITS_PER_CYCLE`).
pub fn analyze(tenants: &[TenantDemand], capacity_flits_per_sec: f64) -> BandwidthAnalysis {
    let mut totals: BTreeMap<(String, Link), BTreeMap<String, f64>> = BTreeMap::new();
    for tenant in tenants {
        for d in &tenant.demands {
            *totals
                .entry((d.plane.clone(), d.link))
                .or_default()
                .entry(tenant.name.clone())
                .or_insert(0.0) += d.flits_per_frame * tenant.frame_rate_hz;
        }
    }
    let mut links: Vec<LinkUtilization> = totals
        .into_iter()
        .map(|((plane, link), by_tenant)| {
            let flits_per_sec: f64 = by_tenant.values().sum();
            LinkUtilization {
                plane,
                link,
                flits_per_sec,
                utilization: flits_per_sec / capacity_flits_per_sec,
                by_tenant,
            }
        })
        .collect();
    // BTreeMap iteration already yields (plane, link) order; re-sort by
    // utilization (descending) with that order as the tiebreak so the
    // report leads with the hottest links and stays deterministic.
    links.sort_by(|a, b| {
        b.utilization
            .partial_cmp(&a.utilization)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (&a.plane, a.link).cmp(&(&b.plane, b.link)))
    });

    let bounds = tenants
        .iter()
        .map(|tenant| {
            let mut worst: Option<(f64, (String, Link))> = None;
            for lu in &links {
                let own = lu.by_tenant.get(&tenant.name).copied().unwrap_or(0.0);
                if own <= 0.0 {
                    continue;
                }
                let others = (lu.flits_per_sec - own) / capacity_flits_per_sec;
                let slowdown = if others >= 1.0 {
                    f64::INFINITY
                } else {
                    1.0 / (1.0 - others)
                };
                if worst.as_ref().is_none_or(|(w, _)| slowdown > *w) {
                    worst = Some((slowdown, (lu.plane.clone(), lu.link)));
                }
            }
            match worst {
                Some((slowdown, at)) => TenantBound {
                    name: tenant.name.clone(),
                    slowdown_bound: slowdown,
                    bottleneck: Some(at),
                },
                None => TenantBound {
                    name: tenant.name.clone(),
                    slowdown_bound: 1.0,
                    bottleneck: None,
                },
            }
        })
        .collect();

    BandwidthAnalysis {
        capacity_flits_per_sec,
        links,
        tenants: bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(plane: &str, link: Link, flits: f64) -> LinkDemand {
        LinkDemand {
            plane: plane.to_string(),
            link,
            flits_per_frame: flits,
        }
    }

    const L: Link = ((0, 0), (1, 0));

    #[test]
    fn utilization_sums_tenants_on_a_shared_link() {
        let tenants = vec![
            TenantDemand {
                name: "a".into(),
                frame_rate_hz: 10.0,
                demands: vec![demand("dma-req", L, 30.0)],
            },
            TenantDemand {
                name: "b".into(),
                frame_rate_hz: 5.0,
                demands: vec![demand("dma-req", L, 40.0)],
            },
        ];
        let analysis = analyze(&tenants, 1000.0);
        assert_eq!(analysis.links.len(), 1);
        let lu = &analysis.links[0];
        assert!((lu.flits_per_sec - 500.0).abs() < 1e-9);
        assert!((lu.utilization - 0.5).abs() < 1e-9);
        assert_eq!(analysis.saturated().count(), 0);
        // a sees b's 200 flits/s: slowdown 1/(1-0.2) = 1.25.
        let a = &analysis.tenants[0];
        assert!((a.slowdown_bound - 1.25).abs() < 1e-9, "{a:?}");
        // b sees a's 300 flits/s: slowdown 1/(1-0.3).
        let b = &analysis.tenants[1];
        assert!((b.slowdown_bound - 1.0 / 0.7).abs() < 1e-9, "{b:?}");
    }

    #[test]
    fn oversubscribed_link_is_saturated_and_bound_is_infinite() {
        let tenants = vec![
            TenantDemand {
                name: "hog".into(),
                frame_rate_hz: 100.0,
                demands: vec![demand("dma-rsp", L, 20.0)],
            },
            TenantDemand {
                name: "victim".into(),
                frame_rate_hz: 1.0,
                demands: vec![demand("dma-rsp", L, 1.0)],
            },
        ];
        let analysis = analyze(&tenants, 1000.0);
        assert_eq!(analysis.saturated().count(), 1);
        let victim = analysis.tenants.iter().find(|t| t.name == "victim");
        assert!(victim.unwrap().slowdown_bound.is_infinite());
    }

    #[test]
    fn lone_tenant_has_unit_bound() {
        let tenants = vec![TenantDemand {
            name: "solo".into(),
            frame_rate_hz: 30.0,
            demands: vec![demand("dma-req", L, 100.0)],
        }];
        let analysis = analyze(&tenants, 1_000_000.0);
        assert!((analysis.tenants[0].slowdown_bound - 1.0).abs() < 1e-12);
        assert!(analysis.tenants[0].bottleneck.is_some());
    }

    #[test]
    fn duplicate_demand_entries_accumulate() {
        let tenants = vec![TenantDemand {
            name: "a".into(),
            frame_rate_hz: 1.0,
            demands: vec![demand("dma-req", L, 10.0), demand("dma-req", L, 15.0)],
        }];
        let analysis = analyze(&tenants, 100.0);
        assert!((analysis.links[0].flits_per_sec - 25.0).abs() < 1e-9);
    }

    #[test]
    fn tenant_with_no_demand_has_no_bottleneck() {
        let tenants = vec![TenantDemand {
            name: "idle".into(),
            frame_rate_hz: 30.0,
            demands: vec![],
        }];
        let analysis = analyze(&tenants, 1000.0);
        assert_eq!(analysis.tenants[0].slowdown_bound, 1.0);
        assert!(analysis.tenants[0].bottleneck.is_none());
    }
}
