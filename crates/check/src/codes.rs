//! The stable error-code registry.
//!
//! Codes are grouped by the layer that owns the rule:
//!
//! | Range   | Layer |
//! |---------|-------|
//! | `E01xx` | SoC floorplan (tile map) |
//! | `E02xx` | Dataflow structure |
//! | `E03xx` | Dataflow-to-SoC mapping and NoC routing |
//! | `E04xx` | Runtime sanitizer invariants |
//! | `E05xx` | Deadlock diagnosis |
//! | `E06xx` | Fault-plan lints |
//!
//! Once published a code never changes meaning; retired rules leave a
//! hole rather than being reused. CI scripts may match on these strings.

/// `E0101`: two tiles occupy the same mesh coordinate.
pub const DUPLICATE_TILE: &str = "E0101";
/// `E0102`: a tile lies outside the mesh bounds and is unreachable.
pub const TILE_OUT_OF_BOUNDS: &str = "E0102";
/// `E0103`: the floorplan lacks a required tile (processor or memory).
pub const MISSING_REQUIRED_TILE: &str = "E0103";
/// `E0104`: two accelerator tiles share a device name.
pub const DUPLICATE_DEVICE_NAME: &str = "E0104";

/// `E0201`: the dataflow has no stages.
pub const EMPTY_DATAFLOW: &str = "E0201";
/// `E0202`: a stage has no device instances.
pub const EMPTY_STAGE: &str = "E0202";
/// `E0203`: a stage exceeds the `P2P_REG` fan-in limit of 4 sources.
pub const STAGE_FAN_IN: &str = "E0203";
/// `E0204`: adjacent stage widths are neither equal nor fan-in-to-one.
pub const STAGE_WIDTHS: &str = "E0204";
/// `E0205`: a device appears in more than one stage slot.
pub const DUPLICATE_STAGE_DEVICE: &str = "E0205";
/// `E0206`: the dataflow JSON failed to parse.
pub const DATAFLOW_PARSE: &str = "E0206";

/// `E0301`: a dataflow stage names a device the SoC does not host.
pub const UNMAPPED_DEVICE: &str = "E0301";
/// `E0302`: the p2p routes form a channel-dependency-graph cycle — a
/// wormhole deadlock risk on that plane.
pub const CDG_CYCLE: &str = "E0302";
/// `E0303`: a message was injected on a plane that does not carry its
/// kind (plane misassignment breaks the deadlock-avoidance argument).
pub const PLANE_MISASSIGNMENT: &str = "E0303";
/// `E0304`: an accelerator's PLM is too small for its model footprint.
pub const PLM_OVERFLOW: &str = "E0304";
/// `W0305`: a frame working set needs more TLB entries than the socket
/// provides; every frame will pay miss penalties.
pub const TLB_PRESSURE: &str = "W0305";

/// `E0401`: per-link credit conservation violated (shadow occupancy
/// disagrees with the router queue).
pub const CREDIT_CONSERVATION: &str = "E0401";
/// `E0402`: flit conservation violated (injected != ejected + in-flight).
pub const FLIT_CONSERVATION: &str = "E0402";
/// `E0403`: wormhole non-interleaving violated at an ejection port.
pub const WORMHOLE_INTERLEAVING: &str = "E0403";
/// `E0404`: DMA byte accounting mismatch at an idle boundary.
pub const DMA_ACCOUNTING: &str = "E0404";

/// `E0501`: the wait-for graph at timeout contains a cycle or a stalled
/// chain (deadlock diagnosis attached to `RunOutcome::TimedOut`).
pub const DEADLOCK: &str = "E0501";

/// `E0601`: a fault plan targets a device the SoC does not host.
pub const FAULT_UNKNOWN_DEVICE: &str = "E0601";
/// `E0602`: a fault plan names a NoC plane index outside the mesh.
pub const FAULT_BAD_PLANE: &str = "E0602";
/// `W0603`: a fault plan schedules no faults (nothing will be injected).
pub const FAULT_EMPTY_PLAN: &str = "W0603";

/// One registry row: code, summary.
pub const ALL: &[(&str, &str)] = &[
    (DUPLICATE_TILE, "two tiles occupy the same mesh coordinate"),
    (TILE_OUT_OF_BOUNDS, "tile outside the mesh bounds"),
    (MISSING_REQUIRED_TILE, "missing processor or memory tile"),
    (DUPLICATE_DEVICE_NAME, "duplicate accelerator device name"),
    (EMPTY_DATAFLOW, "dataflow has no stages"),
    (EMPTY_STAGE, "stage has no device instances"),
    (STAGE_FAN_IN, "stage exceeds the P2P_REG fan-in limit"),
    (STAGE_WIDTHS, "illegal stage width transition"),
    (
        DUPLICATE_STAGE_DEVICE,
        "device appears twice in the dataflow",
    ),
    (DATAFLOW_PARSE, "dataflow JSON parse failure"),
    (UNMAPPED_DEVICE, "stage device missing from the SoC"),
    (CDG_CYCLE, "p2p routes form a channel-dependency cycle"),
    (
        PLANE_MISASSIGNMENT,
        "message injected on the wrong NoC plane",
    ),
    (PLM_OVERFLOW, "PLM smaller than the model footprint"),
    (TLB_PRESSURE, "frame working set exceeds the socket TLB"),
    (CREDIT_CONSERVATION, "per-link credit conservation violated"),
    (FLIT_CONSERVATION, "flit conservation violated"),
    (WORMHOLE_INTERLEAVING, "wormhole non-interleaving violated"),
    (DMA_ACCOUNTING, "DMA byte accounting mismatch"),
    (DEADLOCK, "wait-for graph deadlock at timeout"),
    (FAULT_UNKNOWN_DEVICE, "fault plan targets an unknown device"),
    (FAULT_BAD_PLANE, "fault plan names an invalid NoC plane"),
    (FAULT_EMPTY_PLAN, "fault plan schedules no faults"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for (code, summary) in ALL {
            assert!(seen.insert(code), "duplicate code {code}");
            assert!(!summary.is_empty());
            assert_eq!(code.len(), 5, "{code}");
            assert!(code.starts_with('E') || code.starts_with('W'), "{code}");
            assert!(code[1..].chars().all(|c| c.is_ascii_digit()), "{code}");
        }
    }
}
