//! The stable error-code registry.
//!
//! Codes are grouped by the layer that owns the rule:
//!
//! | Range   | Layer |
//! |---------|-------|
//! | `E01xx` | SoC floorplan (tile map) |
//! | `E02xx` | Dataflow structure |
//! | `E03xx` | Dataflow-to-SoC mapping and NoC routing |
//! | `E04xx` | Runtime sanitizer invariants |
//! | `E05xx` | Deadlock diagnosis |
//! | `E06xx` | Fault-plan lints |
//! | `E07xx` | Multi-tenant deployment analysis |
//!
//! Once published a code never changes meaning; retired rules leave a
//! hole rather than being reused. CI scripts may match on these strings.
//!
//! `espcheck --explain <CODE>` prints the long-form explanation kept
//! alongside each code in [`ALL`].

/// `E0101`: two tiles occupy the same mesh coordinate.
pub const DUPLICATE_TILE: &str = "E0101";
/// `E0102`: a tile lies outside the mesh bounds and is unreachable.
pub const TILE_OUT_OF_BOUNDS: &str = "E0102";
/// `E0103`: the floorplan lacks a required tile (processor or memory).
pub const MISSING_REQUIRED_TILE: &str = "E0103";
/// `E0104`: two accelerator tiles share a device name.
pub const DUPLICATE_DEVICE_NAME: &str = "E0104";

/// `E0201`: the dataflow has no stages.
pub const EMPTY_DATAFLOW: &str = "E0201";
/// `E0202`: a stage has no device instances.
pub const EMPTY_STAGE: &str = "E0202";
/// `E0203`: a stage exceeds the `P2P_REG` fan-in limit of 4 sources.
pub const STAGE_FAN_IN: &str = "E0203";
/// `E0204`: adjacent stage widths are neither equal nor fan-in-to-one.
pub const STAGE_WIDTHS: &str = "E0204";
/// `E0205`: a device appears in more than one stage slot.
pub const DUPLICATE_STAGE_DEVICE: &str = "E0205";
/// `E0206`: the dataflow JSON failed to parse.
pub const DATAFLOW_PARSE: &str = "E0206";

/// `E0301`: a dataflow stage names a device the SoC does not host.
pub const UNMAPPED_DEVICE: &str = "E0301";
/// `E0302`: the p2p routes form a channel-dependency-graph cycle — a
/// wormhole deadlock risk on that plane.
pub const CDG_CYCLE: &str = "E0302";
/// `E0303`: a message was injected on a plane that does not carry its
/// kind (plane misassignment breaks the deadlock-avoidance argument).
pub const PLANE_MISASSIGNMENT: &str = "E0303";
/// `E0304`: an accelerator's PLM is too small for its model footprint.
pub const PLM_OVERFLOW: &str = "E0304";
/// `W0305`: a frame working set needs more TLB entries than the socket
/// provides; every frame will pay miss penalties.
pub const TLB_PRESSURE: &str = "W0305";

/// `E0401`: per-link credit conservation violated (shadow occupancy
/// disagrees with the router queue).
pub const CREDIT_CONSERVATION: &str = "E0401";
/// `E0402`: flit conservation violated (injected != ejected + in-flight).
pub const FLIT_CONSERVATION: &str = "E0402";
/// `E0403`: wormhole non-interleaving violated at an ejection port.
pub const WORMHOLE_INTERLEAVING: &str = "E0403";
/// `E0404`: DMA byte accounting mismatch at an idle boundary.
pub const DMA_ACCOUNTING: &str = "E0404";

/// `E0501`: the wait-for graph at timeout contains a cycle or a stalled
/// chain (deadlock diagnosis attached to `RunOutcome::TimedOut`).
pub const DEADLOCK: &str = "E0501";

/// `E0601`: a fault plan targets a device the SoC does not host.
pub const FAULT_UNKNOWN_DEVICE: &str = "E0601";
/// `E0602`: a fault plan names a NoC plane index outside the mesh.
pub const FAULT_BAD_PLANE: &str = "E0602";
/// `W0603`: a fault plan schedules no faults (nothing will be injected).
pub const FAULT_EMPTY_PLAN: &str = "W0603";

/// `E0701`: two tenants of a deployment lease the same device without
/// both declaring it shared.
pub const LEASE_CONFLICT: &str = "E0701";
/// `E0702`: the composed PLM footprint of all tenants sharing a tile
/// exceeds the tile's declared budget.
pub const COMPOSED_PLM_OVERFLOW: &str = "E0702";
/// `E0703`: the union of all tenants' routes closes a cross-tenant
/// channel-dependency cycle — a wormhole deadlock only composition can
/// create (each tenant alone may be acyclic).
pub const UNION_CDG_CYCLE: &str = "E0703";
/// `E0704`: the summed static bandwidth demand on a NoC link exceeds
/// its capacity; the deployment cannot meet every frame-rate target.
pub const BANDWIDTH_INFEASIBLE: &str = "E0704";
/// `E0705`: the deployment description itself is malformed (duplicate
/// tenant names, empty tenant set, or a non-positive frame-rate target).
pub const DEPLOYMENT_MALFORMED: &str = "E0705";
/// `W0706`: a tenant requests YX routing, which the analyzer models but
/// the runtime NoC does not implement yet.
pub const ROUTING_UNSUPPORTED: &str = "W0706";

/// One registry row: code, one-line summary, long-form explanation (the
/// text `espcheck --explain <CODE>` prints).
pub const ALL: &[(&str, &str, &str)] = &[
    (
        DUPLICATE_TILE,
        "two tiles occupy the same mesh coordinate",
        "Two tiles of the floorplan are placed at the same (x, y) mesh \
         coordinate. Every grid position holds at most one tile; the NoC \
         router at that coordinate can serve only one local port.",
    ),
    (
        TILE_OUT_OF_BOUNDS,
        "tile outside the mesh bounds",
        "A tile's (x, y) coordinate lies outside the declared cols x rows \
         mesh. No router exists there, so the tile would be unreachable. \
         Grow the mesh or move the tile inside the grid.",
    ),
    (
        MISSING_REQUIRED_TILE,
        "missing processor or memory tile",
        "Every ESP SoC needs at least one processor tile (to run the \
         software stack) and one memory tile (to back DMA). The floorplan \
         declares neither of one kind.",
    ),
    (
        DUPLICATE_DEVICE_NAME,
        "duplicate accelerator device name",
        "Two accelerator tiles share a device name. The runtime probes \
         devices by name, so names must be unique across the floorplan.",
    ),
    (
        EMPTY_DATAFLOW,
        "dataflow has no stages",
        "The dataflow declares no stages; there is nothing to run.",
    ),
    (
        EMPTY_STAGE,
        "stage has no device instances",
        "A dataflow stage lists no device instances. Every stage needs at \
         least one accelerator to do its work.",
    ),
    (
        STAGE_FAN_IN,
        "stage exceeds the P2P_REG fan-in limit",
        "A stage consumes from more than 4 upstream instances. The socket \
         P2P_REG encodes at most 4 source tiles, so wider fan-in cannot \
         be configured in hardware.",
    ),
    (
        STAGE_WIDTHS,
        "illegal stage width transition",
        "Adjacent stage widths must be equal (instance i feeds instance \
         i) or fan in to one (a single consumer round-robins over all \
         producers). Any other transition has no defined frame routing.",
    ),
    (
        DUPLICATE_STAGE_DEVICE,
        "device appears twice in the dataflow",
        "The same device name appears in more than one stage slot. An \
         accelerator cannot be two pipeline stages at once.",
    ),
    (
        DATAFLOW_PARSE,
        "dataflow JSON parse failure",
        "The JSON input does not parse or does not match the expected \
         schema. See configs/soc1.json and configs/deploy_ok.json for \
         reference schemas.",
    ),
    (
        UNMAPPED_DEVICE,
        "stage device missing from the SoC",
        "The dataflow references a device the floorplan does not provide. \
         Add the accelerator tile or fix the device name.",
    ),
    (
        CDG_CYCLE,
        "p2p routes form a channel-dependency cycle",
        "The routes of the traffic pattern close a cycle in the channel \
         dependency graph of one NoC plane. By Dally & Seitz, an acyclic \
         CDG is necessary and sufficient for wormhole deadlock freedom, \
         so this route set can deadlock. Dimension-order (XY) routing is \
         provably acyclic; this fires for custom routing tables.",
    ),
    (
        PLANE_MISASSIGNMENT,
        "message injected on the wrong NoC plane",
        "A message was injected on a NoC plane that does not carry its \
         kind. Plane separation is what makes the per-plane deadlock \
         argument compositional; breaking it voids the analysis.",
    ),
    (
        PLM_OVERFLOW,
        "PLM smaller than the model footprint",
        "The accelerator's private local memory budget is smaller than \
         the model's buffer footprint (a double-buffered input plus the \
         output buffer). Raise plm_words or shrink the frame.",
    ),
    (
        TLB_PRESSURE,
        "frame working set exceeds the socket TLB",
        "The per-invocation working set needs more page-table entries \
         than the socket TLB holds (32 pages), so every frame pays \
         page-walk penalties. Warning only: correct but slow.",
    ),
    (
        CREDIT_CONSERVATION,
        "per-link credit conservation violated",
        "The sanitizer's shadow occupancy for a link disagrees with the \
         router queue: credits were created or destroyed. Indicates a \
         flow-control bug (or an injected credit-leak fault).",
    ),
    (
        FLIT_CONSERVATION,
        "flit conservation violated",
        "Flits injected into a plane do not equal flits ejected plus \
         flits in flight. Something dropped or duplicated a flit.",
    ),
    (
        WORMHOLE_INTERLEAVING,
        "wormhole non-interleaving violated",
        "Two worms interleaved at an ejection port: a packet's flits must \
         arrive contiguously per (plane, port). Indicates a router \
         arbitration bug.",
    ),
    (
        DMA_ACCOUNTING,
        "DMA byte accounting mismatch",
        "At an idle boundary, bytes moved by DMA engines disagree with \
         bytes delivered to PLMs/DRAM. Something lost or invented data.",
    ),
    (
        DEADLOCK,
        "wait-for graph deadlock at timeout",
        "The run timed out and the wait-for graph over tiles and planes \
         contains a cycle or a stalled chain; the diagnosis names it. \
         Attached to RunOutcome::TimedOut.",
    ),
    (
        FAULT_UNKNOWN_DEVICE,
        "fault plan targets an unknown device",
        "The fault plan schedules an injection against a device name the \
         selected SoC does not host; the campaign would silently inject \
         nothing.",
    ),
    (
        FAULT_BAD_PLANE,
        "fault plan names an invalid NoC plane",
        "The fault plan names a NoC plane index outside the mesh's six \
         planes.",
    ),
    (
        FAULT_EMPTY_PLAN,
        "fault plan schedules no faults",
        "The fault plan parses but schedules nothing; the campaign would \
         measure a clean run. Warning only.",
    ),
    (
        LEASE_CONFLICT,
        "two tenants lease the same device",
        "Two tenants of a deployment map the same accelerator device \
         without every user declaring it in shared_devices. Devices are \
         leased exclusively by default because concurrent invocations \
         interleave PLM state; declare the device shared in every tenant \
         that uses it to opt into time-sharing.",
    ),
    (
        COMPOSED_PLM_OVERFLOW,
        "composed PLM footprint exceeds the tile budget",
        "A device is legitimately shared by several tenants, but the sum \
         of their per-tenant buffer footprints (double-buffered input + \
         output each) exceeds the tile's declared plm_words budget. \
         Time-sharing does not shrink resident buffers: each tenant's \
         frames must stay resident across interleavings.",
    ),
    (
        UNION_CDG_CYCLE,
        "cross-tenant routes close a channel-dependency cycle",
        "The union of all tenants' routes on one NoC plane closes a \
         channel-dependency cycle even though each tenant alone may be \
         acyclic. Composition creates the deadlock: a worm of tenant A \
         can hold a link a worm of tenant B needs and vice versa. Fires \
         when tenants mix routing disciplines (e.g. XY with YX); an \
         all-XY deployment can never trigger it.",
    ),
    (
        BANDWIDTH_INFEASIBLE,
        "summed link demand exceeds NoC link capacity",
        "Summing every tenant's static per-link flit demand (stage \
         widths x burst sizes x frame-rate target) exceeds a link's \
         capacity of one flit per cycle. At least one tenant must miss \
         its frame-rate target; the per-tenant slowdown bounds in the \
         deployment report quantify by how much.",
    ),
    (
        DEPLOYMENT_MALFORMED,
        "deployment description is malformed",
        "The deployment parses as JSON but is not analyzable: an empty \
         tenant set, duplicate tenant names, or a non-positive frame-rate \
         target.",
    ),
    (
        ROUTING_UNSUPPORTED,
        "tenant requests a routing discipline the NoC does not implement",
        "The analyzer models XY and YX dimension-order routing, but the \
         runtime NoC currently implements only XY. A YX tenant can be \
         analyzed (and is essential for exhibiting union-CDG cycles) but \
         cannot yet be simulated faithfully. Warning only.",
    ),
];

/// Looks up the long-form explanation for a stable code (the text
/// behind `espcheck --explain`). Returns `None` for unknown codes.
pub fn explain(code: &str) -> Option<(&'static str, &'static str)> {
    ALL.iter()
        .find(|(c, _, _)| *c == code)
        .map(|&(_, summary, explanation)| (summary, explanation))
}

/// Interns a code string back to its registry `&'static str` — the
/// inverse of serializing a [`crate::Diagnostic`], used when findings
/// come back from JSON (e.g. a restored simulation snapshot). Returns
/// `None` for codes not in [`ALL`].
pub fn canonical(code: &str) -> Option<&'static str> {
    ALL.iter().find(|(c, _, _)| *c == code).map(|&(c, _, _)| c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for (code, summary, explanation) in ALL {
            assert!(seen.insert(code), "duplicate code {code}");
            assert!(!summary.is_empty());
            assert!(!explanation.is_empty());
            assert_eq!(code.len(), 5, "{code}");
            assert!(code.starts_with('E') || code.starts_with('W'), "{code}");
            assert!(code[1..].chars().all(|c| c.is_ascii_digit()), "{code}");
        }
    }

    /// The registry contract: every constant matches `[EW]0[0-9]{3}`,
    /// and the module-doc family table names every family in use.
    #[test]
    fn registry_contract_codes_and_family_table() {
        let source = include_str!("codes.rs");
        for (code, _, _) in ALL {
            let bytes = code.as_bytes();
            assert!(
                (bytes[0] == b'E' || bytes[0] == b'W')
                    && bytes[1] == b'0'
                    && bytes[2..].iter().all(u8::is_ascii_digit),
                "{code} does not match [EW]0[0-9]{{3}}"
            );
            // The family is the second and third digit pair; warnings
            // share their family row with the errors of that layer.
            let family = format!("`E{}xx`", &code[1..3]);
            assert!(
                source.contains(&family),
                "family table is missing a row for {family} (used by {code})"
            );
        }
    }

    #[test]
    fn explain_finds_known_codes_only() {
        let (summary, explanation) = explain(CDG_CYCLE).expect("E0302 is registered");
        assert!(summary.contains("channel-dependency"));
        assert!(explanation.contains("Dally"));
        assert!(explain("E9999").is_none());
        assert!(explain("").is_none());
    }
}
