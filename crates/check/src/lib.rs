//! Typed diagnostics and design-rule checking for the ESP4ML flow.
//!
//! ESP4ML is a *design flow*: SoC floorplans and p2p dataflow pipelines
//! are composed from reusable parts and must be correct by construction
//! before they reach silicon. The ESP GUI enforces its design rules at
//! composition time; this crate is the analog for the reproduction — a
//! shared diagnostic data model (stable error codes, severities,
//! locations, fix hints) plus the pure analyses behind the `espcheck`
//! static linter and the runtime invariant sanitizer.
//!
//! The crate sits at the bottom of the dependency stack on purpose: the
//! NoC, SoC, runtime and application layers all *emit* [`Diagnostic`]s,
//! so none of them can be a dependency of this one. Everything here is
//! plain data and pure functions.
//!
//! * [`Diagnostic`] / [`Severity`] / [`Report`] — the data model.
//! * [`codes`] — the stable error-code registry (`E0101`, …).
//! * [`cdg`] — channel-dependency-graph deadlock analysis for wormhole
//!   routes, single-tenant and union (multi-tenant) alike.
//! * [`bw`] — static NoC bandwidth-feasibility math: per-link
//!   utilization from composed tenant demands and the per-tenant
//!   worst-case slowdown bound.
//! * [`SanitizerConfig`] — which runtime invariants the sanitizer
//!   enforces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bw;
pub mod cdg;
pub mod codes;
mod diag;
mod sanitize;

pub use diag::{Diagnostic, Report, Severity};
pub use sanitize::SanitizerConfig;
