//! Configuration of the runtime invariant sanitizer.

use serde::{Deserialize, Serialize};

/// Which invariants the runtime sanitizer enforces.
///
/// Each flag maps to one family of checks (and one error code):
/// per-link credit conservation (`E0401`), flit conservation (`E0402`),
/// wormhole non-interleaving (`E0403`), NoC plane assignment (`E0303`)
/// and DMA byte accounting at idle boundaries (`E0404`). The default is
/// everything on — the cost is paid only when a sanitizer is installed,
/// never on plain runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanitizerConfig {
    /// Check shadow link occupancy against the router queues (`E0401`).
    pub credits: bool,
    /// Check injected == ejected + in-flight per plane (`E0402`).
    pub flits: bool,
    /// Check packets never interleave at ejection ports (`E0403`).
    pub wormhole: bool,
    /// Check every message rides a plane that carries its kind (`E0303`).
    pub planes: bool,
    /// Check end-to-end DMA/p2p word accounting when idle (`E0404`).
    pub dma_accounting: bool,
}

impl SanitizerConfig {
    /// Every invariant enabled.
    pub fn all() -> Self {
        SanitizerConfig {
            credits: true,
            flits: true,
            wormhole: true,
            planes: true,
            dma_accounting: true,
        }
    }

    /// Only the NoC-level invariants (what a bare mesh can check).
    pub fn noc_only() -> Self {
        SanitizerConfig {
            dma_accounting: false,
            ..SanitizerConfig::all()
        }
    }
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig::all()
    }
}
