//! The diagnostic data model shared by the static linter and the
//! runtime sanitizer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is.
///
/// The ordering is meaningful: `Warning < Error`, so a report can be
/// sorted most-severe-last and gated on its maximum severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Severity {
    /// Suspicious but not necessarily wrong; does not fail `espcheck`.
    Warning,
    /// A design-rule or invariant violation; fails `espcheck` and the
    /// sanitizer verdict.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One typed finding, static or runtime.
///
/// The `code` is stable across releases (see [`crate::codes`]); tools
/// and CI scripts may match on it. The `location` is a human-readable
/// path into the design ("soc1/tile(1,0)", "dataflow/stage 2",
/// "router(2,1) plane dma-rsp port N"), not a file position — the
/// design being linted is a configuration, not source text.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct Diagnostic {
    /// Stable error code, e.g. `"E0101"`.
    pub code: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Where in the design the finding points.
    pub location: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when a fix is known (`null` in JSON otherwise).
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
            hint: None,
        }
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            location: location.into(),
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches a fix hint.
    #[must_use]
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl Deserialize for Diagnostic {
    /// Deserializes a finding, interning `code` back to its registry
    /// `&'static str` via [`crate::codes::canonical`]. Codes absent
    /// from the registry are rejected: a diagnostic that round-trips
    /// through JSON (snapshot restore, report ingestion) must compare
    /// equal to one emitted live.
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected diagnostic object"))?;
        let field = |key: &str| {
            obj.get(key)
                .ok_or_else(|| serde::Error::custom(format!("missing diagnostic field {key:?}")))
        };
        let code_str = String::from_value(field("code")?)?;
        let code = crate::codes::canonical(&code_str).ok_or_else(|| {
            serde::Error::custom(format!("unknown diagnostic code {code_str:?}"))
        })?;
        Ok(Diagnostic {
            code,
            severity: Severity::from_value(field("severity")?)?,
            location: String::from_value(field("location")?)?,
            message: String::from_value(field("message")?)?,
            hint: match obj.get("hint") {
                Some(v) => Option::<String>::from_value(v)?,
                None => None,
            },
        })
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )?;
        if let Some(hint) = &self.hint {
            write!(f, "\n  help: {hint}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

/// An ordered collection of diagnostics for one lint target.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct Report {
    /// The findings, in emission order until [`Report::normalize`].
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds one finding.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Sorts by (code, severity, location, message) and removes exact
    /// duplicates, so repeated checks of a persistent condition produce
    /// one finding and reports compare bytewise across engines.
    pub fn normalize(&mut self) {
        self.diagnostics.sort();
        self.diagnostics.dedup();
    }

    /// Whether any finding has error severity.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether the report has no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the findings one per line (with hints indented below).
    ///
    /// Rendering always works on a normalized view — sorted by
    /// (code, severity, location, …) and de-duplicated — so the output
    /// is byte-stable regardless of emission order. Deployment reports
    /// aggregate findings across K tenants; without this, map iteration
    /// order would leak into the bytes.
    pub fn render_text(&self) -> String {
        let mut view = self.clone();
        view.normalize();
        let mut out = String::new();
        for d in &view.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codes;

    #[test]
    fn display_includes_code_and_hint() {
        let d = Diagnostic::error(codes::DUPLICATE_TILE, "soc1/tile(1,0)", "duplicate tile")
            .with_hint("move one of the tiles");
        let s = d.to_string();
        assert!(s.contains("error[E0101]"), "{s}");
        assert!(s.contains("help: move one of the tiles"), "{s}");
    }

    #[test]
    fn severity_orders_below_error() {
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_counts_and_normalize() {
        let mut r = Report::new();
        let d = Diagnostic::error(codes::DUPLICATE_TILE, "t", "m");
        r.push(d.clone());
        r.push(d);
        r.push(Diagnostic::warning(codes::TLB_PRESSURE, "t", "w"));
        assert!(r.has_errors());
        r.normalize();
        assert_eq!(r.diagnostics.len(), 2);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn render_is_byte_stable_across_emission_orders() {
        let a = Diagnostic::error(codes::LEASE_CONFLICT, "device x", "leased twice");
        let b = Diagnostic::error(codes::UNION_CDG_CYCLE, "plane dma-req", "cycle");
        let c = Diagnostic::warning(codes::ROUTING_UNSUPPORTED, "tenant t", "yx");
        let mut fwd = Report::new();
        for d in [a.clone(), b.clone(), c.clone(), b.clone()] {
            fwd.push(d);
        }
        let mut rev = Report::new();
        for d in [c, b.clone(), b, a] {
            rev.push(d);
        }
        assert_eq!(fwd.render_text(), rev.render_text());
        // Duplicates render once.
        assert_eq!(fwd.render_text().matches("E0703").count(), 1);
        // Rendering does not mutate the report itself.
        assert_eq!(fwd.diagnostics.len(), 4);
    }

    #[test]
    fn json_roundtrip_interns_the_code() {
        let d = Diagnostic::error(codes::CREDIT_CONSERVATION, "router(1,1)", "lost credit")
            .with_hint("check pop accounting");
        let json = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        // The code went through the registry, not through an owned
        // copy of whatever the JSON said. (Pointer identity with the
        // `const` is not checkable — consts are inlined per use site —
        // so assert the interning path itself.)
        assert_eq!(codes::canonical("E0401"), Some(back.code));
        // Unknown codes are rejected, not silently leaked.
        let bad = json.replace("E0401", "E9999");
        assert!(serde_json::from_str::<Diagnostic>(&bad).is_err());
    }

    #[test]
    fn serializes_with_stable_code() {
        let d = Diagnostic::error(codes::DUPLICATE_TILE, "t", "m");
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"code\":\"E0101\""), "{json}");
        assert!(json.contains("\"severity\":\"error\""), "{json}");
    }
}
