//! Channel-dependency-graph (CDG) deadlock analysis for wormhole routes.
//!
//! Dally & Seitz: a wormhole network is deadlock-free iff its channel
//! dependency graph is acyclic. The nodes of the CDG are the directed
//! physical links of one NoC plane; each route contributes a dependency
//! edge between every pair of consecutive links it traverses (a worm
//! holding link *a* while waiting for link *b*).
//!
//! The mesh simulator routes in dimension order (XY), which is provably
//! acyclic — so on a stock configuration the linter's `E0302` check is a
//! safety net. It earns its keep when routing tables are customized
//! (`Router::set_table`) or when a config mixes routing disciplines: the
//! analysis is purely geometric, so `espcheck` can flag a deadlocking
//! route set without simulating a single cycle.
//!
//! Everything here is pure: coordinates are `(x, y)` tuples, a link is a
//! directed coordinate pair, a route is the link sequence a packet
//! occupies in order.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A mesh coordinate as a plain `(x, y)` tuple.
pub type Node = (u8, u8);

/// A directed physical channel from one router to a neighbor.
pub type Link = (Node, Node);

/// A dimension-order routing discipline. Each discipline is acyclic on
/// its own; *mixing* them in one deployment is what can close a
/// cross-tenant channel-dependency cycle (`E0703`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Routing {
    /// X first, then Y — what the mesh simulator implements.
    #[default]
    Xy,
    /// Y first, then X — analyzer-only (see `W0706`).
    Yx,
}

impl Routing {
    /// The link sequence of this discipline's route from `src` to `dst`.
    pub fn route(self, src: Node, dst: Node) -> Vec<Link> {
        match self {
            Routing::Xy => xy_route(src, dst),
            Routing::Yx => yx_route(src, dst),
        }
    }

    /// Lower-case display name (`"xy"` / `"yx"`).
    pub fn label(self) -> &'static str {
        match self {
            Routing::Xy => "xy",
            Routing::Yx => "yx",
        }
    }
}

/// The link sequence of a dimension-order (XY) route from `src` to
/// `dst`: first along x, then along y. Empty when `src == dst`.
pub fn xy_route(src: Node, dst: Node) -> Vec<Link> {
    let mut links = Vec::new();
    let (mut x, mut y) = src;
    while x != dst.0 {
        let nx = if dst.0 > x { x + 1 } else { x - 1 };
        links.push(((x, y), (nx, y)));
        x = nx;
    }
    while y != dst.1 {
        let ny = if dst.1 > y { y + 1 } else { y - 1 };
        links.push(((x, y), (x, ny)));
        y = ny;
    }
    links
}

/// The link sequence of the transposed dimension-order (YX) route from
/// `src` to `dst`: first along y, then along x. Empty when `src == dst`.
pub fn yx_route(src: Node, dst: Node) -> Vec<Link> {
    let mut links = Vec::new();
    let (mut x, mut y) = src;
    while y != dst.1 {
        let ny = if dst.1 > y { y + 1 } else { y - 1 };
        links.push(((x, y), (x, ny)));
        y = ny;
    }
    while x != dst.0 {
        let nx = if dst.0 > x { x + 1 } else { x - 1 };
        links.push(((x, y), (nx, y)));
        x = nx;
    }
    links
}

/// Searches the channel dependency graph of `routes` for a cycle.
///
/// Returns the links of one cycle (each waiting on the next, the last
/// waiting on the first), or `None` when the CDG is acyclic and the
/// route set is wormhole-deadlock-free.
pub fn find_cycle(routes: &[Vec<Link>]) -> Option<Vec<Link>> {
    let mut deps: BTreeMap<Link, BTreeSet<Link>> = BTreeMap::new();
    for route in routes {
        for pair in route.windows(2) {
            deps.entry(pair[0]).or_default().insert(pair[1]);
            deps.entry(pair[1]).or_default();
        }
    }
    // Iterative DFS with an explicit on-stack path for cycle recovery.
    let mut state: BTreeMap<Link, u8> = BTreeMap::new(); // 1 = on stack, 2 = done
    for &start in deps.keys() {
        if state.contains_key(&start) {
            continue;
        }
        let mut path: Vec<(Link, Vec<Link>)> = Vec::new();
        let succs = deps[&start].iter().rev().copied().collect();
        path.push((start, succs));
        state.insert(start, 1);
        while let Some((node, succs)) = path.last_mut() {
            let node = *node;
            match succs.pop() {
                Some(next) => match state.get(&next) {
                    Some(1) => {
                        // Found: unwind the explicit stack from `next`.
                        let pos = path.iter().position(|(n, _)| *n == next).expect("on stack");
                        return Some(path[pos..].iter().map(|(n, _)| *n).collect());
                    }
                    Some(_) => {}
                    None => {
                        let nsuccs = deps[&next].iter().rev().copied().collect();
                        path.push((next, nsuccs));
                        state.insert(next, 1);
                    }
                },
                None => {
                    state.insert(node, 2);
                    path.pop();
                }
            }
        }
    }
    None
}

/// Convenience: the XY routes of a set of `(src, dst)` flows, ready for
/// [`find_cycle`].
pub fn xy_routes(flows: &[(Node, Node)]) -> Vec<Vec<Link>> {
    flows.iter().map(|&(s, d)| xy_route(s, d)).collect()
}

/// The union route set of flows that each carry their own routing
/// discipline — the multi-tenant generalization of [`xy_routes`]. The
/// CDG of the union is what decides cross-tenant deadlock freedom:
/// analyzing each tenant alone misses cycles that only composition
/// closes.
pub fn union_routes(flows: &[(Node, Node, Routing)]) -> Vec<Vec<Link>> {
    flows.iter().map(|&(s, d, r)| r.route(s, d)).collect()
}

/// Renders a link as `(x,y)->(x,y)` for diagnostics.
pub fn render_link(link: &Link) -> String {
    format!(
        "({},{})->({},{})",
        link.0 .0, link.0 .1, link.1 .0, link.1 .1
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_route_goes_x_then_y() {
        let r = xy_route((0, 0), (2, 1));
        assert_eq!(
            r,
            vec![((0, 0), (1, 0)), ((1, 0), (2, 0)), ((2, 0), (2, 1)),]
        );
        assert!(xy_route((3, 3), (3, 3)).is_empty());
    }

    #[test]
    fn xy_flows_are_deadlock_free() {
        // Dense all-to-all on a 4x4 mesh: XY must stay acyclic.
        let mut flows = Vec::new();
        for sx in 0..4u8 {
            for sy in 0..4u8 {
                for dx in 0..4u8 {
                    for dy in 0..4u8 {
                        if (sx, sy) != (dx, dy) {
                            flows.push(((sx, sy), (dx, dy)));
                        }
                    }
                }
            }
        }
        assert!(find_cycle(&xy_routes(&flows)).is_none());
    }

    #[test]
    fn turn_cycle_is_detected() {
        // Four YX-ish routes chasing each other around the unit square —
        // the canonical four-turn cycle XY routing forbids.
        let routes = vec![
            vec![((0, 0), (1, 0)), ((1, 0), (1, 1))],
            vec![((1, 0), (1, 1)), ((1, 1), (0, 1))],
            vec![((1, 1), (0, 1)), ((0, 1), (0, 0))],
            vec![((0, 1), (0, 0)), ((0, 0), (1, 0))],
        ];
        let cycle = find_cycle(&routes).expect("cycle");
        assert_eq!(cycle.len(), 4);
        // Every link in the reported cycle depends on its successor.
        for w in cycle.windows(2) {
            assert_eq!(w[0].1, w[1].0, "links must chain through a router");
        }
    }

    #[test]
    fn single_route_has_no_cycle() {
        let routes = vec![xy_route((0, 0), (3, 2))];
        assert!(find_cycle(&routes).is_none());
    }

    #[test]
    fn yx_route_goes_y_then_x() {
        let r = yx_route((0, 0), (2, 1));
        assert_eq!(
            r,
            vec![((0, 0), (0, 1)), ((0, 1), (1, 1)), ((1, 1), (2, 1)),]
        );
        assert!(yx_route((3, 3), (3, 3)).is_empty());
    }

    #[test]
    fn yx_flows_alone_are_deadlock_free() {
        // Dense all-to-all YX on a 4x4 mesh: one discipline is acyclic.
        let mut flows = Vec::new();
        for sx in 0..4u8 {
            for sy in 0..4u8 {
                for dx in 0..4u8 {
                    for dy in 0..4u8 {
                        if (sx, sy) != (dx, dy) {
                            flows.push(((sx, sy), (dx, dy), Routing::Yx));
                        }
                    }
                }
            }
        }
        assert!(find_cycle(&union_routes(&flows)).is_none());
    }

    #[test]
    fn mixed_disciplines_close_a_union_cycle() {
        // Each tenant alone is acyclic (pure XY / pure YX); the union
        // closes the canonical four-turn cycle around the unit square.
        let xy_flows = vec![((0, 0), (1, 1), Routing::Xy), ((1, 1), (0, 0), Routing::Xy)];
        let yx_flows = vec![((1, 0), (0, 1), Routing::Yx), ((0, 1), (1, 0), Routing::Yx)];
        assert!(find_cycle(&union_routes(&xy_flows)).is_none());
        assert!(find_cycle(&union_routes(&yx_flows)).is_none());
        let union: Vec<_> = xy_flows.iter().chain(&yx_flows).copied().collect();
        let cycle = find_cycle(&union_routes(&union)).expect("composition closes a cycle");
        assert_eq!(cycle.len(), 4);
    }
}
