//! Property tests of the union channel-dependency-graph analyzer.
//!
//! The multi-tenant deadlock check ([`cdg::find_cycle`] over
//! [`cdg::union_routes`]) must flag *exactly* the route sets whose
//! composed CDG has a cycle. The oracle here is a deliberately naive
//! recursive three-color DFS over a dependency graph built
//! independently from the same routes — a different traversal, a
//! different data layout, the same mathematical question.

use esp4ml_check::cdg::{self, Link, Node, Routing};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Naive recursive cycle oracle: white/grey/black DFS over the link
/// dependency relation (consecutive links of any route depend on each
/// other, in order).
fn oracle_has_cycle(routes: &[Vec<Link>]) -> bool {
    let mut deps: BTreeMap<Link, BTreeSet<Link>> = BTreeMap::new();
    for route in routes {
        for pair in route.windows(2) {
            deps.entry(pair[0]).or_default().insert(pair[1]);
            deps.entry(pair[1]).or_default();
        }
    }
    fn visit(
        node: Link,
        deps: &BTreeMap<Link, BTreeSet<Link>>,
        grey: &mut BTreeSet<Link>,
        black: &mut BTreeSet<Link>,
    ) -> bool {
        if black.contains(&node) {
            return false;
        }
        if !grey.insert(node) {
            return true;
        }
        if let Some(succs) = deps.get(&node) {
            for &next in succs {
                if visit(next, deps, grey, black) {
                    return true;
                }
            }
        }
        grey.remove(&node);
        black.insert(node);
        false
    }
    let keys: Vec<Link> = deps.keys().copied().collect();
    let mut grey = BTreeSet::new();
    let mut black = BTreeSet::new();
    keys.into_iter()
        .any(|k| visit(k, &deps, &mut grey, &mut black))
}

/// Checks a reported cycle really is one: every link's successor in the
/// returned sequence (cyclically) is a dependency some route induces.
fn is_real_cycle(cycle: &[Link], routes: &[Vec<Link>]) -> bool {
    if cycle.is_empty() {
        return false;
    }
    let mut deps: BTreeSet<(Link, Link)> = BTreeSet::new();
    for route in routes {
        for pair in route.windows(2) {
            deps.insert((pair[0], pair[1]));
        }
    }
    (0..cycle.len()).all(|i| deps.contains(&(cycle[i], cycle[(i + 1) % cycle.len()])))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The analyzer agrees with the naive oracle on random multi-tenant
    /// route sets over meshes up to 5×5, and any cycle it reports is a
    /// genuine dependency cycle of the union CDG.
    #[test]
    fn analyzer_matches_naive_oracle(
        cols in 2u8..=5,
        rows in 2u8..=5,
        seed_flows in proptest::collection::vec(
            (0u8..5, 0u8..5, 0u8..5, 0u8..5, proptest::bool::ANY), 1..16),
    ) {
        // Each flow stands in for one tenant's traffic: endpoints
        // folded into the mesh, a per-flow routing discipline.
        let flows: Vec<(Node, Node, Routing)> = seed_flows
            .into_iter()
            .map(|(sx, sy, dx, dy, yx)| {
                let routing = if yx { Routing::Yx } else { Routing::Xy };
                (((sx % cols), (sy % rows)), ((dx % cols), (dy % rows)), routing)
            })
            .collect();
        let routes = cdg::union_routes(&flows);
        let verdict = cdg::find_cycle(&routes);
        prop_assert_eq!(
            verdict.is_some(),
            oracle_has_cycle(&routes),
            "analyzer and oracle disagree on flows {:?}",
            flows
        );
        if let Some(cycle) = verdict {
            prop_assert!(
                is_real_cycle(&cycle, &routes),
                "reported cycle {:?} is not a dependency cycle",
                cycle
            );
        }
    }

    /// A single dimension-order discipline is always deadlock-free, no
    /// matter the flows — the classical Dally/Seitz guarantee the
    /// analyzer must never contradict.
    #[test]
    fn single_discipline_is_always_acyclic(
        cols in 2u8..=5,
        rows in 2u8..=5,
        yx in proptest::bool::ANY,
        seed_flows in proptest::collection::vec((0u8..5, 0u8..5, 0u8..5, 0u8..5), 1..24),
    ) {
        let routing = if yx { Routing::Yx } else { Routing::Xy };
        let flows: Vec<(Node, Node, Routing)> = seed_flows
            .into_iter()
            .map(|(sx, sy, dx, dy)| (((sx % cols), (sy % rows)), ((dx % cols), (dy % rows)), routing))
            .collect();
        let routes = cdg::union_routes(&flows);
        prop_assert!(cdg::find_cycle(&routes).is_none());
        prop_assert!(!oracle_has_cycle(&routes));
    }
}
