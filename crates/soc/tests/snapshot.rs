//! Snapshot/restore contract: `restore(snapshot(s))` resumes
//! byte-identically under both engines.
//!
//! "Byte-identically" is checked literally: after resuming to
//! quiescence, the *entire machine state* is serialized again and the
//! JSON must equal the uninterrupted reference run's — every register,
//! PLM word, DRAM span, queue, statistic, sampling row, sanitizer
//! ledger and fault trigger counter included.

use esp4ml_check::SanitizerConfig;
use esp4ml_fault::{FaultPlan, FaultSpec};
use esp4ml_noc::Coord;
use esp4ml_soc::{
    AccelConfig, ScaleKernel, Soc, SocBuilder, SocEngine, SocError, SocSnapshot,
};
use proptest::prelude::*;

const A: Coord = Coord { x: 0, y: 1 };
const B: Coord = Coord { x: 1, y: 1 };

fn build_soc(engine: SocEngine, sanitize: bool, sample_every: Option<u64>) -> Soc {
    let mut soc = SocBuilder::new(3, 2)
        .processor(Coord::new(0, 0))
        .memory(Coord::new(1, 0))
        .accelerator(
            Coord::new(0, 1),
            Box::new(ScaleKernel::new("a0", 16, 2).with_cycles_per_value(7)),
        )
        .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("a1", 16, 3)))
        .engine(engine)
        .build()
        .expect("valid floorplan");
    if sanitize {
        soc.enable_sanitizer(SanitizerConfig::all());
    }
    if let Some(every) = sample_every {
        soc.enable_counter_sampling(every);
    }
    soc
}

/// Configures and starts either a single DMA accelerator or a two-stage
/// p2p pipeline, exercising registers, page tables, PLM buffers, DVFS
/// and double buffering.
fn start_workload(soc: &mut Soc, p2p: bool, frames: u64, dbuf: bool, divider: u64) {
    for f in 0..frames {
        let vals: Vec<u64> = (0..16).map(|i| i + 10 * f).collect();
        soc.dram_write_values(f * 4, &vals, 16).unwrap();
    }
    soc.map_contiguous(A, 0, 4096).unwrap();
    soc.map_contiguous(B, 0, 4096).unwrap();
    if p2p {
        let mut ca = AccelConfig::dma_to_p2p(0, frames).with_dvfs_divider(divider);
        let mut cb = AccelConfig::p2p_to_dma(vec![A], 100, frames);
        if dbuf {
            ca = ca.with_double_buffer();
            cb = cb.with_double_buffer();
        }
        soc.configure_accel(A, &ca).unwrap();
        soc.configure_accel(B, &cb).unwrap();
        soc.start_accel(A).unwrap();
        soc.start_accel(B).unwrap();
    } else {
        let mut ca = AccelConfig::dma_to_dma(0, 100, frames).with_dvfs_divider(divider);
        if dbuf {
            ca = ca.with_double_buffer();
        }
        soc.configure_accel(A, &ca).unwrap();
        soc.start_accel(A).unwrap();
    }
}

/// Runs to quiescence and serializes the complete final machine state.
fn final_image(soc: &mut Soc) -> String {
    assert!(soc.run_until_idle(1_000_000).is_idle(), "workload stuck");
    serde_json::to_string(&soc.snapshot()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pause a random workload at a random cycle, snapshot, let the
    /// original run finish, then restore the snapshot — onto the same
    /// SoC and onto a freshly built one, under a randomly different
    /// engine — and check the resumed runs reach the exact same final
    /// machine state.
    #[test]
    fn restore_resumes_byte_identically(
        p2p in proptest::bool::ANY,
        dbuf in proptest::bool::ANY,
        frames in 1u64..=3,
        divider in 1u64..=3,
        pause in 1u64..=3000,
        start_naive in proptest::bool::ANY,
        resume_naive in proptest::bool::ANY,
        sanitize in proptest::bool::ANY,
    ) {
        let start_engine = if start_naive { SocEngine::Naive } else { SocEngine::EventDriven };
        let resume_engine = if resume_naive { SocEngine::Naive } else { SocEngine::EventDriven };
        let mut soc = build_soc(start_engine, sanitize, Some(7));
        start_workload(&mut soc, p2p, frames, dbuf, divider);
        soc.run_cycles(pause);
        let snap = soc.snapshot();

        // The uninterrupted reference continuation.
        let reference = final_image(&mut soc);
        let ref_cycle = soc.cycle();

        // Resume on the same SoC, possibly under the other engine.
        soc.set_engine(resume_engine);
        soc.restore(&snap).unwrap();
        prop_assert!(soc.run_until_idle(1_000_000).is_idle());
        prop_assert_eq!(soc.cycle(), ref_cycle);
        prop_assert_eq!(&serde_json::to_string(&soc.snapshot()).unwrap(), &reference);

        // Resume on a freshly built SoC (sanitizer/sampling state come
        // from the snapshot, not the builder).
        let mut fresh = build_soc(resume_engine, false, None);
        fresh.restore(&snap).unwrap();
        prop_assert_eq!(&final_image(&mut fresh), &reference);
    }
}

/// The snapshot survives a JSON encode/decode and the decoded copy
/// resumes a fresh SoC to the identical final state (the persistence
/// path a checkpoint file takes).
#[test]
fn snapshot_json_roundtrip_resumes_identically() {
    let mut soc = build_soc(SocEngine::EventDriven, true, Some(13));
    start_workload(&mut soc, true, 3, true, 2);
    soc.run_cycles(500);
    let snap = soc.snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: SocSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap, "decode must reproduce the snapshot exactly");

    let reference = final_image(&mut soc);
    let mut fresh = build_soc(SocEngine::Naive, false, None);
    fresh.restore(&back).unwrap();
    assert_eq!(final_image(&mut fresh), reference);
}

/// Restoring replaces fault state wholesale: a plan installed after the
/// snapshot is uninstalled by the restore, and a plan captured *in* the
/// snapshot resumes with its trigger counts intact.
#[test]
fn restore_replaces_fault_plans_wholesale() {
    // Fault-free snapshot, then arm a plan: restore must disarm it.
    let mut soc = build_soc(SocEngine::EventDriven, false, None);
    start_workload(&mut soc, false, 2, false, 1);
    let clean = soc.snapshot();
    let plan = FaultPlan::new(1).with(FaultSpec::transient_hang("a0", 0));
    assert_eq!(soc.install_fault_plan(&plan), 1);
    soc.restore(&clean).unwrap();
    assert!(soc.run_until_idle(1_000_000).is_idle());
    assert_eq!(soc.faults_injected(), 0, "restored run must be fault-free");
    assert_eq!(soc.take_irqs(), vec![A], "batch must complete normally");

    // Armed snapshot: the trigger counters travel with it.
    let mut faulty = build_soc(SocEngine::EventDriven, false, None);
    assert_eq!(faulty.install_fault_plan(&plan), 1);
    start_workload(&mut faulty, false, 2, false, 1);
    assert!(faulty.run_until_idle(1_000_000).is_idle());
    assert_eq!(faulty.faults_injected(), 1, "hang must have fired");
    let armed = faulty.snapshot();

    let mut fresh = build_soc(SocEngine::Naive, false, None);
    fresh.restore(&armed).unwrap();
    assert_eq!(
        fresh.faults_injected(),
        1,
        "fired counter must survive the restore"
    );
    // The transient hang already fired at invocation 0; the driver's
    // retry on the restored SoC must succeed without re-firing.
    fresh.reset_accel(A).unwrap();
    fresh.start_accel(A).unwrap();
    assert!(fresh.run_until_idle(1_000_000).is_idle());
    assert_eq!(fresh.faults_injected(), 1, "fault must not re-fire");
    assert_eq!(fresh.take_irqs(), vec![A]);
}

/// A snapshot from one floorplan refuses to restore onto another.
#[test]
fn restore_rejects_wrong_floorplan() {
    let soc = build_soc(SocEngine::EventDriven, false, None);
    let snap = soc.snapshot();
    let mut other = SocBuilder::new(2, 2)
        .processor(Coord::new(0, 0))
        .memory(Coord::new(1, 0))
        .build()
        .unwrap();
    assert!(matches!(
        other.restore(&snap),
        Err(SocError::SnapshotMismatch(_))
    ));
}
