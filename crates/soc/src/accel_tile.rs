//! The accelerator tile: ESP socket wrapper around a kernel.
//!
//! The wrapper implements the paper's Fig. 4 loop — LOAD, COMPUTE, STORE
//! per frame — plus the ESP4ML p2p platform service. All p2p transactions
//! are *on-demand*: a consumer's LOAD sends a `P2pLoadReq` to the producer
//! tile, and a producer's STORE holds its output until such a request
//! arrives. This preserves the consumption assumption (data enters the NoC
//! only when the receiver has space) and is completely transparent to the
//! kernel, which still sees plain load/store semantics.

use crate::kernel::{pack_values, unpack_values, words_for, AcceleratorKernel};
use crate::mem_map::MemMap;
use crate::mem_tile::MAX_DMA_PACKET_WORDS;
use crate::regs::{
    P2pConfig, RegisterFile, CMD_START, FLAG_DOUBLE_BUFFER, REG_CMD, REG_CONF_OUT_SIZE,
    REG_CONF_SIZE, REG_DST_OFFSET, REG_DVFS, REG_FLAGS, REG_FRAME_BASE, REG_FRAME_STRIDE,
    REG_N_FRAMES, REG_P2P, REG_SRC_OFFSET, STATUS_DONE, STATUS_IDLE, STATUS_RUNNING,
};
use crate::sanitize::{tile_location, BlockedTile};
use crate::stats::AccelStats;
use esp4ml_check::{codes, Diagnostic};
use esp4ml_fault::{CycleWindow, FaultKind, FaultSpec};
use esp4ml_mem::{PageTable, Tlb};
use esp4ml_noc::{Coord, Mesh, MsgKind, Packet, Plane, Progress, Schedulable};
use esp4ml_trace::{TileCoord, TraceEvent, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// Cycles of socket overhead to set up one DMA burst descriptor.
const DMA_SETUP_CYCLES: u64 = 2;
/// TLB capacity of the socket (entries).
const SOCKET_TLB_ENTRIES: usize = 32;
/// Page-walk penalty on a TLB miss, in cycles.
const TLB_MISS_PENALTY: u64 = 12;

/// The wrapper FSM state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccelState {
    /// Waiting for a start command.
    Idle,
    /// Issuing load requests for the current frame.
    LoadIssue,
    /// Waiting for load data (DMA or p2p).
    LoadWait,
    /// Kernel computation in progress.
    Compute,
    /// Deciding how to store the current frame.
    StoreIssue,
    /// P2p store: waiting for a consumer's request.
    StoreWaitReq,
    /// P2p store: streaming data packets to the consumer.
    StoreSend,
    /// DMA store: waiting for memory-tile acknowledgements.
    StoreWaitAck,
    /// Batch finished; status register reads done.
    Done,
}

impl AccelState {
    /// Stable lowercase phase name (used in trace events).
    pub fn name(self) -> &'static str {
        match self {
            AccelState::Idle => "idle",
            AccelState::LoadIssue => "load_issue",
            AccelState::LoadWait => "load_wait",
            AccelState::Compute => "compute",
            AccelState::StoreIssue => "store_issue",
            AccelState::StoreWaitReq => "store_wait_req",
            AccelState::StoreSend => "store_send",
            AccelState::StoreWaitAck => "store_wait_ack",
            AccelState::Done => "done",
        }
    }
}

/// Communication mode of one side of an invocation, as reported by
/// [`AccelConfig::comm_modes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommMode {
    /// Through the memory hierarchy (regular DMA).
    Dma,
    /// Tile-to-tile over the NoC (ESP4ML p2p service).
    P2p,
}

/// A user-level accelerator invocation descriptor, written into the socket
/// registers by the driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelConfig {
    /// Input values per frame (0 = the kernel's natural input size).
    pub conf_size: u64,
    /// Output values per frame (0 = the kernel's natural output size).
    pub out_size: u64,
    /// Input base offset (words) in the accelerator's virtual address
    /// space.
    pub src_offset: u64,
    /// Output base offset (words) in the accelerator's virtual address
    /// space.
    pub dst_offset: u64,
    /// Frames to process in this batch.
    pub n_frames: u64,
    /// P2p configuration.
    pub p2p: P2pConfig,
    /// Wrapper feature flags (`FLAGS_REG`), e.g.
    /// [`FLAG_DOUBLE_BUFFER`](crate::regs::FLAG_DOUBLE_BUFFER).
    pub flags: u64,
    /// Datapath clock divider (`DVFS_REG`; 0 or 1 = full speed).
    pub dvfs_divider: u64,
    /// Global frame id of the batch's first frame (`FRAME_BASE_REG`).
    #[serde(default)]
    pub frame_base: u64,
    /// Global frame id stride between batch frames (`FRAME_STRIDE_REG`;
    /// 0 is treated as 1, so a deserialized default of 0 is equivalent).
    #[serde(default)]
    pub frame_stride: u64,
}

impl AccelConfig {
    /// Plain DMA in and out.
    pub fn dma_to_dma(src_offset: u64, dst_offset: u64, n_frames: u64) -> Self {
        AccelConfig {
            conf_size: 0,
            out_size: 0,
            src_offset,
            dst_offset,
            n_frames,
            p2p: P2pConfig::disabled(),
            flags: 0,
            dvfs_divider: 0,
            frame_base: 0,
            frame_stride: 1,
        }
    }

    /// DMA load, p2p store (first stage of a p2p pipeline).
    pub fn dma_to_p2p(src_offset: u64, n_frames: u64) -> Self {
        AccelConfig {
            conf_size: 0,
            out_size: 0,
            src_offset,
            dst_offset: 0,
            n_frames,
            p2p: P2pConfig::store(),
            flags: 0,
            dvfs_divider: 0,
            frame_base: 0,
            frame_stride: 1,
        }
    }

    /// P2p load from `sources`, DMA store (last stage).
    pub fn p2p_to_dma(sources: Vec<Coord>, dst_offset: u64, n_frames: u64) -> Self {
        AccelConfig {
            conf_size: 0,
            out_size: 0,
            src_offset: 0,
            dst_offset,
            n_frames,
            p2p: P2pConfig::load_from(sources),
            flags: 0,
            dvfs_divider: 0,
            frame_base: 0,
            frame_stride: 1,
        }
    }

    /// P2p on both sides (middle stage).
    pub fn p2p_to_p2p(sources: Vec<Coord>, n_frames: u64) -> Self {
        AccelConfig {
            conf_size: 0,
            out_size: 0,
            src_offset: 0,
            dst_offset: 0,
            n_frames,
            p2p: P2pConfig::load_and_store(sources),
            flags: 0,
            dvfs_divider: 0,
            frame_base: 0,
            frame_stride: 1,
        }
    }

    /// Enables input-PLM double buffering (builder style): the wrapper
    /// prefetches frame `k + 1` while frame `k` computes and stores.
    pub fn with_double_buffer(mut self) -> Self {
        self.flags |= FLAG_DOUBLE_BUFFER;
        self
    }

    /// Runs the kernel datapath at `f_noc / divider` (builder style) —
    /// ESP's per-tile fine-grained DVFS.
    pub fn with_dvfs_divider(mut self, divider: u64) -> Self {
        self.dvfs_divider = divider;
        self
    }

    /// Assigns the batch's global frame ids (builder style): batch frame
    /// `i` becomes global frame `base + i * stride`. A width-`k` parallel
    /// stage runs instance `j` with `base = j, stride = k` so the stage's
    /// instances interleave over the run's frame sequence.
    pub fn with_frame_ids(mut self, base: u64, stride: u64) -> Self {
        self.frame_base = base;
        self.frame_stride = stride.max(1);
        self
    }

    /// The `(load, store)` communication modes this configuration selects.
    pub fn comm_modes(&self) -> (CommMode, CommMode) {
        (
            if self.p2p.load_enabled {
                CommMode::P2p
            } else {
                CommMode::Dma
            },
            if self.p2p.store_enabled {
                CommMode::P2p
            } else {
                CommMode::Dma
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors_select_comm_modes() {
        assert_eq!(
            AccelConfig::dma_to_dma(0, 0, 1).comm_modes(),
            (CommMode::Dma, CommMode::Dma)
        );
        assert_eq!(
            AccelConfig::dma_to_p2p(0, 1).comm_modes(),
            (CommMode::Dma, CommMode::P2p)
        );
        let src = vec![Coord::new(1, 1)];
        assert_eq!(
            AccelConfig::p2p_to_dma(src.clone(), 0, 1).comm_modes(),
            (CommMode::P2p, CommMode::Dma)
        );
        assert_eq!(
            AccelConfig::p2p_to_p2p(src, 1).comm_modes(),
            (CommMode::P2p, CommMode::P2p)
        );
    }
}

/// An armed invocation-hang fault (see [`FaultKind::AccelHang`]).
#[derive(Debug, Clone)]
struct HangFault {
    from_invocation: u64,
    count: u64,
    window: CycleWindow,
}

/// An armed wrong-length-result fault (see [`FaultKind::AccelShortOutput`]).
#[derive(Debug, Clone)]
struct ShortFault {
    from_invocation: u64,
    count: u64,
    drop_words: u64,
    window: CycleWindow,
}

/// Tile-side state of installed accelerator faults. Allocated only when a
/// fault plan names this device — fault-free runs never touch it.
#[derive(Debug, Default)]
struct AccelFaults {
    hangs: Vec<HangFault>,
    shorts: Vec<ShortFault>,
    /// Start commands seen since installation (the fault trigger index).
    invocations: u64,
    /// Total fault firings so far.
    fired: u64,
}

/// Serializable image of one armed invocation-hang fault (see
/// [`FaultKind::AccelHang`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HangFaultState {
    /// First start command (since installation) the fault swallows.
    pub from_invocation: u64,
    /// How many consecutive invocations hang.
    pub count: u64,
    /// Cycle window gating the fault.
    pub window: CycleWindow,
}

/// Serializable image of one armed wrong-length-result fault (see
/// [`FaultKind::AccelShortOutput`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShortFaultState {
    /// First start command (since installation) the fault corrupts.
    pub from_invocation: u64,
    /// How many consecutive invocations produce short output.
    pub count: u64,
    /// Output words dropped per frame.
    pub drop_words: u64,
    /// Cycle window gating the fault.
    pub window: CycleWindow,
}

/// Serializable image of an accelerator tile's installed faults,
/// including the trigger counters. Capturing `invocations`/`fired` is what
/// lets a restored run fire its remaining faults at exactly the same
/// architectural events as the original.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccelFaultsState {
    /// Armed hang faults.
    pub hangs: Vec<HangFaultState>,
    /// Armed short-output faults.
    pub shorts: Vec<ShortFaultState>,
    /// Start commands seen since installation.
    pub invocations: u64,
    /// Total fault firings so far.
    pub fired: u64,
}

/// Complete serializable state of an [`AccelTile`]: socket registers,
/// page table and TLB, the wrapper FSM with its latched batch context,
/// PLM contents (receive and output buffers), in-flight transfer
/// bookkeeping, armed faults with trigger counts, statistics and
/// sanitizer ledger.
///
/// Structural identity — the coordinate, the plugged kernel and the
/// memory map — is *not* captured; a snapshot only restores onto a tile
/// built from the same floorplan. The tracer is a live host-side handle
/// and is likewise excluded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelTileState {
    /// Socket register file.
    pub regs: RegisterFile,
    /// Installed page table, when the driver pinned a buffer.
    pub page_table: Option<PageTable>,
    /// Socket TLB entries and counters.
    pub tlb: esp4ml_mem::TlbState,
    /// Wrapper FSM state.
    pub state: AccelState,
    /// Frames in the running batch.
    pub n_frames: u64,
    /// Current batch frame index.
    pub frame_idx: u64,
    /// Global frame id base latched at start.
    pub frame_base: u64,
    /// Global frame id stride latched at start.
    pub frame_stride: u64,
    /// Input values per frame latched at start.
    pub in_values: u64,
    /// Output values per frame latched at start.
    pub out_values: u64,
    /// Input words per frame.
    pub in_words: u64,
    /// Output words per frame.
    pub out_words: u64,
    /// Input base virtual address latched at start.
    pub src_base: u64,
    /// Output base virtual address latched at start.
    pub dst_base: u64,
    /// P2p configuration latched at start.
    pub p2p: P2pConfig,
    /// PLM input buffer contents.
    pub rx_buf: Vec<u64>,
    /// Received-word counts per ping-pong half.
    pub rx_counts: [u64; 2],
    /// Words expected for the current frame's load.
    pub rx_expect: u64,
    /// Whether double buffering is active for this batch.
    pub dbuf: bool,
    /// Frames whose loads have been issued.
    pub loads_issued: u64,
    /// Datapath clock divider latched at start.
    pub dvfs_divider: u64,
    /// Divided-clock phase accumulator.
    pub dvfs_phase: u64,
    /// Packets waiting to inject into the NoC.
    pub tx_queue: Vec<Packet>,
    /// Store words acknowledged so far for the current frame.
    pub store_acked_words: u64,
    /// Pending p2p consumer requests: `(requester, words, dest base)`.
    pub pending_p2p_reqs: Vec<(Coord, u64, u64)>,
    /// Remaining kernel compute cycles for the current frame.
    pub compute_countdown: u64,
    /// PLM output buffer contents.
    pub output_buffer: Vec<u64>,
    /// Remaining socket stall cycles (TLB miss / DMA setup).
    pub stall: u64,
    /// Words dropped per output frame by a latched short-output fault.
    pub short_drop: u64,
    /// Installed faults and their trigger counters.
    pub faults: Option<AccelFaultsState>,
    /// Execution statistics.
    pub stats: AccelStats,
    /// Whether promoted invariant asserts run in diagnostic mode.
    pub sanitize: bool,
    /// Accumulated sanitizer diagnostics, in sorted order.
    pub sanitizer_violations: Vec<Diagnostic>,
    /// Mesh cycle latched at the top of the last tick.
    pub cycle: u64,
}

/// An accelerator tile: socket (registers, DMA engine, TLB, p2p service)
/// plus the plugged-in kernel.
#[derive(Debug)]
pub struct AccelTile {
    coord: Coord,
    kernel: Box<dyn AcceleratorKernel>,
    regs: RegisterFile,
    page_table: Option<PageTable>,
    tlb: Tlb,
    mem_map: MemMap,
    irq_target: Coord,

    state: AccelState,
    // Batch context, latched at start.
    n_frames: u64,
    frame_idx: u64,
    frame_base: u64,
    frame_stride: u64,
    in_values: u64,
    out_values: u64,
    in_words: u64,
    out_words: u64,
    src_base: u64,
    dst_base: u64,
    p2p: P2pConfig,

    // Transfer bookkeeping: the frame receive buffer (PLM input), filled
    // by offset-tagged DmaData packets in any arrival order. With double
    // buffering the buffer holds two ping-pong halves (frame k in half
    // k % 2) and the next frame's load overlaps the current frame's
    // compute/store.
    rx_buf: Vec<u64>,
    rx_counts: [u64; 2],
    rx_expect: u64,
    dbuf: bool,
    loads_issued: u64,
    dvfs_divider: u64,
    dvfs_phase: u64,
    tx_queue: VecDeque<Packet>,
    store_acked_words: u64,
    pending_p2p_reqs: VecDeque<(Coord, u64, u64)>,
    compute_countdown: u64,
    output_buffer: Vec<u64>,
    stall: u64,
    /// Words to drop from every output frame of the current batch
    /// (0 = healthy; latched from a matching short-output fault).
    short_drop: u64,
    faults: Option<Box<AccelFaults>>,

    stats: AccelStats,
    /// Sanitizer mode: promoted invariant asserts record typed
    /// diagnostics here (in release builds too) instead of only
    /// `debug_assert!`-ing.
    sanitize: bool,
    sanitizer_violations: BTreeSet<Diagnostic>,
    tracer: Tracer,
    /// Mesh cycle latched at the top of [`AccelTile::tick`], so FSM
    /// helpers can stamp trace events without threading the mesh through.
    cycle: u64,
}

impl AccelTile {
    /// Creates an accelerator tile.
    ///
    /// `mem_map` describes the memory tiles its DMA targets; `irq_target`
    /// is the processor tile receiving its interrupts. Both come from the
    /// SoC floorplan (routing tables in real ESP).
    pub fn new(
        coord: Coord,
        kernel: Box<dyn AcceleratorKernel>,
        mem_map: MemMap,
        irq_target: Coord,
    ) -> Self {
        AccelTile {
            coord,
            regs: RegisterFile::new(coord),
            kernel,
            page_table: None,
            tlb: Tlb::new(SOCKET_TLB_ENTRIES, TLB_MISS_PENALTY),
            mem_map,
            irq_target,
            state: AccelState::Idle,
            n_frames: 0,
            frame_idx: 0,
            frame_base: 0,
            frame_stride: 1,
            in_values: 0,
            out_values: 0,
            in_words: 0,
            out_words: 0,
            src_base: 0,
            dst_base: 0,
            p2p: P2pConfig::disabled(),
            rx_buf: Vec::new(),
            rx_counts: [0; 2],
            rx_expect: 0,
            dbuf: false,
            loads_issued: 0,
            dvfs_divider: 1,
            dvfs_phase: 0,
            tx_queue: VecDeque::new(),
            store_acked_words: 0,
            pending_p2p_reqs: VecDeque::new(),
            compute_countdown: 0,
            output_buffer: Vec::new(),
            stall: 0,
            short_drop: 0,
            faults: None,
            stats: AccelStats::default(),
            sanitize: false,
            sanitizer_violations: BTreeSet::new(),
            tracer: Tracer::disabled(),
            cycle: 0,
        }
    }

    /// Switches the promoted invariant asserts into diagnostic mode.
    pub(crate) fn enable_sanitize(&mut self) {
        self.sanitize = true;
    }

    pub(crate) fn sanitizer_violations(&self) -> &BTreeSet<Diagnostic> {
        &self.sanitizer_violations
    }

    /// Fault hook (sanitizer testing): inflates the received-word counter
    /// so the quiescent DMA-accounting audit must flag the imbalance.
    pub(crate) fn fault_phantom_words(&mut self, words: u64) {
        self.stats.words_received += words;
    }

    /// Installs one accelerator fault from a fault plan. Returns `false`
    /// (and installs nothing) when the spec targets another device or is
    /// not an accelerator fault, so callers can route a mixed plan through
    /// every component.
    pub fn install_fault(&mut self, spec: &FaultSpec) -> bool {
        match &spec.kind {
            FaultKind::AccelHang {
                device,
                from_invocation,
                count,
            } if device == self.kernel.name() => {
                let f = self.faults.get_or_insert_with(Default::default);
                f.hangs.push(HangFault {
                    from_invocation: *from_invocation,
                    count: *count,
                    window: spec.window,
                });
                true
            }
            FaultKind::AccelShortOutput {
                device,
                from_invocation,
                count,
                drop_words,
            } if device == self.kernel.name() => {
                let f = self.faults.get_or_insert_with(Default::default);
                f.shorts.push(ShortFault {
                    from_invocation: *from_invocation,
                    count: *count,
                    drop_words: *drop_words,
                    window: spec.window,
                });
                true
            }
            _ => false,
        }
    }

    /// How many accelerator faults have fired on this tile so far.
    pub fn faults_fired(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.fired)
    }

    /// Hard-resets the socket wrapper back to [`AccelState::Idle`] — the
    /// recovery path a driver takes after a watchdog expiry. In-flight
    /// batch state (partial frames, queued packets, pending p2p requests)
    /// is discarded; the configuration registers, armed faults and
    /// cumulative statistics all survive, so the driver can re-issue the
    /// batch immediately.
    pub fn reset(&mut self) {
        self.set_state(AccelState::Idle);
        self.n_frames = 0;
        self.frame_idx = 0;
        self.frame_base = 0;
        self.frame_stride = 1;
        self.rx_buf.clear();
        self.rx_counts = [0; 2];
        self.rx_expect = 0;
        self.dbuf = false;
        self.loads_issued = 0;
        self.dvfs_phase = 0;
        self.tx_queue.clear();
        self.store_acked_words = 0;
        self.pending_p2p_reqs.clear();
        self.compute_countdown = 0;
        self.output_buffer.clear();
        self.stall = 0;
        self.short_drop = 0;
        self.regs.set_status(STATUS_IDLE);
    }

    /// Captures the tile's complete serializable state (see
    /// [`AccelTileState`] for what is and is not included). Named
    /// `tile_state` because [`AccelTile::state`] already reports the FSM
    /// state.
    pub fn tile_state(&self) -> AccelTileState {
        AccelTileState {
            regs: self.regs.clone(),
            page_table: self.page_table.clone(),
            tlb: self.tlb.state(),
            state: self.state,
            n_frames: self.n_frames,
            frame_idx: self.frame_idx,
            frame_base: self.frame_base,
            frame_stride: self.frame_stride,
            in_values: self.in_values,
            out_values: self.out_values,
            in_words: self.in_words,
            out_words: self.out_words,
            src_base: self.src_base,
            dst_base: self.dst_base,
            p2p: self.p2p.clone(),
            rx_buf: self.rx_buf.clone(),
            rx_counts: self.rx_counts,
            rx_expect: self.rx_expect,
            dbuf: self.dbuf,
            loads_issued: self.loads_issued,
            dvfs_divider: self.dvfs_divider,
            dvfs_phase: self.dvfs_phase,
            tx_queue: self.tx_queue.iter().cloned().collect(),
            store_acked_words: self.store_acked_words,
            pending_p2p_reqs: self.pending_p2p_reqs.iter().copied().collect(),
            compute_countdown: self.compute_countdown,
            output_buffer: self.output_buffer.clone(),
            stall: self.stall,
            short_drop: self.short_drop,
            faults: self.faults.as_deref().map(|f| AccelFaultsState {
                hangs: f
                    .hangs
                    .iter()
                    .map(|h| HangFaultState {
                        from_invocation: h.from_invocation,
                        count: h.count,
                        window: h.window,
                    })
                    .collect(),
                shorts: f
                    .shorts
                    .iter()
                    .map(|s| ShortFaultState {
                        from_invocation: s.from_invocation,
                        count: s.count,
                        drop_words: s.drop_words,
                        window: s.window,
                    })
                    .collect(),
                invocations: f.invocations,
                fired: f.fired,
            }),
            stats: self.stats,
            sanitize: self.sanitize,
            sanitizer_violations: self.sanitizer_violations.iter().cloned().collect(),
            cycle: self.cycle,
        }
    }

    /// Restores state captured by [`AccelTile::tile_state`]. Installed faults
    /// are replaced wholesale: restoring a fault-free snapshot uninstalls
    /// any plan armed since it was taken.
    pub fn restore_state(&mut self, state: &AccelTileState) {
        self.regs = state.regs.clone();
        self.page_table = state.page_table.clone();
        self.tlb.restore_state(&state.tlb);
        self.state = state.state;
        self.n_frames = state.n_frames;
        self.frame_idx = state.frame_idx;
        self.frame_base = state.frame_base;
        self.frame_stride = state.frame_stride;
        self.in_values = state.in_values;
        self.out_values = state.out_values;
        self.in_words = state.in_words;
        self.out_words = state.out_words;
        self.src_base = state.src_base;
        self.dst_base = state.dst_base;
        self.p2p = state.p2p.clone();
        self.rx_buf.clone_from(&state.rx_buf);
        self.rx_counts = state.rx_counts;
        self.rx_expect = state.rx_expect;
        self.dbuf = state.dbuf;
        self.loads_issued = state.loads_issued;
        self.dvfs_divider = state.dvfs_divider;
        self.dvfs_phase = state.dvfs_phase;
        self.tx_queue = state.tx_queue.iter().cloned().collect();
        self.store_acked_words = state.store_acked_words;
        self.pending_p2p_reqs = state.pending_p2p_reqs.iter().copied().collect();
        self.compute_countdown = state.compute_countdown;
        self.output_buffer.clone_from(&state.output_buffer);
        self.stall = state.stall;
        self.short_drop = state.short_drop;
        self.faults = state.faults.as_ref().map(|f| {
            Box::new(AccelFaults {
                hangs: f
                    .hangs
                    .iter()
                    .map(|h| HangFault {
                        from_invocation: h.from_invocation,
                        count: h.count,
                        window: h.window,
                    })
                    .collect(),
                shorts: f
                    .shorts
                    .iter()
                    .map(|s| ShortFault {
                        from_invocation: s.from_invocation,
                        count: s.count,
                        drop_words: s.drop_words,
                        window: s.window,
                    })
                    .collect(),
                invocations: f.invocations,
                fired: f.fired,
            })
        });
        self.stats = state.stats;
        self.sanitize = state.sanitize;
        self.sanitizer_violations = state.sanitizer_violations.iter().cloned().collect();
        self.cycle = state.cycle;
    }

    /// What this tile is waiting on, for the timeout deadlock diagnosis.
    /// Returns `None` when the tile is making progress on its own.
    pub(crate) fn blocked_info(&self) -> Option<BlockedTile> {
        let half = if self.dbuf {
            (self.frame_idx % 2) as usize
        } else {
            0
        };
        let (waits_on, plane, reason) = match self.state {
            AccelState::LoadWait if self.rx_counts[half] < self.rx_expect => {
                if self.p2p.load_enabled {
                    let sources = &self.p2p.sources;
                    let src = sources[(self.frame_idx as usize) % sources.len()];
                    (
                        Some((src.x, src.y)),
                        "dma-rsp",
                        format!(
                            "waiting for p2p data from tile({},{}) for frame {} ({} of {} words received)",
                            src.x, src.y, self.frame_idx, self.rx_counts[half], self.rx_expect
                        ),
                    )
                } else {
                    let (src, _) = self.mem_map.owner(self.src_base);
                    (
                        Some((src.x, src.y)),
                        "dma-rsp",
                        format!(
                            "waiting for DMA data from memory for frame {} ({} of {} words received)",
                            self.frame_idx, self.rx_counts[half], self.rx_expect
                        ),
                    )
                }
            }
            AccelState::StoreWaitReq if self.pending_p2p_reqs.is_empty() => (
                None,
                "dma-req",
                format!(
                    "output frame {} ready; waiting for a consumer P2pLoadReq",
                    self.frame_idx
                ),
            ),
            AccelState::StoreWaitAck if self.store_acked_words < self.out_words => {
                let (dst, _) = self.mem_map.owner(self.dst_base);
                (
                    Some((dst.x, dst.y)),
                    "dma-rsp",
                    format!(
                        "waiting for DMA store acknowledgement ({} of {} words acked)",
                        self.store_acked_words, self.out_words
                    ),
                )
            }
            _ => return None,
        };
        Some(BlockedTile {
            x: self.coord.x,
            y: self.coord.y,
            device: self.kernel.name().to_string(),
            state: self.state.name().to_string(),
            waits_on,
            plane: plane.to_string(),
            reason,
        })
    }

    /// Installs a tracer for phase-change, TLB-miss, p2p and
    /// frame-completion events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn trace_coord(&self) -> TileCoord {
        TileCoord::new(self.coord.x, self.coord.y)
    }

    /// Global frame id of batch frame `idx` under the latched base/stride.
    fn global_frame(&self, idx: u64) -> u64 {
        self.frame_base + idx * self.frame_stride.max(1)
    }

    /// Moves the FSM to `to`, emitting an [`TraceEvent::AccelPhaseChange`]
    /// when the phase actually changes. Working phases carry the global id
    /// of the frame they serve; `Idle`/`Done` carry no frame.
    fn set_state(&mut self, to: AccelState) {
        if self.state != to {
            let from = self.state.name();
            let frame = match to {
                AccelState::Idle | AccelState::Done => None,
                _ => Some(self.global_frame(self.frame_idx)),
            };
            self.tracer.emit(self.cycle, self.trace_coord(), || {
                TraceEvent::AccelPhaseChange {
                    accel: self.kernel.name().to_string(),
                    from,
                    to: to.name(),
                    frame,
                }
            });
        }
        self.state = to;
    }

    /// The tile coordinate (also readable through `LOCATION_REG`).
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// The kernel name (the device name in the driver registry).
    pub fn kernel_name(&self) -> &str {
        self.kernel.name()
    }

    /// The plugged kernel.
    pub fn kernel(&self) -> &dyn AcceleratorKernel {
        self.kernel.as_ref()
    }

    /// The current FSM state.
    pub fn state(&self) -> AccelState {
        self.state
    }

    /// Execution statistics.
    pub fn stats(&self) -> &AccelStats {
        &self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = AccelStats::default();
    }

    /// Reads a socket register (driver access through the I/O plane).
    pub fn read_reg(&self, offset: u64) -> u64 {
        self.regs.read(offset)
    }

    /// Installs the page table mapping the accelerator's virtual address
    /// space (the driver does this when the user buffer is pinned).
    pub fn set_page_table(&mut self, table: PageTable) {
        self.tlb.flush();
        self.page_table = Some(table);
    }

    /// Whether the tile is idle (no batch running, no traffic pending).
    pub fn is_idle(&self) -> bool {
        matches!(self.state, AccelState::Idle | AccelState::Done) && self.tx_queue.is_empty()
    }

    /// Advances the tile by one cycle and reports its progress.
    pub fn tick(&mut self, mesh: &mut Mesh) -> Progress {
        self.cycle = mesh.cycle();
        self.drain_control(mesh);
        self.drain_dma_req(mesh);
        self.drain_dma_rsp(mesh);

        if self.stall > 0 {
            self.stall -= 1;
            self.stats.stall_cycles += 1;
        } else {
            self.step_fsm();
        }
        if !matches!(self.state, AccelState::Idle | AccelState::Done) {
            self.stats.busy_cycles += 1;
        }

        // Drain outgoing packets into the NoC.
        while let Some(pkt) = self.tx_queue.front() {
            if mesh.can_inject(self.coord, pkt.plane(), pkt.flit_len()) {
                let pkt = self.tx_queue.pop_front().expect("front packet");
                mesh.inject(pkt).expect("capacity checked");
            } else {
                break;
            }
        }
        self.progress(mesh.cycle())
    }

    /// Event-driven progress report for cycle `now`.
    ///
    /// The wake hints mirror [`AccelTile::tick`]'s boring paths exactly:
    /// a stall of `s` burns `s` decrement ticks before the FSM steps
    /// again, and a compute phase at countdown `c` / divider `d` / phase
    /// `p` transitions on its `(d - p) + (c - 1) * d`-th tick.
    pub fn progress(&self, now: u64) -> Progress {
        if !self.tx_queue.is_empty() {
            return Progress::Active;
        }
        if matches!(self.state, AccelState::Idle | AccelState::Done) {
            return Progress::Quiescent;
        }
        if self.stall > 0 {
            return Progress::Blocked {
                until: now + self.stall,
            };
        }
        match self.state {
            AccelState::LoadIssue | AccelState::StoreIssue | AccelState::StoreSend => {
                Progress::Active
            }
            AccelState::LoadWait => {
                let half = if self.dbuf {
                    (self.frame_idx % 2) as usize
                } else {
                    0
                };
                if self.rx_counts[half] >= self.rx_expect {
                    Progress::Active
                } else {
                    Progress::Quiescent
                }
            }
            AccelState::Compute => {
                let ticks_to_go = (self.dvfs_divider - self.dvfs_phase)
                    + (self.compute_countdown - 1) * self.dvfs_divider;
                Progress::Blocked {
                    until: now + ticks_to_go - 1,
                }
            }
            AccelState::StoreWaitReq => {
                if self.pending_p2p_reqs.is_empty() {
                    Progress::Quiescent
                } else {
                    Progress::Active
                }
            }
            AccelState::StoreWaitAck => {
                if self.store_acked_words >= self.out_words {
                    Progress::Active
                } else {
                    Progress::Quiescent
                }
            }
            AccelState::Idle | AccelState::Done => unreachable!("handled above"),
        }
    }

    /// Bulk-applies `delta` boring cycles: stall/compute countdowns and
    /// the busy/stall/load/compute/store statistics advance exactly as
    /// `delta` naive ticks would have.
    pub fn advance(&mut self, delta: u64) {
        if delta == 0 || matches!(self.state, AccelState::Idle | AccelState::Done) {
            return;
        }
        self.stats.busy_cycles += delta;
        if self.stall > 0 {
            debug_assert!(delta <= self.stall, "advance past the stall countdown");
            self.stall -= delta;
            self.stats.stall_cycles += delta;
            return;
        }
        match self.state {
            AccelState::LoadWait => self.stats.load_cycles += delta,
            AccelState::Compute => {
                self.stats.compute_cycles += delta;
                let total = self.dvfs_phase + delta;
                let wraps = total / self.dvfs_divider;
                debug_assert!(
                    wraps < self.compute_countdown,
                    "advance past the compute countdown"
                );
                self.compute_countdown -= wraps;
                self.dvfs_phase = total % self.dvfs_divider;
            }
            AccelState::StoreWaitReq | AccelState::StoreSend | AccelState::StoreWaitAck => {
                self.stats.store_cycles += delta;
            }
            AccelState::Idle
            | AccelState::Done
            | AccelState::LoadIssue
            | AccelState::StoreIssue => {}
        }
    }

    fn drain_control(&mut self, mesh: &mut Mesh) {
        while let Some(pkt) = mesh.eject(self.coord, Plane::IoIrq) {
            match pkt.kind() {
                MsgKind::RegWrite => {
                    let offset = pkt.payload()[0];
                    let value = pkt.payload()[1];
                    self.regs.write(offset, value);
                    if offset == REG_CMD && value == CMD_START {
                        self.start_batch();
                    }
                }
                MsgKind::RegReadReq => {
                    let offset = pkt.payload()[0];
                    self.tx_queue.push_back(Packet::new(
                        self.coord,
                        pkt.src(),
                        Plane::IoIrq,
                        MsgKind::RegReadRsp,
                        vec![offset, self.regs.read(offset)],
                    ));
                }
                _ => {}
            }
        }
    }

    fn drain_dma_req(&mut self, mesh: &mut Mesh) {
        while let Some(pkt) = mesh.eject(self.coord, Plane::DmaReq) {
            if pkt.kind() == MsgKind::P2pLoadReq {
                let len = pkt.payload()[0];
                let dest_base = pkt.payload().get(1).copied().unwrap_or(0);
                self.pending_p2p_reqs.push_back((pkt.src(), len, dest_base));
            }
        }
    }

    fn drain_dma_rsp(&mut self, mesh: &mut Mesh) {
        while let Some(pkt) = mesh.eject(self.coord, Plane::DmaRsp) {
            match pkt.kind() {
                MsgKind::DmaData => {
                    let offset = pkt.payload()[0] as usize;
                    let data = &pkt.payload()[1..];
                    self.stats.words_received += data.len() as u64;
                    if offset + data.len() <= self.rx_buf.len() {
                        self.rx_buf[offset..offset + data.len()].copy_from_slice(data);
                        let half = if self.dbuf && offset as u64 >= self.in_words {
                            1
                        } else {
                            0
                        };
                        self.rx_counts[half] += data.len() as u64;
                    } else if self.sanitize {
                        self.sanitizer_violations.insert(Diagnostic::error(
                            codes::DMA_ACCOUNTING,
                            tile_location(self.coord),
                            format!(
                                "DmaData burst of {} words at offset {offset} overruns the \
                                 {}-word receive buffer",
                                data.len(),
                                self.rx_buf.len()
                            ),
                        ));
                    } else {
                        debug_assert!(false, "DmaData offset {offset} outside the receive buffer");
                    }
                }
                MsgKind::DmaStoreAck => {
                    self.store_acked_words += pkt.payload()[0];
                }
                _ => {}
            }
        }
    }

    /// Evaluates armed faults against this start command. Returns `true`
    /// when a hang fault swallows the command; latches `short_drop` when a
    /// short-output fault matches. Trigger indices count *start commands*,
    /// so a bounded hang clears itself on the driver's retry.
    fn fault_on_start(&mut self) -> bool {
        let cycle = self.cycle;
        let Some(f) = self.faults.as_deref_mut() else {
            return false;
        };
        let seq = f.invocations;
        f.invocations += 1;
        let hit = |from: u64, count: u64, window: &CycleWindow| {
            seq >= from && seq - from < count && window.contains(cycle)
        };
        if f.hangs
            .iter()
            .any(|h| hit(h.from_invocation, h.count, &h.window))
        {
            f.fired += 1;
            // The hung device accepted the command (status says running)
            // but its FSM never leaves Idle: only the driver's watchdog
            // can tell the difference.
            self.regs.set_status(STATUS_RUNNING);
            let name = self.kernel.name().to_string();
            let detail = format!("accel_hang: {name} swallowed start command for invocation {seq}");
            self.tracer
                .emit(cycle, self.trace_coord(), || TraceEvent::FaultInjected {
                    fault: "accel_hang",
                    detail,
                });
            return true;
        }
        let short = f
            .shorts
            .iter()
            .find(|s| hit(s.from_invocation, s.count, &s.window))
            .map(|s| s.drop_words);
        if let Some(drop_words) = short {
            f.fired += 1;
            self.short_drop = drop_words;
            let name = self.kernel.name().to_string();
            let detail = format!(
                "accel_short_output: {name} will drop {drop_words} output words per frame \
                 of invocation {seq}"
            );
            self.tracer
                .emit(cycle, self.trace_coord(), || TraceEvent::FaultInjected {
                    fault: "accel_short_output",
                    detail,
                });
        } else {
            self.short_drop = 0;
        }
        false
    }

    fn start_batch(&mut self) {
        if matches!(self.state, AccelState::Idle | AccelState::Done) {
            if self.fault_on_start() {
                return;
            }
            self.in_values = match self.regs.read(REG_CONF_SIZE) {
                0 => self.kernel.input_values(),
                v => v,
            };
            self.out_values = match self.regs.read(REG_CONF_OUT_SIZE) {
                0 => self.kernel.output_values(),
                v => v,
            };
            let bits = self.kernel.data_bits();
            self.in_words = words_for(self.in_values, bits);
            self.out_words = words_for(self.out_values, bits);
            self.src_base = self.regs.read(REG_SRC_OFFSET);
            self.dst_base = self.regs.read(REG_DST_OFFSET);
            self.n_frames = self.regs.read(REG_N_FRAMES).max(1);
            self.p2p = P2pConfig::from_reg(self.regs.read(REG_P2P));
            self.dbuf = (self.regs.read(REG_FLAGS) & FLAG_DOUBLE_BUFFER) != 0 && self.n_frames > 1;
            self.dvfs_divider = self.regs.read(REG_DVFS).max(1);
            self.frame_base = self.regs.read(REG_FRAME_BASE);
            self.frame_stride = self.regs.read(REG_FRAME_STRIDE).max(1);
            self.frame_idx = 0;
            self.loads_issued = 0;
            self.rx_counts = [0; 2];
            let halves = if self.dbuf { 2 } else { 1 };
            self.rx_buf.clear();
            self.rx_buf.resize((halves * self.in_words) as usize, 0);
            self.regs.set_status(STATUS_RUNNING);
            self.set_state(AccelState::LoadIssue);
        }
    }

    fn step_fsm(&mut self) {
        match self.state {
            AccelState::Idle | AccelState::Done => {}
            AccelState::LoadIssue => self.issue_loads(),
            AccelState::LoadWait => {
                let half = if self.dbuf {
                    (self.frame_idx % 2) as usize
                } else {
                    0
                };
                if self.rx_counts[half] >= self.rx_expect {
                    self.run_kernel();
                } else {
                    self.stats.load_cycles += 1;
                }
            }
            AccelState::Compute => {
                self.stats.compute_cycles += 1;
                // Per-tile DVFS: the datapath advances only on its own
                // (divided) clock edges; the socket stays on the NoC clock.
                self.dvfs_phase += 1;
                if self.dvfs_phase >= self.dvfs_divider {
                    self.dvfs_phase = 0;
                    self.compute_countdown = self.compute_countdown.saturating_sub(1);
                }
                if self.compute_countdown == 0 {
                    self.set_state(AccelState::StoreIssue);
                }
            }
            AccelState::StoreIssue => self.issue_store(),
            AccelState::StoreWaitReq => {
                if let Some((requester, len, dest_base)) = self.pending_p2p_reqs.pop_front() {
                    if len != self.out_words && self.sanitize {
                        self.sanitizer_violations.insert(Diagnostic::error(
                            codes::DMA_ACCOUNTING,
                            tile_location(self.coord),
                            format!(
                                "p2p consumer tile({},{}) requested {len} words but the \
                                 producer frame is {} words",
                                requester.x, requester.y, self.out_words
                            ),
                        ));
                    } else {
                        debug_assert_eq!(
                            len, self.out_words,
                            "p2p consumer requested {len} words, producer frame is {} words",
                            self.out_words
                        );
                    }
                    let data = std::mem::take(&mut self.output_buffer);
                    let words = data.len() as u64;
                    let frame = Some(self.global_frame(self.frame_idx));
                    self.tracer
                        .emit(self.cycle, self.trace_coord(), || TraceEvent::P2pTransfer {
                            dest: TileCoord::new(requester.x, requester.y),
                            words,
                            frame,
                        });
                    for (k, chunk) in data.chunks(MAX_DMA_PACKET_WORDS).enumerate() {
                        self.stats.p2p_words_sent += chunk.len() as u64;
                        let mut payload = vec![dest_base + (k * MAX_DMA_PACKET_WORDS) as u64];
                        payload.extend_from_slice(chunk);
                        self.tx_queue.push_back(
                            Packet::new(
                                self.coord,
                                requester,
                                Plane::DmaRsp,
                                MsgKind::DmaData,
                                payload,
                            )
                            .with_frame(frame),
                        );
                    }
                    self.set_state(AccelState::StoreSend);
                } else {
                    self.stats.store_cycles += 1;
                }
            }
            AccelState::StoreSend => {
                if self.tx_queue.is_empty() {
                    self.finish_frame();
                } else {
                    self.stats.store_cycles += 1;
                }
            }
            AccelState::StoreWaitAck => {
                if self.store_acked_words >= self.out_words {
                    self.finish_frame();
                } else {
                    self.stats.store_cycles += 1;
                }
            }
        }
    }

    /// Issues whatever loads the current frame needs: the frame itself
    /// (single buffer) or every not-yet-requested frame within the
    /// two-deep ping-pong window (double buffer).
    fn issue_loads(&mut self) {
        self.rx_expect = self.in_words;
        if self.dbuf {
            let window_end = (self.frame_idx + 2).min(self.n_frames);
            while self.loads_issued < window_end {
                let frame = self.loads_issued;
                self.issue_load_for(frame);
                self.loads_issued += 1;
            }
        } else if self.loads_issued <= self.frame_idx {
            // The kernel consumed (took) the buffer last frame; re-allocate.
            self.rx_buf.clear();
            self.rx_buf.resize(self.in_words as usize, 0);
            self.rx_counts[0] = 0;
            self.issue_load_for(self.frame_idx);
            self.loads_issued = self.frame_idx + 1;
        }
        self.set_state(AccelState::LoadWait);
    }

    /// Issues the load requests for one frame into its PLM half.
    fn issue_load_for(&mut self, frame: u64) {
        let dest_base = if self.dbuf {
            (frame % 2) * self.in_words
        } else {
            0
        };
        let global = Some(self.global_frame(frame));
        if self.p2p.load_enabled {
            let sources = &self.p2p.sources;
            let src = sources[(frame as usize) % sources.len()];
            self.tx_queue.push_back(
                Packet::new(
                    self.coord,
                    src,
                    Plane::DmaReq,
                    MsgKind::P2pLoadReq,
                    vec![self.in_words, dest_base],
                )
                .with_frame(global),
            );
            return;
        }
        let va = self.src_base + frame * self.in_words;
        let table = self
            .page_table
            .as_ref()
            .expect("page table installed before DMA");
        let (_, tlb_lat) = self.tlb.translate(table, va).expect("mapped load address");
        let chunks = table
            .translate_range(va, self.in_words)
            .expect("mapped load range");
        if tlb_lat > 0 {
            self.tracer
                .emit(self.cycle, self.trace_coord(), || TraceEvent::TlbMiss {
                    penalty: tlb_lat,
                });
        }
        self.stall += tlb_lat + DMA_SETUP_CYCLES;
        let mut dest_offset = dest_base;
        for (paddr, len) in chunks {
            for (mem_tile, local_addr, l) in self.mem_map.split_range(paddr, len) {
                self.stats.dma_words_loaded += l;
                self.tx_queue.push_back(
                    Packet::new(
                        self.coord,
                        mem_tile,
                        Plane::DmaReq,
                        MsgKind::DmaLoadReq,
                        vec![local_addr, l, dest_offset],
                    )
                    .with_frame(global),
                );
                dest_offset += l;
            }
        }
    }

    fn run_kernel(&mut self) {
        let (words, consumed_half) = if self.dbuf {
            let half = (self.frame_idx % 2) as usize;
            let base = half * self.in_words as usize;
            let words = self.rx_buf[base..base + self.in_words as usize].to_vec();
            (words, half)
        } else {
            (std::mem::take(&mut self.rx_buf), 0)
        };
        self.rx_counts[consumed_half] = 0;
        if self.dbuf {
            // The consumed half is free: prefetch the next window frame.
            let next = self.frame_idx + 2;
            if next < self.n_frames && self.loads_issued <= next {
                self.issue_load_for(next);
                self.loads_issued = next + 1;
            }
        }
        let bits = self.kernel.data_bits();
        let input = unpack_values(&words, self.in_values as usize, bits);
        let out = self.kernel.compute(&input);
        debug_assert_eq!(
            out.values.len() as u64,
            self.kernel.output_values(),
            "kernel output size contract"
        );
        self.output_buffer = pack_values(&out.values, bits);
        debug_assert_eq!(self.output_buffer.len() as u64, self.out_words);
        if self.short_drop > 0 {
            // Wrong-length-result fault: the datapath produced fewer words
            // than the descriptor promised. At least one word survives so
            // the store still engages (and then starves on the shortfall).
            let keep = (self.output_buffer.len() as u64)
                .saturating_sub(self.short_drop)
                .max(1);
            self.output_buffer.truncate(keep as usize);
        }
        self.compute_countdown = out.cycles.max(1);
        self.set_state(AccelState::Compute);
    }

    fn issue_store(&mut self) {
        if self.p2p.store_enabled {
            self.set_state(AccelState::StoreWaitReq);
            return;
        }
        let va = self.dst_base + self.frame_idx * self.out_words;
        let table = self
            .page_table
            .as_ref()
            .expect("page table installed before DMA");
        let (_, tlb_lat) = self.tlb.translate(table, va).expect("mapped store address");
        if tlb_lat > 0 {
            self.tracer
                .emit(self.cycle, self.trace_coord(), || TraceEvent::TlbMiss {
                    penalty: tlb_lat,
                });
        }
        self.stall += tlb_lat + DMA_SETUP_CYCLES;
        let chunks = table
            .translate_range(va, self.out_words)
            .expect("mapped store range");
        let global = Some(self.global_frame(self.frame_idx));
        self.store_acked_words = 0;
        let mut data = std::mem::take(&mut self.output_buffer);
        let mut cursor = 0usize;
        'chunks: for (paddr, len) in chunks {
            for (mem_tile, local_addr, l) in self.mem_map.split_range(paddr, len) {
                // A per-tile chunk may exceed the packet cap; sub-split it.
                let mut sub_addr = local_addr;
                let mut remaining = l as usize;
                while remaining > 0 {
                    let take = remaining.min(MAX_DMA_PACKET_WORDS);
                    // A short-output fault leaves fewer words in the PLM
                    // than the descriptor covers; only what exists is sent
                    // (the ack shortfall is what the watchdog then sees).
                    let send = take.min(data.len() - cursor);
                    if send == 0 {
                        break 'chunks;
                    }
                    let mut payload = vec![sub_addr, send as u64];
                    payload.extend_from_slice(&data[cursor..cursor + send]);
                    self.stats.dma_words_stored += send as u64;
                    self.tx_queue.push_back(
                        Packet::new(
                            self.coord,
                            mem_tile,
                            Plane::DmaReq,
                            MsgKind::DmaStoreReq,
                            payload,
                        )
                        .with_frame(global),
                    );
                    cursor += send;
                    sub_addr += send as u64;
                    remaining -= take;
                }
            }
        }
        data.clear();
        self.set_state(AccelState::StoreWaitAck);
    }

    fn finish_frame(&mut self) {
        self.stats.frames_done += 1;
        let frame = self.global_frame(self.frame_idx);
        self.tracer.emit(self.cycle, self.trace_coord(), || {
            TraceEvent::FrameComplete {
                accel: self.kernel.name().to_string(),
                frame,
            }
        });
        self.frame_idx += 1;
        if self.frame_idx >= self.n_frames {
            self.regs.set_status(STATUS_DONE);
            self.set_state(AccelState::Done);
            self.tx_queue.push_back(Packet::new(
                self.coord,
                self.irq_target,
                Plane::IoIrq,
                MsgKind::Irq,
                vec![self.coord.to_reg()],
            ));
        } else {
            self.set_state(AccelState::LoadIssue);
        }
    }
}

impl Schedulable for AccelTile {
    type Fabric = Mesh;

    fn tick(&mut self, mesh: &mut Mesh) -> Progress {
        AccelTile::tick(self, mesh)
    }

    fn progress(&self, now: u64) -> Progress {
        AccelTile::progress(self, now)
    }

    fn advance(&mut self, delta: u64) {
        AccelTile::advance(self, delta);
    }
}

// Unit tests for the tile FSM live in the `soc` module's tests, where a
// full mesh + memory tile environment is available; see `soc.rs`.
