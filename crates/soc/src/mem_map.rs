//! Address interleaving across memory tiles.
//!
//! ESP SoCs can instantiate several memory tiles; the physical address
//! space is block-interleaved across them so aggregate DRAM bandwidth
//! scales with tile count, and DMA request/response plane decoupling
//! "prevent[s] deadlock when multiple accelerators and multiple memory
//! tiles are present" (paper, §II). The map tells every DMA engine which
//! memory tile owns a given physical address and at which tile-local
//! offset.

use esp4ml_noc::Coord;
use serde::{Deserialize, Serialize};

/// The memory-tile interleaving map of an SoC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemMap {
    /// Memory-tile coordinates, in interleave order.
    coords: Vec<Coord>,
    /// Interleave block size in words.
    interleave_words: u64,
    /// Capacity of each tile's DRAM in words.
    tile_words: u64,
}

impl MemMap {
    /// Default interleave granularity: one 4 KiB page (512 words), so a
    /// page-sized DMA burst stays within one memory tile.
    pub const DEFAULT_INTERLEAVE_WORDS: u64 = 512;

    /// Builds a map over the given memory tiles.
    ///
    /// # Panics
    ///
    /// Panics if `coords` is empty or the interleave size is zero.
    pub fn new(coords: Vec<Coord>, interleave_words: u64, tile_words: u64) -> Self {
        assert!(!coords.is_empty(), "at least one memory tile required");
        assert!(interleave_words > 0, "interleave must be positive");
        MemMap {
            coords,
            interleave_words,
            tile_words,
        }
    }

    /// Number of memory tiles.
    pub fn tile_count(&self) -> usize {
        self.coords.len()
    }

    /// Memory-tile coordinates, in interleave order.
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// Total words of the interleaved address space.
    pub fn total_words(&self) -> u64 {
        self.tile_words * self.coords.len() as u64
    }

    /// The owning memory tile and tile-local word address of `addr`.
    pub fn owner(&self, addr: u64) -> (Coord, u64) {
        let n = self.coords.len() as u64;
        let block = addr / self.interleave_words;
        let offset = addr % self.interleave_words;
        let tile = (block % n) as usize;
        let local_block = block / n;
        (
            self.coords[tile],
            local_block * self.interleave_words + offset,
        )
    }

    /// Splits the physical range `[addr, addr + len)` into per-tile
    /// contiguous chunks `(tile, local_addr, len)`, in address order.
    pub fn split_range(&self, addr: u64, len: u64) -> Vec<(Coord, u64, u64)> {
        let mut out = Vec::new();
        let mut a = addr;
        let mut remaining = len;
        while remaining > 0 {
            let (tile, local) = self.owner(a);
            let in_block = self.interleave_words - (a % self.interleave_words);
            let take = in_block.min(remaining);
            // Merge with the previous chunk when same tile and locally
            // adjacent (always true with a single memory tile).
            if let Some(last) = out.last_mut() {
                let (lt, la, ll): &mut (Coord, u64, u64) = last;
                if *lt == tile && *la + *ll == local {
                    *ll += take;
                    a += take;
                    remaining -= take;
                    continue;
                }
            }
            out.push((tile, local, take));
            a += take;
            remaining -= take;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tile_is_identity() {
        let m = MemMap::new(vec![Coord::new(1, 0)], 512, 4096);
        assert_eq!(m.owner(0), (Coord::new(1, 0), 0));
        assert_eq!(m.owner(4095), (Coord::new(1, 0), 4095));
        assert_eq!(
            m.split_range(100, 3000),
            vec![(Coord::new(1, 0), 100, 3000)]
        );
        assert_eq!(m.total_words(), 4096);
    }

    #[test]
    fn two_tiles_interleave_blocks() {
        let a = Coord::new(1, 0);
        let b = Coord::new(2, 0);
        let m = MemMap::new(vec![a, b], 4, 64);
        // Blocks: [0..4) -> a local 0, [4..8) -> b local 0, [8..12) -> a local 4...
        assert_eq!(m.owner(0), (a, 0));
        assert_eq!(m.owner(3), (a, 3));
        assert_eq!(m.owner(4), (b, 0));
        assert_eq!(m.owner(8), (a, 4));
        assert_eq!(m.owner(13), (b, 5));
        assert_eq!(m.total_words(), 128);
    }

    #[test]
    fn split_range_crosses_tiles() {
        let a = Coord::new(1, 0);
        let b = Coord::new(2, 0);
        let m = MemMap::new(vec![a, b], 4, 64);
        let chunks = m.split_range(2, 9);
        // words 2..4 (a), 4..8 (b), 8..11 (a local 4..7)
        assert_eq!(chunks, vec![(a, 2, 2), (b, 0, 4), (a, 4, 3)]);
        let covered: u64 = chunks.iter().map(|&(_, _, l)| l).sum();
        assert_eq!(covered, 9);
    }

    #[test]
    fn split_range_merges_within_tile() {
        let a = Coord::new(1, 0);
        let m = MemMap::new(vec![a], 4, 64);
        // A single-tile map must merge all blocks into one chunk.
        assert_eq!(m.split_range(0, 16), vec![(a, 0, 16)]);
    }

    #[test]
    fn owner_roundtrip_unique() {
        // Every address maps to exactly one (tile, local) pair, and
        // distinct addresses never collide.
        let m = MemMap::new(
            vec![Coord::new(0, 0), Coord::new(1, 0), Coord::new(2, 0)],
            8,
            64,
        );
        let mut seen = std::collections::BTreeSet::new();
        for addr in 0..m.total_words() {
            let key = m.owner(addr);
            assert!(seen.insert(key), "collision at {addr}: {key:?}");
            assert!(key.1 < 64, "local address out of tile at {addr}");
        }
    }
}
