//! The ESP tile-based SoC architecture, as extended by ESP4ML.
//!
//! An ESP SoC is a grid of tiles — processor, memory, accelerator,
//! auxiliary — connected by a six-plane 2D-mesh NoC (provided by
//! [`esp4ml_noc`]). Each accelerator sits behind a *socket* that implements
//! platform services: a DMA engine with TLB-backed virtual addressing,
//! memory-mapped configuration registers, and interrupt delivery. ESP4ML
//! adds two registers to every accelerator (`LOCATION_REG`, `P2P_REG`) and
//! a **point-to-point platform service** that remaps DMA transactions into
//! receiver-initiated tile-to-tile transfers without adding any NoC
//! resources.
//!
//! This crate provides the cycle-level model of all of it:
//!
//! * [`AcceleratorKernel`] — the behavioural COMPUTE stage an accelerator
//!   plugs into the wrapper (Fig. 4 of the paper): NN engines compiled by
//!   `esp4ml-hls4ml`, vision kernels from `esp4ml-vision`, or test stubs.
//! * [`AccelTile`] — the wrapper FSM: LOAD (DMA or p2p) → COMPUTE → STORE
//!   (DMA or p2p), with PLM buffers, TLB, packing of 16-bit values into
//!   64-bit NoC words, and the consumption-assumption-preserving on-demand
//!   p2p protocol.
//! * [`MemTile`] — the memory tile: DMA request service over DRAM.
//! * [`ProcTile`] — the processor tile: issues register writes, collects
//!   interrupts (the hardware side of the Linux runtime).
//! * [`Soc`] / [`SocBuilder`] — floorplan configuration (the `.esp_config`
//!   GUI analog) and the cycle simulator binding tiles to the NoC.
//!
//! # Example
//!
//! ```
//! use esp4ml_soc::{SocBuilder, ScaleKernel, AccelConfig, regs};
//! use esp4ml_noc::Coord;
//!
//! # fn main() -> Result<(), esp4ml_soc::SocError> {
//! let mut soc = SocBuilder::new(2, 2)
//!     .processor(Coord::new(0, 0))
//!     .memory(Coord::new(1, 0))
//!     .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("double", 8, 2)))
//!     .build()?;
//! // Write the input frame into DRAM and configure + start the accelerator.
//! let accel = Coord::new(0, 1);
//! for i in 0..8 {
//!     soc.dram_poke_value(i, i + 1)?; // values 1..=8, packed 4 per word
//! }
//! soc.map_contiguous(accel, 0, 1024)?;
//! soc.configure_accel(accel, &AccelConfig::dma_to_dma(0, 512, 1))?;
//! soc.start_accel(accel)?;
//! assert!(soc.run_until_idle(100_000).is_idle());
//! assert_eq!(soc.take_irqs(), vec![accel]);
//! // Output buffer starts at word 512, i.e. value index 2048.
//! assert_eq!(soc.dram_peek_value(4 * 512)?, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accel_tile;
mod error;
mod kernel;
mod mem_map;
mod mem_tile;
mod proc_tile;
pub mod regs;
mod sanitize;
mod soc;
mod stats;

pub use accel_tile::{
    AccelConfig, AccelFaultsState, AccelState, AccelTile, AccelTileState, CommMode,
    HangFaultState, ShortFaultState,
};
pub use error::SocError;
pub use kernel::{AcceleratorKernel, KernelOutput, NnKernel, ScaleKernel};
pub use mem_map::MemMap;
pub use mem_tile::{DropFaultState, MemFaultsState, MemTile, MemTileState, PendingState};
pub use proc_tile::{ProcTile, ProcTileState};
pub use regs::P2pConfig;
pub use sanitize::{BlockedTile, DeadlockDiagnosis, SocSanitizerState};
pub use soc::{RunOutcome, Soc, SocBuilder, SocEngine, SocSnapshot, TileKind};
pub use stats::{AccelStats, SocStats};

// Diagnostic vocabulary of the sanitizer, re-exported so `Soc` users can
// arm it and consume its verdicts without naming the check crate.
pub use esp4ml_check::{Diagnostic, Report, SanitizerConfig, Severity};

// The event-driven scheduling contract all tiles implement (defined next
// to the mesh, re-exported here for tile users).
pub use esp4ml_noc::{Progress, Schedulable};
