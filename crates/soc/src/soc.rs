//! SoC construction (the `.esp_config` analog) and the cycle simulator.

use crate::accel_tile::{AccelConfig, AccelTile, AccelTileState};
use crate::kernel::{pack_values, unpack_values, AcceleratorKernel};
use crate::mem_map::MemMap;
use crate::mem_tile::{MemTile, MemTileState};
use crate::proc_tile::{ProcTile, ProcTileState};
use crate::regs::{self, CMD_START};
use crate::sanitize::{wait_cycle, SocSanitizer, SocSanitizerState};
use crate::stats::SocStats;
use crate::{BlockedTile, DeadlockDiagnosis, SocError};
use esp4ml_check::{codes, Diagnostic, Report, SanitizerConfig};
use esp4ml_fault::{FaultKind, FaultPlan};
use esp4ml_hls::Resources;
use esp4ml_mem::{CacheConfig, CacheStats, DramConfig, PageTable};
use esp4ml_noc::{Coord, Mesh, MeshConfig, MeshState, NocHeatmap, NocStats};
use esp4ml_trace::{CounterRegistry, CounterSeries, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which simulation engine drives [`Soc::step`] and the run loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SocEngine {
    /// Tick every component every cycle — the reference oracle.
    Naive,
    /// Skip spans where every component is blocked or quiescent by
    /// jumping the clock to the earliest wake cycle. Cycle-exact with
    /// [`SocEngine::Naive`]: identical metrics, counters, sampling rows
    /// and trace events.
    #[default]
    EventDriven,
}

/// How a bounded run ([`Soc::run_until_idle`]) ended.
#[must_use]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The SoC went quiescent after this many cycles.
    Idle {
        /// Cycles executed before quiescence.
        cycles: u64,
    },
    /// The cycle budget ran out with work still pending (a stuck
    /// accelerator, an unserviced p2p request, a deadlocked pipeline).
    TimedOut {
        /// Cycles executed (the full budget).
        cycles: u64,
        /// Wait-for-graph walk of the stuck SoC, when any tile was
        /// blocked at timeout. Identical across engines.
        diagnosis: Option<Box<DeadlockDiagnosis>>,
    },
}

impl RunOutcome {
    /// Cycles executed, however the run ended.
    pub fn cycles(&self) -> u64 {
        match self {
            RunOutcome::Idle { cycles } | RunOutcome::TimedOut { cycles, .. } => *cycles,
        }
    }

    /// True when the run reached quiescence.
    pub fn is_idle(&self) -> bool {
        matches!(self, RunOutcome::Idle { .. })
    }

    /// True when the cycle budget ran out first.
    pub fn timed_out(&self) -> bool {
        matches!(self, RunOutcome::TimedOut { .. })
    }

    /// The deadlock diagnosis attached to a timeout, when one exists.
    pub fn diagnosis(&self) -> Option<&DeadlockDiagnosis> {
        match self {
            RunOutcome::TimedOut {
                diagnosis: Some(d), ..
            } => Some(d),
            _ => None,
        }
    }
}

/// What occupies a grid position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileKind {
    /// A processor tile (Ariane RISC-V in the paper's SoCs).
    Processor,
    /// A memory tile fronting off-chip DRAM.
    Memory,
    /// An accelerator tile.
    Accelerator,
    /// An auxiliary tile (Ethernet, UART, debug).
    Auxiliary,
    /// Unoccupied (router only).
    Empty,
}

/// Builder for an ESP SoC instance: the floorplan step of the design flow,
/// where the ESP graphical configuration interface "can be used to pick the
/// location of each accelerator in the SoC" (paper, §IV).
pub struct SocBuilder {
    cols: usize,
    rows: usize,
    clock_mhz: f64,
    engine: SocEngine,
    procs: Vec<Coord>,
    mems: Vec<(Coord, DramConfig, Option<CacheConfig>)>,
    aux: Vec<Coord>,
    accels: Vec<(Coord, Box<dyn AcceleratorKernel>)>,
}

impl std::fmt::Debug for SocBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocBuilder")
            .field("cols", &self.cols)
            .field("rows", &self.rows)
            .field("accels", &self.accels.len())
            .finish()
    }
}

impl SocBuilder {
    /// Starts a floorplan for a `cols x rows` mesh, clocked at the paper's
    /// FPGA frequency (78 MHz) by default.
    pub fn new(cols: usize, rows: usize) -> Self {
        SocBuilder {
            cols,
            rows,
            clock_mhz: 78.0,
            engine: SocEngine::default(),
            procs: Vec::new(),
            mems: Vec::new(),
            aux: Vec::new(),
            accels: Vec::new(),
        }
    }

    /// Sets the SoC clock in MHz.
    pub fn clock_mhz(mut self, mhz: f64) -> Self {
        self.clock_mhz = mhz;
        self
    }

    /// Selects the simulation engine (event-driven by default).
    pub fn engine(mut self, engine: SocEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Places a processor tile.
    pub fn processor(mut self, coord: Coord) -> Self {
        self.procs.push(coord);
        self
    }

    /// Places a memory tile with the default DRAM configuration.
    pub fn memory(self, coord: Coord) -> Self {
        self.memory_with(coord, DramConfig::default())
    }

    /// Places a memory tile with an explicit DRAM configuration.
    pub fn memory_with(mut self, coord: Coord, config: DramConfig) -> Self {
        self.mems.push((coord, config, None));
        self
    }

    /// Places a memory tile whose DRAM sits behind an LLC partition, so
    /// accelerator DMA through this tile is LLC-coherent.
    pub fn memory_llc(mut self, coord: Coord, config: DramConfig, cache: CacheConfig) -> Self {
        self.mems.push((coord, config, Some(cache)));
        self
    }

    /// Places an auxiliary tile.
    pub fn auxiliary(mut self, coord: Coord) -> Self {
        self.aux.push(coord);
        self
    }

    /// Places an accelerator tile hosting `kernel`.
    pub fn accelerator(mut self, coord: Coord, kernel: Box<dyn AcceleratorKernel>) -> Self {
        self.accels.push((coord, kernel));
        self
    }

    /// Builds the SoC.
    ///
    /// # Errors
    ///
    /// * [`SocError::MissingTile`] without at least one processor and one
    ///   memory tile;
    /// * [`SocError::TileConflict`] when two tiles share a coordinate;
    /// * [`SocError::Noc`] when the grid dimensions are invalid or a tile
    ///   lies outside it.
    pub fn build(self) -> Result<Soc, SocError> {
        let mesh = Mesh::new(MeshConfig::new(self.cols, self.rows))?;
        if self.procs.is_empty() {
            return Err(SocError::MissingTile { kind: "processor" });
        }
        if self.mems.is_empty() {
            return Err(SocError::MissingTile { kind: "memory" });
        }
        let primary_proc = self.procs[0];
        // All memory tiles must expose the same capacity so the
        // block-interleaved address map stays uniform.
        let tile_words = self.mems[0].1.size_words;
        if self
            .mems
            .iter()
            .any(|(_, cfg, _)| cfg.size_words != tile_words)
        {
            return Err(SocError::BadConfig(
                "memory tiles must have equal DRAM capacity for interleaving".into(),
            ));
        }
        let mem_map = MemMap::new(
            self.mems.iter().map(|(c, _, _)| *c).collect(),
            MemMap::DEFAULT_INTERLEAVE_WORDS,
            tile_words,
        );

        let mut tile_map: HashMap<Coord, (TileKind, usize)> = HashMap::new();
        let mut claim = |coord: Coord, kind: TileKind, idx: usize| -> Result<(), SocError> {
            if coord.x as usize >= self.cols || coord.y as usize >= self.rows {
                return Err(SocError::Noc(esp4ml_noc::NocError::OutOfBounds {
                    coord,
                    cols: self.cols,
                    rows: self.rows,
                }));
            }
            if tile_map.insert(coord, (kind, idx)).is_some() {
                return Err(SocError::TileConflict { coord });
            }
            Ok(())
        };

        let mut proc_tiles = Vec::new();
        for (i, &c) in self.procs.iter().enumerate() {
            claim(c, TileKind::Processor, i)?;
            proc_tiles.push(ProcTile::new(c));
        }
        let mut mem_tiles = Vec::new();
        for (i, (c, cfg, llc)) in self.mems.iter().enumerate() {
            claim(*c, TileKind::Memory, i)?;
            mem_tiles.push(match llc {
                Some(cache) => MemTile::with_llc(*c, *cfg, *cache),
                None => MemTile::new(*c, *cfg),
            });
        }
        for (i, &c) in self.aux.iter().enumerate() {
            claim(c, TileKind::Auxiliary, i)?;
        }
        let mut accel_tiles = Vec::new();
        for (i, (c, kernel)) in self.accels.into_iter().enumerate() {
            claim(c, TileKind::Accelerator, i)?;
            accel_tiles.push(AccelTile::new(c, kernel, mem_map.clone(), primary_proc));
        }

        Ok(Soc {
            mesh,
            proc_tiles,
            mem_tiles,
            accel_tiles,
            aux_tiles: self.aux,
            tile_map,
            mem_map,
            clock_hz: self.clock_mhz * 1.0e6,
            primary_proc,
            tracer: Tracer::disabled(),
            series: None,
            engine: self.engine,
            sanitizer: None,
        })
    }
}

/// The complete serializable machine state of a [`Soc`], captured by
/// [`Soc::snapshot`] and reinstated by [`Soc::restore`].
///
/// A snapshot covers everything that influences future simulation:
/// mesh planes, routers and in-flight flits; socket FSMs, registers and
/// PLM contents; memory-tile DRAM images and in-flight DMA state;
/// pending interrupts; every statistics counter and sampling series; the
/// sanitizer ledgers; and installed fault plans *with their trigger
/// counts*, so a restored run fires its remaining faults at the same
/// architectural events as the original.
///
/// Deliberately excluded:
///
/// * **Structure** — grid dimensions, tile placement, kernels, DRAM/LLC
///   geometry, the memory map and routing tables. A snapshot restores
///   only onto a SoC built from the same floorplan; [`Soc::restore`]
///   validates the structural fit.
/// * **The engine** — [`SocEngine::Naive`] and
///   [`SocEngine::EventDriven`] are cycle-exact by contract and keep no
///   hidden state, so a snapshot taken under one engine resumes
///   byte-identically under the other.
/// * **The tracer** — a live host-side sink handle, not machine state.
///   The restored SoC keeps emitting into whatever tracer it already
///   has.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocSnapshot {
    /// NoC state: routers, in-flight flits, endpoint queues, stats,
    /// sanitizer shadow state and armed NoC faults.
    pub mesh: MeshState,
    /// Processor tiles, in placement order.
    pub proc_tiles: Vec<ProcTileState>,
    /// Memory tiles, in placement order.
    pub mem_tiles: Vec<MemTileState>,
    /// Accelerator tiles, in placement order.
    pub accel_tiles: Vec<AccelTileState>,
    /// The counter sampling series, when sampling is on.
    pub series: Option<CounterSeries>,
    /// The SoC-level sanitizer, when armed.
    pub sanitizer: Option<SocSanitizerState>,
}

/// A complete, running ESP SoC instance.
///
/// See the [crate-level documentation](crate) for a usage example.
#[derive(Debug)]
pub struct Soc {
    mesh: Mesh,
    proc_tiles: Vec<ProcTile>,
    mem_tiles: Vec<MemTile>,
    accel_tiles: Vec<AccelTile>,
    aux_tiles: Vec<Coord>,
    tile_map: HashMap<Coord, (TileKind, usize)>,
    mem_map: MemMap,
    clock_hz: f64,
    primary_proc: Coord,
    tracer: Tracer,
    series: Option<CounterSeries>,
    engine: SocEngine,
    sanitizer: Option<SocSanitizer>,
}

impl Soc {
    /// Socket resources instantiated per accelerator tile (DMA engine, TLB,
    /// register file, wrapper FIFOs and double-buffered PLM).
    const SOCKET: Resources = Resources::new(11_000, 14_000, 16, 0);
    /// A processor tile: Ariane core plus L1/L2 caches.
    const PROC_TILE: Resources = Resources::new(95_000, 80_000, 80, 27);
    /// A memory tile: DDR controller front-end and coherence directory.
    const MEM_TILE: Resources = Resources::new(30_000, 35_000, 72, 0);
    /// An auxiliary tile (Ethernet, UART, interrupt controller).
    const AUX_TILE: Resources = Resources::new(18_000, 20_000, 16, 0);
    /// Six-plane router plus NoC interface, per grid position.
    const ROUTER: Resources = Resources::new(4_000, 5_000, 0, 0);

    /// The clock frequency in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.mesh.cycle()
    }

    /// The kind of tile at `coord` ([`TileKind::Empty`] if unoccupied).
    pub fn tile_kind(&self, coord: Coord) -> TileKind {
        self.tile_map
            .get(&coord)
            .map_or(TileKind::Empty, |&(k, _)| k)
    }

    /// Coordinates of all accelerator tiles, in placement order.
    pub fn accel_coords(&self) -> Vec<Coord> {
        self.accel_tiles.iter().map(|t| t.coord()).collect()
    }

    /// Finds an accelerator tile by kernel (device) name.
    pub fn accel_by_name(&self, name: &str) -> Option<Coord> {
        self.accel_tiles
            .iter()
            .find(|t| t.kernel_name() == name)
            .map(|t| t.coord())
    }

    fn accel_index(&self, coord: Coord) -> Result<usize, SocError> {
        match self.tile_map.get(&coord) {
            Some(&(TileKind::Accelerator, idx)) => Ok(idx),
            _ => Err(SocError::WrongTile {
                coord,
                expected: "accelerator",
            }),
        }
    }

    /// The accelerator tile at `coord`.
    ///
    /// # Errors
    ///
    /// [`SocError::WrongTile`] if `coord` is not an accelerator tile.
    pub fn accel(&self, coord: Coord) -> Result<&AccelTile, SocError> {
        Ok(&self.accel_tiles[self.accel_index(coord)?])
    }

    /// Reads a socket register of an accelerator (functional driver read,
    /// e.g. `LOCATION_REG` at probe time).
    ///
    /// # Errors
    ///
    /// [`SocError::WrongTile`] if `coord` is not an accelerator tile.
    pub fn read_reg(&self, coord: Coord, offset: u64) -> Result<u64, SocError> {
        Ok(self.accel(coord)?.read_reg(offset))
    }

    /// Queues a register write from the (primary) processor tile; the write
    /// travels the I/O NoC plane like a real `ioctl`-path store.
    ///
    /// # Errors
    ///
    /// [`SocError::WrongTile`] if `coord` is not an accelerator tile.
    pub fn write_reg(&mut self, coord: Coord, offset: u64, value: u64) -> Result<(), SocError> {
        self.accel_index(coord)?;
        self.proc_tiles[0].queue_reg_write(coord, offset, value);
        Ok(())
    }

    /// Installs a page table mapping the accelerator's virtual address
    /// space onto physical memory.
    ///
    /// # Errors
    ///
    /// [`SocError::WrongTile`] if `coord` is not an accelerator tile.
    pub fn set_page_table(&mut self, coord: Coord, table: PageTable) -> Result<(), SocError> {
        let idx = self.accel_index(coord)?;
        self.accel_tiles[idx].set_page_table(table);
        Ok(())
    }

    /// Maps a physically contiguous region `[phys_base, phys_base + len)`
    /// as the accelerator's virtual address space (the `esp_alloc` fast
    /// path).
    ///
    /// # Errors
    ///
    /// [`SocError::WrongTile`] for non-accelerator tiles;
    /// [`SocError::BadConfig`] for a zero-length mapping.
    pub fn map_contiguous(
        &mut self,
        coord: Coord,
        phys_base: u64,
        len: u64,
    ) -> Result<(), SocError> {
        let table = PageTable::contiguous(phys_base, len, PageTable::DEFAULT_PAGE_WORDS)
            .map_err(|e| SocError::BadConfig(e.to_string()))?;
        self.set_page_table(coord, table)
    }

    /// Writes the full invocation configuration to an accelerator's socket
    /// registers (each write is one I/O-plane packet).
    ///
    /// # Errors
    ///
    /// [`SocError::WrongTile`] if `coord` is not an accelerator tile.
    pub fn configure_accel(&mut self, coord: Coord, cfg: &AccelConfig) -> Result<(), SocError> {
        self.write_reg(coord, regs::REG_CONF_SIZE, cfg.conf_size)?;
        self.write_reg(coord, regs::REG_CONF_OUT_SIZE, cfg.out_size)?;
        self.write_reg(coord, regs::REG_SRC_OFFSET, cfg.src_offset)?;
        self.write_reg(coord, regs::REG_DST_OFFSET, cfg.dst_offset)?;
        self.write_reg(coord, regs::REG_N_FRAMES, cfg.n_frames)?;
        self.write_reg(coord, regs::REG_P2P, cfg.p2p.to_reg())?;
        self.write_reg(coord, regs::REG_FLAGS, cfg.flags)?;
        self.write_reg(coord, regs::REG_DVFS, cfg.dvfs_divider)?;
        self.write_reg(coord, regs::REG_FRAME_BASE, cfg.frame_base)?;
        self.write_reg(coord, regs::REG_FRAME_STRIDE, cfg.frame_stride)?;
        Ok(())
    }

    /// Starts the configured batch on an accelerator.
    ///
    /// # Errors
    ///
    /// [`SocError::WrongTile`] if `coord` is not an accelerator tile.
    pub fn start_accel(&mut self, coord: Coord) -> Result<(), SocError> {
        self.write_reg(coord, regs::REG_CMD, CMD_START)
    }

    /// Takes all pending interrupts (accelerator tile coordinates).
    ///
    /// Interrupts already delivered to the processor tile's socket but not
    /// yet seen by its last tick are drained first, so an interrupt raised
    /// by the final cycle of [`Soc::run_until_idle`] is never missed.
    pub fn take_irqs(&mut self) -> Vec<Coord> {
        self.proc_tiles[0].drain_irqs(&mut self.mesh);
        self.proc_tiles[0].take_irqs()
    }

    /// The memory-tile interleaving map.
    pub fn mem_map(&self) -> &MemMap {
        &self.mem_map
    }

    /// Aggregated LLC counters across memory tiles, if any tile hosts an
    /// LLC partition.
    pub fn llc_stats(&self) -> Option<CacheStats> {
        let mut total = CacheStats::default();
        let mut any = false;
        for m in &self.mem_tiles {
            if let Some(s) = m.llc_stats() {
                any = true;
                total.hits += s.hits;
                total.misses += s.misses;
                total.writebacks += s.writebacks;
            }
        }
        any.then_some(total)
    }

    fn mem_index(&self, coord: Coord) -> usize {
        match self.tile_map.get(&coord) {
            Some(&(TileKind::Memory, idx)) => idx,
            _ => unreachable!("mem map coordinates are memory tiles"),
        }
    }

    /// Direct DRAM word write in the interleaved address space (testbench).
    ///
    /// # Errors
    ///
    /// [`SocError::BadAddress`] past the end of DRAM.
    pub fn dram_poke(&mut self, addr: u64, word: u64) -> Result<(), SocError> {
        if addr >= self.mem_map.total_words() {
            return Err(SocError::BadAddress { addr });
        }
        let (tile, local) = self.mem_map.owner(addr);
        let idx = self.mem_index(tile);
        self.mem_tiles[idx].poke(local, word);
        Ok(())
    }

    /// Direct DRAM word read in the interleaved address space (testbench).
    ///
    /// # Errors
    ///
    /// [`SocError::BadAddress`] past the end of DRAM.
    pub fn dram_peek(&self, addr: u64) -> Result<u64, SocError> {
        if addr >= self.mem_map.total_words() {
            return Err(SocError::BadAddress { addr });
        }
        let (tile, local) = self.mem_map.owner(addr);
        let idx = self.mem_index(tile);
        Ok(self.mem_tiles[idx].peek(local))
    }

    /// Packs `values` of `data_bits` bits each and writes them starting at
    /// word address `addr` (testbench initialization, not counted as DRAM
    /// traffic).
    ///
    /// # Errors
    ///
    /// [`SocError::BadAddress`] if the packed data runs past DRAM.
    pub fn dram_write_values(
        &mut self,
        addr: u64,
        values: &[u64],
        data_bits: u32,
    ) -> Result<(), SocError> {
        for (i, word) in pack_values(values, data_bits).into_iter().enumerate() {
            self.dram_poke(addr + i as u64, word)?;
        }
        Ok(())
    }

    /// Reads and unpacks `count` values of `data_bits` bits each starting
    /// at word address `addr` (testbench validation).
    ///
    /// # Errors
    ///
    /// [`SocError::BadAddress`] if the packed data runs past DRAM.
    pub fn dram_read_values(
        &self,
        addr: u64,
        count: usize,
        data_bits: u32,
    ) -> Result<Vec<u64>, SocError> {
        let per_word = (64 / data_bits) as usize;
        let n_words = count.div_ceil(per_word);
        let mut words = Vec::with_capacity(n_words);
        for i in 0..n_words {
            words.push(self.dram_peek(addr + i as u64)?);
        }
        Ok(unpack_values(&words, count, data_bits))
    }

    /// Convenience for the doc example: writes one 16-bit value at value
    /// index `idx` (i.e. packed 4 per word).
    ///
    /// # Errors
    ///
    /// [`SocError::BadAddress`] past the end of DRAM.
    pub fn dram_poke_value(&mut self, idx: u64, value: u64) -> Result<(), SocError> {
        let addr = idx / 4;
        let shift = (idx % 4) * 16;
        let word = self.dram_peek(addr)? & !(0xffffu64 << shift);
        self.dram_poke(addr, word | ((value & 0xffff) << shift))
    }

    /// Reads one 16-bit value at value index `idx`.
    ///
    /// # Errors
    ///
    /// [`SocError::BadAddress`] past the end of DRAM.
    pub fn dram_peek_value(&self, idx: u64) -> Result<u64, SocError> {
        let addr = idx / 4;
        let shift = (idx % 4) * 16;
        Ok((self.dram_peek(addr)? >> shift) & 0xffff)
    }

    /// Whether everything — tiles and NoC — is quiescent. Packets sitting
    /// in ejection queues count as pending work: a tile will drain them on
    /// its next tick.
    pub fn is_idle(&self) -> bool {
        self.mesh.is_idle()
            && self.mesh.undelivered_total() == 0
            && self.proc_tiles.iter().all(ProcTile::is_idle)
            && self.mem_tiles.iter().all(MemTile::is_idle)
            && self.accel_tiles.iter().all(AccelTile::is_idle)
    }

    /// The simulation engine currently driving [`Soc::step`].
    pub fn engine(&self) -> SocEngine {
        self.engine
    }

    /// Switches the simulation engine (e.g. back to [`SocEngine::Naive`]
    /// as an oracle).
    pub fn set_engine(&mut self, engine: SocEngine) {
        self.engine = engine;
    }

    /// Captures the complete serializable machine state (see
    /// [`SocSnapshot`] for exactly what is and is not included).
    ///
    /// `restore(snapshot(s))` resumes byte-identically under both
    /// engines: metrics, counters, sampling rows, trace events, fault
    /// firings and sanitizer verdicts all continue exactly as if the
    /// original simulation had never been interrupted. This is the
    /// foundation of shared-prefix forking: simulate a common load/config
    /// prefix once, snapshot, and fork the snapshot across divergent
    /// continuations (modes, fault plans, seeds).
    pub fn snapshot(&self) -> SocSnapshot {
        SocSnapshot {
            mesh: self.mesh.state(),
            proc_tiles: self.proc_tiles.iter().map(ProcTile::state).collect(),
            mem_tiles: self.mem_tiles.iter().map(MemTile::state).collect(),
            accel_tiles: self.accel_tiles.iter().map(AccelTile::tile_state).collect(),
            series: self.series.clone(),
            sanitizer: self.sanitizer.as_ref().map(SocSanitizer::state),
        }
    }

    /// Reinstates state captured by [`Soc::snapshot`], fully replacing
    /// the current machine state — including sanitizer ledgers and
    /// installed fault plans, so restoring a fault-free snapshot
    /// *uninstalls* any plan armed since it was taken (this is what lets
    /// one warmed checkpoint fork into both healthy and faulty runs).
    ///
    /// The simulation engine and tracer are untouched: both are host-side
    /// concerns, not machine state.
    ///
    /// # Errors
    ///
    /// [`SocError::SnapshotMismatch`] when the snapshot's tile counts do
    /// not match this SoC's floorplan. Deeper structural mismatches
    /// (different grid, DRAM capacity or TLB geometry) panic, as they
    /// indicate the snapshot came from a different [`SocBuilder`] program
    /// entirely.
    pub fn restore(&mut self, snapshot: &SocSnapshot) -> Result<(), SocError> {
        let grid = self.mesh.config().cols * self.mesh.config().rows;
        let mismatch = |what: &str, got: usize, want: usize| {
            Err(SocError::SnapshotMismatch(format!(
                "snapshot has {got} {what}, this SoC has {want}"
            )))
        };
        if snapshot.mesh.routers.len() != grid {
            return mismatch("routers", snapshot.mesh.routers.len(), grid);
        }
        if snapshot.proc_tiles.len() != self.proc_tiles.len() {
            return mismatch(
                "processor tiles",
                snapshot.proc_tiles.len(),
                self.proc_tiles.len(),
            );
        }
        if snapshot.mem_tiles.len() != self.mem_tiles.len() {
            return mismatch(
                "memory tiles",
                snapshot.mem_tiles.len(),
                self.mem_tiles.len(),
            );
        }
        if snapshot.accel_tiles.len() != self.accel_tiles.len() {
            return mismatch(
                "accelerator tiles",
                snapshot.accel_tiles.len(),
                self.accel_tiles.len(),
            );
        }
        self.mesh.restore_state(&snapshot.mesh);
        for (tile, state) in self.proc_tiles.iter_mut().zip(&snapshot.proc_tiles) {
            tile.restore_state(state);
        }
        for (tile, state) in self.mem_tiles.iter_mut().zip(&snapshot.mem_tiles) {
            tile.restore_state(state);
        }
        for (tile, state) in self.accel_tiles.iter_mut().zip(&snapshot.accel_tiles) {
            tile.restore_state(state);
        }
        self.series = snapshot.series.clone();
        self.sanitizer = snapshot.sanitizer.as_ref().map(SocSanitizer::from_state);
        Ok(())
    }

    /// Advances the SoC by exactly one cycle, ticking every component
    /// (the naive per-cycle contract, regardless of engine).
    pub fn tick(&mut self) {
        for t in &mut self.proc_tiles {
            t.tick(&mut self.mesh);
        }
        for t in &mut self.accel_tiles {
            t.tick(&mut self.mesh);
        }
        for t in &mut self.mem_tiles {
            t.tick(&mut self.mesh);
        }
        self.mesh.tick();
        let cycle = self.mesh.cycle();
        if self.series.as_ref().is_some_and(|s| s.due(cycle)) {
            let snap = self.counter_registry().snapshot();
            self.series
                .as_mut()
                .expect("sampling on")
                .record(cycle, snap);
        }
        if self.sanitizer.is_some() {
            self.sanitize_audit();
        }
    }

    /// Advances the SoC by at least one and at most `limit` cycles and
    /// returns how many elapsed.
    ///
    /// Under [`SocEngine::EventDriven`], when no component is active the
    /// clock jumps over the boring span — up to the earliest wake cycle,
    /// or through the whole `limit` when everything is quiescent (idle or
    /// deadlocked) — bulk-advancing latency countdowns, statistics and
    /// [`CounterSeries`] sampling points, then executes the interesting
    /// cycle normally. Under [`SocEngine::Naive`] this is exactly one
    /// [`Soc::tick`].
    pub fn step(&mut self, limit: u64) -> u64 {
        debug_assert!(limit > 0, "step needs a non-zero cycle budget");
        if self.engine == SocEngine::EventDriven {
            if let Some(boring) = self.boring_span() {
                let skip = boring.min(limit);
                if skip > 0 {
                    self.advance_time(skip);
                }
                if skip >= limit {
                    return skip;
                }
                self.tick();
                return skip + 1;
            }
        }
        self.tick();
        1
    }

    /// The number of guaranteed-boring cycles ahead: `None` when some
    /// component is active this cycle, `Some(u64::MAX)` when everything
    /// is quiescent (the caller clamps to its budget — covers both idle
    /// and deadlock).
    fn boring_span(&self) -> Option<u64> {
        let now = self.mesh.cycle();
        let mut p = self.mesh.progress();
        for t in &self.proc_tiles {
            p = p.merge(t.progress(now));
        }
        for t in &self.accel_tiles {
            p = p.merge(t.progress(now));
        }
        for t in &self.mem_tiles {
            p = p.merge(t.progress(now));
        }
        match p.next_wake(now) {
            Some(wake) if wake <= now => None,
            Some(wake) => Some(wake - now),
            None => Some(u64::MAX),
        }
    }

    /// Bulk-applies `delta` boring cycles: every tile's internal
    /// countdowns and statistics advance as if ticked `delta` times, the
    /// mesh clock jumps, and any [`CounterSeries`] sampling point inside
    /// the span is emitted exactly as the naive engine would have (only
    /// `soc.cycles` moves during a boring span; every other counter
    /// plateaus).
    fn advance_time(&mut self, delta: u64) {
        let start = self.mesh.cycle();
        for t in &mut self.accel_tiles {
            t.advance(delta);
        }
        for t in &mut self.mem_tiles {
            t.advance(delta);
        }
        self.mesh.advance(delta);
        if let Some(every) = self.series.as_ref().map(CounterSeries::every) {
            let mut due = (start / every + 1) * every;
            while due <= start + delta {
                let mut reg = self.counter_registry();
                reg.set("soc.cycles", due);
                let snap = reg.snapshot();
                self.series.as_mut().expect("sampling on").record(due, snap);
                due += every;
            }
        }
        if self.sanitizer.is_some() {
            self.sanitize_audit();
        }
    }

    /// Runs `n` cycles.
    pub fn run_cycles(&mut self, n: u64) {
        let end = self.cycle() + n;
        while self.cycle() < end {
            self.step(end - self.cycle());
        }
    }

    /// Runs until quiescent or `max_cycles` elapse.
    pub fn run_until_idle(&mut self, max_cycles: u64) -> RunOutcome {
        let start = self.cycle();
        while !self.is_idle() {
            let elapsed = self.cycle() - start;
            if elapsed >= max_cycles {
                return RunOutcome::TimedOut {
                    cycles: elapsed,
                    diagnosis: self.diagnose_deadlock().map(Box::new),
                };
            }
            self.step(max_cycles - elapsed);
        }
        RunOutcome::Idle {
            cycles: self.cycle() - start,
        }
    }

    /// Arms the runtime invariant sanitizer: the mesh shadows its flow
    /// control state (credit/flit conservation, wormhole framing, plane
    /// assignment) and the SoC audits end-to-end DMA word accounting at
    /// every quiescent point. Promoted tile-level invariant asserts fire
    /// as typed diagnostics in release builds too.
    ///
    /// Audits run after every tick and at every fast-forward boundary,
    /// and verdicts are deduplicated, so [`SocEngine::Naive`] and
    /// [`SocEngine::EventDriven`] produce byte-identical reports.
    pub fn enable_sanitizer(&mut self, config: SanitizerConfig) {
        self.mesh.enable_sanitizer(config);
        for a in &mut self.accel_tiles {
            a.enable_sanitize();
        }
        for m in &mut self.mem_tiles {
            m.enable_sanitize();
        }
        self.sanitizer = Some(SocSanitizer::new(config));
    }

    /// Whether [`Soc::enable_sanitizer`] was called.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// The accumulated sanitizer verdict: every violation observed so
    /// far, across the mesh and all tiles, sorted and deduplicated.
    /// `None` when the sanitizer is not armed.
    pub fn sanitizer_report(&self) -> Option<Report> {
        let san = self.sanitizer.as_ref()?;
        let mut report = self.mesh.sanitizer_report().unwrap_or_default();
        san.merge_into(&mut report);
        for a in &self.accel_tiles {
            for d in a.sanitizer_violations() {
                report.push(d.clone());
            }
        }
        for m in &self.mem_tiles {
            for d in m.sanitizer_violations() {
                report.push(d.clone());
            }
        }
        report.normalize();
        Some(report)
    }

    /// Walks the wait-for graph of the accelerator wrappers and names
    /// every blocked tile — and the wait cycle, when the blocking waits
    /// close one. `None` when nothing is blocked (e.g. the timeout came
    /// from slow but progressing work).
    ///
    /// Works whether or not the sanitizer is armed; `run_until_idle`
    /// attaches the result to [`RunOutcome::TimedOut`].
    pub fn diagnose_deadlock(&self) -> Option<DeadlockDiagnosis> {
        let blocked: Vec<BlockedTile> = self
            .accel_tiles
            .iter()
            .filter_map(AccelTile::blocked_info)
            .collect();
        if blocked.is_empty() {
            return None;
        }
        let cycle = wait_cycle(&blocked);
        Some(DeadlockDiagnosis { blocked, cycle })
    }

    /// SoC-level sanitizer audit, run at every tick and fast-forward
    /// boundary: end-to-end DMA word accounting across the accelerator
    /// sockets. The conservation law only holds at quiescent points
    /// (in-flight bursts are legitimately unaccounted), so the audit
    /// gates on [`Soc::is_idle`].
    fn sanitize_audit(&mut self) {
        let Some(san) = self.sanitizer.as_ref() else {
            return;
        };
        if !san.config.dma_accounting || !self.is_idle() {
            return;
        }
        let mut received = 0u64;
        let mut loaded = 0u64;
        let mut p2p_sent = 0u64;
        for a in &self.accel_tiles {
            let s = a.stats();
            received += s.words_received;
            loaded += s.dma_words_loaded;
            p2p_sent += s.p2p_words_sent;
        }
        if received != loaded + p2p_sent {
            let diag = Diagnostic::error(
                codes::DMA_ACCOUNTING,
                "soc",
                format!(
                    "DMA word accounting violated at quiescence: accelerators received \
                     {received} words but {loaded} were DMA-loaded and {p2p_sent} were \
                     p2p-forwarded"
                ),
            )
            .with_hint("a socket dropped or duplicated DmaData words; check the offending tile's receive buffer bounds");
            self.sanitizer
                .as_mut()
                .expect("sanitizer armed")
                .record(diag);
        }
    }

    /// Installs every fault of a plan into its target component: NoC
    /// faults into the mesh, accelerator faults into the named device's
    /// tile, DMA drop faults into the first memory tile. Returns how many
    /// specs found a target (a spec naming an unknown device installs
    /// nowhere and simply never fires).
    ///
    /// Fault triggers count architectural events (invocations, bursts,
    /// packets), which occur at identical cycles under both engines, so an
    /// installed plan perturbs [`SocEngine::Naive`] and
    /// [`SocEngine::EventDriven`] runs byte-identically.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) -> usize {
        let mut installed = 0;
        for spec in &plan.faults {
            if self.mesh.install_fault(spec) {
                installed += 1;
                continue;
            }
            if self.accel_tiles.iter_mut().any(|a| a.install_fault(spec)) {
                installed += 1;
                continue;
            }
            if matches!(spec.kind, FaultKind::DmaDropWords { .. }) {
                if let Some(m) = self.mem_tiles.first_mut() {
                    if m.install_fault(spec) {
                        installed += 1;
                    }
                }
            }
        }
        installed
    }

    /// Total fault firings so far across the mesh and every tile (0 when
    /// no plan is installed).
    pub fn faults_injected(&self) -> u64 {
        self.mesh.faults_fired()
            + self
                .accel_tiles
                .iter()
                .map(AccelTile::faults_fired)
                .sum::<u64>()
            + self
                .mem_tiles
                .iter()
                .map(MemTile::faults_fired)
                .sum::<u64>()
    }

    /// Hard-resets the accelerator tile at `coord` back to idle — the
    /// driver's recovery action after a watchdog expiry, before retrying
    /// the invocation. Configuration registers and statistics survive.
    ///
    /// # Errors
    ///
    /// [`SocError::WrongTile`] if `coord` is not an accelerator tile.
    pub fn reset_accel(&mut self, coord: Coord) -> Result<(), SocError> {
        let idx = self.accel_index(coord)?;
        self.accel_tiles[idx].reset();
        Ok(())
    }

    /// Fault hook (sanitizer testing): corrupts the shadow credit state
    /// of one router input queue so the next audit reports `E0401`.
    ///
    /// # Panics
    ///
    /// If the sanitizer is not armed or `coord` is out of bounds.
    pub fn fault_leak_credit(&mut self, coord: Coord, plane: esp4ml_noc::Plane) {
        self.mesh
            .fault_leak_credit(coord, plane, esp4ml_noc::Port::Local);
    }

    /// Fault hook (sanitizer testing): corrupts an accelerator's receive
    /// statistics so the next quiescent DMA-accounting audit reports
    /// `E0404`.
    ///
    /// # Panics
    ///
    /// If the sanitizer is not armed or `coord` is not an accelerator.
    pub fn fault_phantom_words(&mut self, coord: Coord, words: u64) {
        assert!(self.sanitizer.is_some(), "sanitizer not armed");
        let a = self
            .accel_tiles
            .iter_mut()
            .find(|a| a.coord() == coord)
            .expect("accelerator tile");
        a.fault_phantom_words(words);
    }

    /// Installs a trace sink handle, distributing clones into the mesh,
    /// every accelerator tile and every memory tile so all of them emit
    /// into the same sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.mesh.set_tracer(tracer.clone());
        for a in &mut self.accel_tiles {
            a.set_tracer(tracer.clone());
        }
        for m in &mut self.mem_tiles {
            m.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
    }

    /// The SoC-wide trace handle (disabled unless [`Soc::set_tracer`] was
    /// called with an enabled one).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Starts sampling the counter registry every `every` cycles into a
    /// [`CounterSeries`] (see [`Soc::take_counter_series`]).
    pub fn enable_counter_sampling(&mut self, every: u64) {
        self.series = Some(CounterSeries::new(every));
    }

    /// The counter time-series accumulated so far, if sampling is on.
    pub fn counter_series(&self) -> Option<&CounterSeries> {
        self.series.as_ref()
    }

    /// Takes the accumulated counter time-series, stopping sampling.
    pub fn take_counter_series(&mut self) -> Option<CounterSeries> {
        self.series.take()
    }

    /// The aggregate statistics as a named-counter registry — the same
    /// numbers as [`Soc::stats`] behind the generic snapshot/diff API.
    pub fn counter_registry(&self) -> CounterRegistry {
        let stats = self.stats();
        let mut reg = CounterRegistry::new();
        reg.set("soc.cycles", stats.cycles);
        reg.set("soc.dram_reads", stats.dram_word_reads);
        reg.set("soc.dram_writes", stats.dram_word_writes);
        reg.set("noc.flit_hops", stats.noc_flit_hops);
        reg.set("soc.frames", stats.total_frames);
        reg
    }

    /// NoC traffic statistics.
    pub fn noc_stats(&self) -> &NocStats {
        self.mesh.stats()
    }

    /// Per-router forwarded-flit counts (`rows x cols`) — the NoC
    /// congestion heatmap.
    pub fn noc_traffic_matrix(&self) -> Vec<Vec<u64>> {
        self.mesh.traffic_matrix()
    }

    /// Per-router, per-link occupancy and credit-stall snapshot for
    /// every NoC plane (the profiling heatmap).
    pub fn noc_heatmap(&self) -> NocHeatmap {
        self.mesh.link_heatmap()
    }

    /// Aggregated SoC statistics.
    pub fn stats(&self) -> SocStats {
        SocStats {
            cycles: self.cycle(),
            dram_word_reads: self
                .mem_tiles
                .iter()
                .map(|m| m.dram_stats().word_reads)
                .sum(),
            dram_word_writes: self
                .mem_tiles
                .iter()
                .map(|m| m.dram_stats().word_writes)
                .sum(),
            noc_flit_hops: self.mesh.stats().total_flit_hops(),
            total_frames: self.accel_tiles.iter().map(|a| a.stats().frames_done).sum(),
        }
    }

    /// Resets DRAM and per-accelerator counters (cycle count and NoC stats
    /// keep running; experiments snapshot-and-subtract those).
    pub fn reset_stats(&mut self) {
        for m in &mut self.mem_tiles {
            m.reset_dram_stats();
        }
        for a in &mut self.accel_tiles {
            a.reset_stats();
        }
    }

    /// Post-synthesis resource usage of the full SoC: all tiles, sockets
    /// and routers — the numerator of Table I's utilization percentages.
    pub fn resources(&self) -> Resources {
        let mut r = Resources::zero();
        r += Self::PROC_TILE * self.proc_tiles.len() as u64;
        r += Self::MEM_TILE * self.mem_tiles.len() as u64;
        r += Self::AUX_TILE * self.aux_tiles.len() as u64;
        let grid = self.mesh.config().cols * self.mesh.config().rows;
        r += Self::ROUTER * grid as u64;
        for a in &self.accel_tiles {
            r += Self::SOCKET;
            r += a.kernel().resources();
        }
        r
    }

    /// The primary processor tile coordinate.
    pub fn primary_proc(&self) -> Coord {
        self.primary_proc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ScaleKernel;
    use crate::regs::{REG_LOCATION, REG_STATUS, STATUS_DONE};

    fn basic_soc() -> Soc {
        SocBuilder::new(3, 2)
            .processor(Coord::new(0, 0))
            .memory(Coord::new(1, 0))
            .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("a0", 16, 2)))
            .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("a1", 16, 3)))
            .build()
            .expect("valid floorplan")
    }

    #[test]
    fn builder_validates_floorplan() {
        assert!(matches!(
            SocBuilder::new(2, 2).memory(Coord::new(0, 0)).build(),
            Err(SocError::MissingTile { kind: "processor" })
        ));
        assert!(matches!(
            SocBuilder::new(2, 2).processor(Coord::new(0, 0)).build(),
            Err(SocError::MissingTile { kind: "memory" })
        ));
        assert!(matches!(
            SocBuilder::new(2, 2)
                .processor(Coord::new(0, 0))
                .memory(Coord::new(0, 0))
                .build(),
            Err(SocError::TileConflict { .. })
        ));
        assert!(SocBuilder::new(2, 2)
            .processor(Coord::new(5, 0))
            .memory(Coord::new(1, 0))
            .build()
            .is_err());
    }

    #[test]
    fn location_reg_exposes_coordinates() {
        let soc = basic_soc();
        let loc = soc.read_reg(Coord::new(1, 1), REG_LOCATION).unwrap();
        assert_eq!(Coord::from_reg(loc), Coord::new(1, 1));
    }

    #[test]
    fn accel_lookup_by_name() {
        let soc = basic_soc();
        assert_eq!(soc.accel_by_name("a1"), Some(Coord::new(1, 1)));
        assert_eq!(soc.accel_by_name("nope"), None);
    }

    #[test]
    fn dma_roundtrip_single_accel() {
        let mut soc = basic_soc();
        let accel = Coord::new(0, 1);
        let input: Vec<u64> = (1..=16).collect();
        soc.dram_write_values(0, &input, 16).unwrap();
        soc.map_contiguous(accel, 0, 4096).unwrap();
        soc.configure_accel(accel, &AccelConfig::dma_to_dma(0, 100, 1))
            .unwrap();
        soc.start_accel(accel).unwrap();
        let outcome = soc.run_until_idle(100_000);
        assert!(outcome.is_idle());
        assert!(outcome.cycles() > 0 && outcome.cycles() < 100_000);
        assert_eq!(soc.take_irqs(), vec![accel]);
        let out = soc.dram_read_values(100, 16, 16).unwrap();
        let expected: Vec<u64> = input.iter().map(|v| v * 2).collect();
        assert_eq!(out, expected);
        assert_eq!(soc.read_reg(accel, REG_STATUS).unwrap(), STATUS_DONE);
    }

    #[test]
    fn dma_multi_frame_strides() {
        let mut soc = basic_soc();
        let accel = Coord::new(0, 1);
        // Two frames of 16 values (4 words) each.
        let f0: Vec<u64> = (0..16).collect();
        let f1: Vec<u64> = (100..116).collect();
        soc.dram_write_values(0, &f0, 16).unwrap();
        soc.dram_write_values(4, &f1, 16).unwrap();
        soc.map_contiguous(accel, 0, 4096).unwrap();
        soc.configure_accel(accel, &AccelConfig::dma_to_dma(0, 64, 2))
            .unwrap();
        soc.start_accel(accel).unwrap();
        assert!(soc.run_until_idle(100_000).is_idle());
        let out0 = soc.dram_read_values(64, 16, 16).unwrap();
        let out1 = soc.dram_read_values(68, 16, 16).unwrap();
        assert_eq!(out0, f0.iter().map(|v| v * 2).collect::<Vec<_>>());
        assert_eq!(out1, f1.iter().map(|v| v * 2).collect::<Vec<_>>());
        assert_eq!(soc.accel(accel).unwrap().stats().frames_done, 2);
    }

    #[test]
    fn p2p_pipeline_two_stages() {
        let mut soc = basic_soc();
        let producer = Coord::new(0, 1); // x2
        let consumer = Coord::new(1, 1); // x3
        let frames = 3u64;
        for f in 0..frames {
            let vals: Vec<u64> = (0..16).map(|i| i + 10 * f).collect();
            soc.dram_write_values(f * 4, &vals, 16).unwrap();
        }
        soc.map_contiguous(producer, 0, 4096).unwrap();
        soc.map_contiguous(consumer, 0, 4096).unwrap();
        soc.configure_accel(producer, &AccelConfig::dma_to_p2p(0, frames))
            .unwrap();
        soc.configure_accel(
            consumer,
            &AccelConfig::p2p_to_dma(vec![producer], 100, frames),
        )
        .unwrap();
        soc.start_accel(producer).unwrap();
        soc.start_accel(consumer).unwrap();
        assert!(soc.run_until_idle(1_000_000).is_idle());
        let mut irqs = soc.take_irqs();
        irqs.sort();
        assert_eq!(irqs, vec![producer, consumer]);
        for f in 0..frames {
            let out = soc.dram_read_values(100 + f * 4, 16, 16).unwrap();
            let expected: Vec<u64> = (0..16).map(|i| (i + 10 * f) * 6).collect();
            assert_eq!(out, expected, "frame {f}");
        }
        // The intermediate result never touched DRAM: producer loaded
        // 3 frames x 4 words, consumer stored 3 x 4 words — nothing else.
        let stats = soc.stats();
        assert_eq!(stats.dram_word_reads, frames * 4);
        assert_eq!(stats.dram_word_writes, frames * 4);
        // And the p2p service actually carried the traffic.
        assert_eq!(
            soc.accel(producer).unwrap().stats().p2p_words_sent,
            frames * 4
        );
    }

    #[test]
    fn p2p_reduces_dram_traffic_vs_dma() {
        // Same two-stage pipeline through memory: measure DRAM accesses.
        let run_dma = || {
            let mut soc = basic_soc();
            let a = Coord::new(0, 1);
            let b = Coord::new(1, 1);
            soc.dram_write_values(0, &(0..16).collect::<Vec<_>>(), 16)
                .unwrap();
            soc.map_contiguous(a, 0, 4096).unwrap();
            soc.map_contiguous(b, 0, 4096).unwrap();
            soc.configure_accel(a, &AccelConfig::dma_to_dma(0, 50, 1))
                .unwrap();
            soc.start_accel(a).unwrap();
            assert!(soc.run_until_idle(100_000).is_idle());
            soc.configure_accel(b, &AccelConfig::dma_to_dma(50, 100, 1))
                .unwrap();
            soc.start_accel(b).unwrap();
            assert!(soc.run_until_idle(100_000).is_idle());
            soc.stats().dram_accesses()
        };
        let run_p2p = || {
            let mut soc = basic_soc();
            let a = Coord::new(0, 1);
            let b = Coord::new(1, 1);
            soc.dram_write_values(0, &(0..16).collect::<Vec<_>>(), 16)
                .unwrap();
            soc.map_contiguous(a, 0, 4096).unwrap();
            soc.map_contiguous(b, 0, 4096).unwrap();
            soc.configure_accel(a, &AccelConfig::dma_to_p2p(0, 1))
                .unwrap();
            soc.configure_accel(b, &AccelConfig::p2p_to_dma(vec![a], 100, 1))
                .unwrap();
            soc.start_accel(a).unwrap();
            soc.start_accel(b).unwrap();
            assert!(soc.run_until_idle(100_000).is_idle());
            soc.stats().dram_accesses()
        };
        let dma = run_dma();
        let p2p = run_p2p();
        assert_eq!(dma, 16); // 4 + 4 + 4 + 4 words
        assert_eq!(p2p, 8); // 4 + 4 words
    }

    #[test]
    fn round_robin_p2p_sources() {
        // Two producers feed one consumer alternately.
        let mut soc = SocBuilder::new(3, 2)
            .processor(Coord::new(0, 0))
            .memory(Coord::new(1, 0))
            .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("p0", 4, 1)))
            .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("p1", 4, 1)))
            .accelerator(Coord::new(2, 1), Box::new(ScaleKernel::new("c", 4, 10)))
            .build()
            .unwrap();
        let p0 = Coord::new(0, 1);
        let p1 = Coord::new(1, 1);
        let c = Coord::new(2, 1);
        // p0's stream: frames 0, 2; p1's stream: frames 1, 3.
        soc.dram_write_values(0, &[1, 1, 1, 1], 16).unwrap(); // p0 frame 0
        soc.dram_write_values(1, &[3, 3, 3, 3], 16).unwrap(); // p0 frame 1
        soc.dram_write_values(10, &[2, 2, 2, 2], 16).unwrap(); // p1 frame 0
        soc.dram_write_values(11, &[4, 4, 4, 4], 16).unwrap(); // p1 frame 1
        for t in [p0, p1, c] {
            soc.map_contiguous(t, 0, 4096).unwrap();
        }
        soc.configure_accel(p0, &AccelConfig::dma_to_p2p(0, 2))
            .unwrap();
        let mut cfg_p1 = AccelConfig::dma_to_p2p(10, 2);
        cfg_p1.src_offset = 10;
        soc.configure_accel(p1, &cfg_p1).unwrap();
        soc.configure_accel(c, &AccelConfig::p2p_to_dma(vec![p0, p1], 100, 4))
            .unwrap();
        for t in [p0, p1, c] {
            soc.start_accel(t).unwrap();
        }
        assert!(soc.run_until_idle(1_000_000).is_idle());
        // Consumer output: frames in round-robin order 1,2,3,4 (x10).
        for (f, expect) in [(0u64, 10u64), (1, 20), (2, 30), (3, 40)] {
            let out = soc.dram_read_values(100 + f, 4, 16).unwrap();
            assert_eq!(out, vec![expect; 4], "frame {f}");
        }
    }

    #[test]
    fn resources_scale_with_tiles() {
        let small = SocBuilder::new(2, 2)
            .processor(Coord::new(0, 0))
            .memory(Coord::new(1, 0))
            .build()
            .unwrap();
        let big = basic_soc();
        let rs = small.resources();
        let rb = big.resources();
        assert!(rb.luts > rs.luts);
        assert!(rb.dsps >= rs.dsps);
    }

    #[test]
    fn hang_fault_recovers_after_reset_and_retry() {
        use crate::regs::STATUS_RUNNING;
        use esp4ml_fault::{FaultPlan, FaultSpec};
        let run = |engine: SocEngine| {
            let mut soc = basic_soc();
            soc.set_engine(engine);
            let accel = Coord::new(0, 1);
            let plan = FaultPlan::new(1).with(FaultSpec::transient_hang("a0", 0));
            assert_eq!(soc.install_fault_plan(&plan), 1);
            let input: Vec<u64> = (1..=16).collect();
            soc.dram_write_values(0, &input, 16).unwrap();
            soc.map_contiguous(accel, 0, 4096).unwrap();
            soc.configure_accel(accel, &AccelConfig::dma_to_dma(0, 100, 1))
                .unwrap();
            soc.start_accel(accel).unwrap();
            // The hang signature: the SoC goes quiescent with the status
            // register claiming a batch is running and no IRQ ever raised.
            assert!(soc.run_until_idle(10_000).is_idle());
            assert!(soc.take_irqs().is_empty());
            assert_eq!(soc.read_reg(accel, REG_STATUS).unwrap(), STATUS_RUNNING);
            assert_eq!(soc.faults_injected(), 1);
            // Watchdog recovery: reset the tile and re-issue the start;
            // the transient fault does not re-fire on invocation 1.
            soc.reset_accel(accel).unwrap();
            soc.start_accel(accel).unwrap();
            assert!(soc.run_until_idle(100_000).is_idle());
            assert_eq!(soc.take_irqs(), vec![accel]);
            let out = soc.dram_read_values(100, 16, 16).unwrap();
            assert_eq!(out, input.iter().map(|v| v * 2).collect::<Vec<_>>());
            soc.cycle()
        };
        // Fault firing and recovery are cycle-identical across engines.
        assert_eq!(run(SocEngine::Naive), run(SocEngine::EventDriven));
    }

    #[test]
    fn short_output_fault_starves_store_then_retry_succeeds() {
        use esp4ml_fault::{FaultPlan, FaultSpec};
        let run = |engine: SocEngine| {
            let mut soc = basic_soc();
            soc.set_engine(engine);
            let accel = Coord::new(0, 1);
            let plan = FaultPlan::new(1).with(FaultSpec::short_output("a0", 0, 2));
            assert_eq!(soc.install_fault_plan(&plan), 1);
            let input: Vec<u64> = (1..=16).collect();
            soc.dram_write_values(0, &input, 16).unwrap();
            soc.map_contiguous(accel, 0, 4096).unwrap();
            soc.configure_accel(accel, &AccelConfig::dma_to_dma(0, 100, 1))
                .unwrap();
            soc.start_accel(accel).unwrap();
            // The truncated store never collects enough acks: the wrapper
            // wedges in store_wait_ack and the run times out.
            let outcome = soc.run_until_idle(5_000);
            assert!(outcome.timed_out());
            let diag = outcome.diagnosis().expect("blocked tile named");
            assert_eq!(diag.blocked[0].state, "store_wait_ack");
            assert_eq!(soc.faults_injected(), 1);
            soc.reset_accel(accel).unwrap();
            soc.start_accel(accel).unwrap();
            assert!(soc.run_until_idle(100_000).is_idle());
            let out = soc.dram_read_values(100, 16, 16).unwrap();
            assert_eq!(out, input.iter().map(|v| v * 2).collect::<Vec<_>>());
            soc.cycle()
        };
        assert_eq!(run(SocEngine::Naive), run(SocEngine::EventDriven));
    }

    #[test]
    fn dma_drop_fault_starves_load_then_retry_succeeds() {
        use esp4ml_fault::{FaultKind, FaultPlan, FaultSpec};
        let run = |engine: SocEngine| {
            let mut soc = basic_soc();
            soc.set_engine(engine);
            let accel = Coord::new(0, 1);
            let plan = FaultPlan::new(1).with(FaultSpec::new(FaultKind::DmaDropWords {
                from_burst: 0,
                count: 1,
                drop_words: 2,
            }));
            assert_eq!(soc.install_fault_plan(&plan), 1);
            let input: Vec<u64> = (1..=16).collect();
            soc.dram_write_values(0, &input, 16).unwrap();
            soc.map_contiguous(accel, 0, 4096).unwrap();
            soc.configure_accel(accel, &AccelConfig::dma_to_dma(0, 100, 1))
                .unwrap();
            soc.start_accel(accel).unwrap();
            // The dropped response words leave the load forever short.
            let outcome = soc.run_until_idle(5_000);
            assert!(outcome.timed_out());
            let diag = outcome.diagnosis().expect("blocked tile named");
            assert_eq!(diag.blocked[0].state, "load_wait");
            assert_eq!(soc.faults_injected(), 1);
            // Retry: the fault was bounded to the first burst.
            soc.reset_accel(accel).unwrap();
            soc.start_accel(accel).unwrap();
            assert!(soc.run_until_idle(100_000).is_idle());
            let out = soc.dram_read_values(100, 16, 16).unwrap();
            assert_eq!(out, input.iter().map(|v| v * 2).collect::<Vec<_>>());
            soc.cycle()
        };
        assert_eq!(run(SocEngine::Naive), run(SocEngine::EventDriven));
    }

    #[test]
    fn noc_delay_fault_is_engine_identical_end_to_end() {
        use esp4ml_fault::{FaultKind, FaultPlan, FaultSpec};
        use esp4ml_noc::Plane;
        let run = |engine: SocEngine| {
            let mut soc = basic_soc();
            soc.set_engine(engine);
            let accel = Coord::new(0, 1);
            let plan = FaultPlan::new(1).with(FaultSpec::new(FaultKind::NocDelay {
                plane: Plane::DmaRsp.index(),
                from_packet: 0,
                count: 1,
                extra_cycles: 300,
            }));
            assert_eq!(soc.install_fault_plan(&plan), 1);
            let input: Vec<u64> = (1..=16).collect();
            soc.dram_write_values(0, &input, 16).unwrap();
            soc.map_contiguous(accel, 0, 4096).unwrap();
            soc.configure_accel(accel, &AccelConfig::dma_to_dma(0, 100, 1))
                .unwrap();
            soc.start_accel(accel).unwrap();
            assert!(soc.run_until_idle(100_000).is_idle());
            assert_eq!(soc.faults_injected(), 1);
            let out = soc.dram_read_values(100, 16, 16).unwrap();
            assert_eq!(out, input.iter().map(|v| v * 2).collect::<Vec<_>>());
            soc.cycle()
        };
        let naive = run(SocEngine::Naive);
        let event = run(SocEngine::EventDriven);
        assert_eq!(naive, event);
        // And the delay is actually visible: a fault-free run is faster.
        let baseline = {
            let mut soc = basic_soc();
            let accel = Coord::new(0, 1);
            soc.dram_write_values(0, &(1..=16).collect::<Vec<_>>(), 16)
                .unwrap();
            soc.map_contiguous(accel, 0, 4096).unwrap();
            soc.configure_accel(accel, &AccelConfig::dma_to_dma(0, 100, 1))
                .unwrap();
            soc.start_accel(accel).unwrap();
            assert!(soc.run_until_idle(100_000).is_idle());
            soc.cycle()
        };
        assert!(
            naive >= baseline + 300,
            "delay not visible: {naive} vs {baseline}"
        );
    }

    #[test]
    fn stats_reset() {
        let mut soc = basic_soc();
        let accel = Coord::new(0, 1);
        soc.dram_write_values(0, &(0..16).collect::<Vec<_>>(), 16)
            .unwrap();
        soc.map_contiguous(accel, 0, 4096).unwrap();
        soc.configure_accel(accel, &AccelConfig::dma_to_dma(0, 50, 1))
            .unwrap();
        soc.start_accel(accel).unwrap();
        assert!(soc.run_until_idle(100_000).is_idle());
        assert!(soc.stats().dram_accesses() > 0);
        soc.reset_stats();
        assert_eq!(soc.stats().dram_accesses(), 0);
        assert_eq!(soc.stats().total_frames, 0);
    }
}

#[cfg(test)]
mod multi_mem_tests {
    use super::*;
    use crate::kernel::ScaleKernel;
    use esp4ml_mem::DramConfig;

    fn dual_mem_soc() -> Soc {
        let small = DramConfig {
            size_words: 1 << 20,
            ..DramConfig::default()
        };
        SocBuilder::new(3, 2)
            .processor(Coord::new(0, 0))
            .memory_with(Coord::new(1, 0), small)
            .memory_with(Coord::new(2, 0), small)
            .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("a", 4096, 2)))
            .build()
            .expect("valid floorplan")
    }

    #[test]
    fn interleaved_poke_peek_roundtrip() {
        let mut soc = dual_mem_soc();
        // Addresses spanning several interleave blocks.
        for addr in [0u64, 511, 512, 513, 1024, 4096, 100_000] {
            soc.dram_poke(addr, addr * 3 + 1).unwrap();
        }
        for addr in [0u64, 511, 512, 513, 1024, 4096, 100_000] {
            assert_eq!(soc.dram_peek(addr).unwrap(), addr * 3 + 1, "addr {addr}");
        }
        assert_eq!(soc.mem_map().tile_count(), 2);
    }

    #[test]
    fn dma_spanning_both_memory_tiles_roundtrips() {
        let mut soc = dual_mem_soc();
        let accel = Coord::new(0, 1);
        // 4096 values = 1024 words = two interleave blocks, one per tile.
        let input: Vec<u64> = (0..4096).map(|i| i % 1000).collect();
        soc.dram_write_values(0, &input, 16).unwrap();
        soc.map_contiguous(accel, 0, 1 << 16).unwrap();
        soc.configure_accel(accel, &AccelConfig::dma_to_dma(0, 8192, 1))
            .unwrap();
        soc.start_accel(accel).unwrap();
        assert!(soc.run_until_idle(1_000_000).is_idle());
        assert_eq!(soc.take_irqs(), vec![accel]);
        let out = soc.dram_read_values(8192, 4096, 16).unwrap();
        let expected: Vec<u64> = input.iter().map(|v| (v * 2) & 0xffff).collect();
        assert_eq!(out, expected);
        // Both memory tiles must have serviced traffic.
        let stats = soc.stats();
        assert_eq!(stats.dram_word_reads, 1024);
        assert_eq!(stats.dram_word_writes, 1024);
    }

    #[test]
    fn mismatched_memory_capacities_rejected() {
        let a = DramConfig {
            size_words: 1 << 20,
            ..DramConfig::default()
        };
        let b = DramConfig {
            size_words: 1 << 21,
            ..DramConfig::default()
        };
        let err = SocBuilder::new(3, 2)
            .processor(Coord::new(0, 0))
            .memory_with(Coord::new(1, 0), a)
            .memory_with(Coord::new(2, 0), b)
            .build()
            .unwrap_err();
        assert!(matches!(err, SocError::BadConfig(_)));
    }
}

#[cfg(test)]
mod dbuf_tests {
    use super::*;
    use crate::kernel::ScaleKernel;
    use crate::regs::STATUS_DONE;

    fn soc_with(values: u64, cycles_per_value: u64) -> Soc {
        SocBuilder::new(3, 2)
            .processor(Coord::new(0, 0))
            .memory(Coord::new(1, 0))
            .accelerator(
                Coord::new(0, 1),
                Box::new(ScaleKernel::new("a", values, 2).with_cycles_per_value(cycles_per_value)),
            )
            .accelerator(
                Coord::new(1, 1),
                Box::new(ScaleKernel::new("b", values, 3).with_cycles_per_value(cycles_per_value)),
            )
            .build()
            .unwrap()
    }

    fn run_batch(soc: &mut Soc, dbuf: bool, frames: u64) -> (Vec<u64>, u64) {
        let accel = Coord::new(0, 1);
        let values = 256u64;
        for f in 0..frames {
            let vals: Vec<u64> = (0..values).map(|i| (i + f) % 500).collect();
            soc.dram_write_values(f * 64, &vals, 16).unwrap();
        }
        soc.map_contiguous(accel, 0, 1 << 16).unwrap();
        let mut cfg = AccelConfig::dma_to_dma(0, 4096, frames);
        if dbuf {
            cfg = cfg.with_double_buffer();
        }
        soc.configure_accel(accel, &cfg).unwrap();
        let start = soc.cycle();
        soc.start_accel(accel).unwrap();
        assert!(soc.run_until_idle(10_000_000).is_idle());
        assert_eq!(
            soc.read_reg(accel, crate::regs::REG_STATUS).unwrap(),
            STATUS_DONE
        );
        let mut out = Vec::new();
        for f in 0..frames {
            out.extend(
                soc.dram_read_values(4096 + f * 64, values as usize, 16)
                    .unwrap(),
            );
        }
        (out, soc.cycle() - start)
    }

    #[test]
    fn double_buffer_same_results_fewer_cycles() {
        let frames = 6;
        let (out_sb, cycles_sb) = run_batch(&mut soc_with(256, 4), false, frames);
        let (out_db, cycles_db) = run_batch(&mut soc_with(256, 4), true, frames);
        assert_eq!(out_sb, out_db, "double buffering must not change results");
        // The load of frame k+1 (≈ 64 words + DRAM latency) hides under the
        // compute of frame k (1024 cycles), so the batch gets faster.
        assert!(
            (cycles_db as f64) < cycles_sb as f64 * 0.95,
            "dbuf {cycles_db} !< single {cycles_sb}"
        );
    }

    #[test]
    fn double_buffer_p2p_pipeline_matches_plain() {
        // Two-stage p2p pipeline with the consumer double-buffered.
        let run = |dbuf: bool| {
            let mut soc = soc_with(256, 2);
            let (a, b) = (Coord::new(0, 1), Coord::new(1, 1));
            let frames = 4u64;
            for f in 0..frames {
                soc.dram_write_values(f * 64, &vec![f + 1; 256], 16)
                    .unwrap();
            }
            soc.map_contiguous(a, 0, 1 << 16).unwrap();
            soc.map_contiguous(b, 0, 1 << 16).unwrap();
            let mut cfg_a = AccelConfig::dma_to_p2p(0, frames);
            let mut cfg_b = AccelConfig::p2p_to_dma(vec![a], 4096, frames);
            if dbuf {
                cfg_a = cfg_a.with_double_buffer();
                cfg_b = cfg_b.with_double_buffer();
            }
            soc.configure_accel(a, &cfg_a).unwrap();
            soc.configure_accel(b, &cfg_b).unwrap();
            soc.start_accel(a).unwrap();
            soc.start_accel(b).unwrap();
            assert!(soc.run_until_idle(10_000_000).is_idle());
            (0..frames)
                .map(|f| soc.dram_read_values(4096 + f * 64, 256, 16).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn single_frame_batch_ignores_double_buffer() {
        // n_frames == 1: the flag is accepted but ping-pong is pointless;
        // results must match the plain single-buffer path.
        let (out, _) = run_batch(&mut soc_with(256, 1), true, 1);
        let expected: Vec<u64> = (0..256u64).map(|i| ((i % 500) * 2) & 0xffff).collect();
        assert_eq!(out, expected);
    }
}

#[cfg(test)]
mod dvfs_tests {
    use super::*;
    use crate::kernel::ScaleKernel;

    fn run(divider: u64) -> (Vec<u64>, u64) {
        let mut soc = SocBuilder::new(2, 2)
            .processor(Coord::new(0, 0))
            .memory(Coord::new(1, 0))
            .accelerator(
                Coord::new(0, 1),
                Box::new(ScaleKernel::new("a", 64, 2).with_cycles_per_value(10)),
            )
            .build()
            .unwrap();
        let accel = Coord::new(0, 1);
        soc.dram_write_values(0, &(0..64).collect::<Vec<_>>(), 16)
            .unwrap();
        soc.map_contiguous(accel, 0, 4096).unwrap();
        soc.configure_accel(
            accel,
            &AccelConfig::dma_to_dma(0, 512, 1).with_dvfs_divider(divider),
        )
        .unwrap();
        let start = soc.cycle();
        soc.start_accel(accel).unwrap();
        assert!(soc.run_until_idle(1_000_000).is_idle());
        let out = soc.dram_read_values(512, 64, 16).unwrap();
        (out, soc.cycle() - start)
    }

    #[test]
    fn dvfs_slows_compute_without_changing_results() {
        let (out_full, cycles_full) = run(1);
        let (out_half, cycles_half) = run(2);
        assert_eq!(out_full, out_half);
        // Compute is 640 cycles at full speed; at /2 it doubles while DMA
        // and control stay at the NoC clock.
        assert!(
            cycles_half > cycles_full + 500,
            "half {cycles_half} vs full {cycles_full}"
        );
        assert!(cycles_half < cycles_full * 2);
    }

    #[test]
    fn divider_zero_means_full_speed() {
        let (_, at_zero) = run(0);
        let (_, at_one) = run(1);
        assert_eq!(at_zero, at_one);
    }
}

#[cfg(test)]
mod engine_equivalence_tests {
    use super::*;
    use crate::kernel::ScaleKernel;

    fn basic_soc() -> Soc {
        SocBuilder::new(3, 2)
            .processor(Coord::new(0, 0))
            .memory(Coord::new(1, 0))
            .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("a0", 16, 2)))
            .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("a1", 16, 3)))
            .build()
            .expect("valid floorplan")
    }

    /// A two-accelerator SoC with a moderately interesting workload:
    /// multi-frame DMA on a DVFS-throttled accelerator, so boring spans
    /// (stalls, slow compute) dominate and fast-forward actually engages.
    fn run_workload(engine: SocEngine, sample_every: Option<u64>) -> Soc {
        let mut soc = SocBuilder::new(3, 2)
            .processor(Coord::new(0, 0))
            .memory(Coord::new(1, 0))
            .accelerator(
                Coord::new(0, 1),
                Box::new(ScaleKernel::new("a0", 16, 2).with_cycles_per_value(10)),
            )
            .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("a1", 16, 3)))
            .engine(engine)
            .build()
            .expect("valid floorplan");
        if let Some(every) = sample_every {
            soc.enable_counter_sampling(every);
        }
        let accel = Coord::new(0, 1);
        let f0: Vec<u64> = (0..16).collect();
        let f1: Vec<u64> = (100..116).collect();
        soc.dram_write_values(0, &f0, 16).unwrap();
        soc.dram_write_values(4, &f1, 16).unwrap();
        soc.map_contiguous(accel, 0, 4096).unwrap();
        soc.configure_accel(
            accel,
            &AccelConfig::dma_to_dma(0, 64, 2).with_dvfs_divider(2),
        )
        .unwrap();
        soc.start_accel(accel).unwrap();
        assert!(soc.run_until_idle(1_000_000).is_idle());
        soc
    }

    #[test]
    fn engines_agree_on_cycles_stats_and_data() {
        let mut naive = run_workload(SocEngine::Naive, None);
        let mut event = run_workload(SocEngine::EventDriven, None);
        assert_eq!(naive.cycle(), event.cycle(), "total cycles diverged");
        let accel = Coord::new(0, 1);
        assert_eq!(
            naive.accel(accel).unwrap().stats(),
            event.accel(accel).unwrap().stats(),
            "per-accelerator cycle accounting diverged"
        );
        assert_eq!(
            naive.dram_read_values(64, 32, 16).unwrap(),
            event.dram_read_values(64, 32, 16).unwrap()
        );
        assert_eq!(naive.take_irqs(), event.take_irqs());
        // The full counter registries must agree, not just headline stats.
        assert_eq!(
            naive.counter_registry().snapshot(),
            event.counter_registry().snapshot()
        );
        // Link-level heatmap counters only move during real mesh ticks,
        // so fast-forward must leave them cycle-exact too.
        assert_eq!(
            naive.noc_heatmap(),
            event.noc_heatmap(),
            "per-link NoC heatmap diverged"
        );
    }

    #[test]
    fn fast_forward_never_skips_a_sampling_point() {
        // 7 is coprime to every latency in the model, so sampling points
        // land mid-span; a fast-forward that jumped over one would drop
        // a row (or record it with stale counters).
        let mut naive = run_workload(SocEngine::Naive, Some(7));
        let mut event = run_workload(SocEngine::EventDriven, Some(7));
        let naive_series = naive.take_counter_series().expect("sampling on");
        let event_series = event.take_counter_series().expect("sampling on");
        assert_eq!(naive_series.rows().len(), event_series.rows().len());
        for (n, e) in naive_series.rows().iter().zip(event_series.rows()) {
            assert_eq!(n.cycle, e.cycle);
            assert_eq!(
                n.snapshot, e.snapshot,
                "counters diverged at cycle {}",
                n.cycle
            );
        }
    }

    #[test]
    fn engines_agree_on_timeout_spin() {
        // A p2p consumer with no producer never makes progress: both
        // engines must time out at the same cycle with the same stats
        // (the event engine skips the spin, the naive engine burns it).
        let run = |engine: SocEngine| {
            let mut soc = SocBuilder::new(3, 2)
                .processor(Coord::new(0, 0))
                .memory(Coord::new(1, 0))
                .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("a0", 16, 2)))
                .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("a1", 16, 3)))
                .engine(engine)
                .build()
                .unwrap();
            let consumer = Coord::new(1, 1);
            soc.map_contiguous(consumer, 0, 4096).unwrap();
            soc.configure_accel(
                consumer,
                &AccelConfig::p2p_to_dma(vec![Coord::new(0, 1)], 64, 1),
            )
            .unwrap();
            soc.start_accel(consumer).unwrap();
            let outcome = soc.run_until_idle(10_000);
            (outcome, soc.cycle(), *soc.accel(consumer).unwrap().stats())
        };
        let (naive_outcome, naive_cycle, naive_stats) = run(SocEngine::Naive);
        let (event_outcome, event_cycle, event_stats) = run(SocEngine::EventDriven);
        assert!(naive_outcome.timed_out());
        assert!(event_outcome.timed_out());
        assert_eq!(naive_outcome.cycles(), event_outcome.cycles());
        assert_eq!(naive_cycle, event_cycle);
        assert_eq!(naive_stats, event_stats);
        // Both engines attach the same deadlock diagnosis: the consumer
        // is parked in LoadWait on its silent producer.
        assert_eq!(naive_outcome, event_outcome);
        let diag = naive_outcome.diagnosis().expect("diagnosis attached");
        assert_eq!(diag.blocked.len(), 1);
        assert_eq!((diag.blocked[0].x, diag.blocked[0].y), (1, 1));
        assert_eq!(diag.blocked[0].waits_on, Some((0, 1)));
        assert!(diag.cycle.is_none());
        assert!(diag
            .to_string()
            .contains("waiting for p2p data from tile(0,1)"));
    }

    #[test]
    fn sanitized_run_is_clean() {
        // A healthy DMA round trip must produce a clean verdict: no
        // credit, flit, wormhole, plane or DMA-accounting findings.
        let mut soc = basic_soc();
        soc.enable_sanitizer(SanitizerConfig::all());
        let accel = Coord::new(0, 1);
        let input: Vec<u64> = (1..=16).collect();
        soc.dram_write_values(0, &input, 16).unwrap();
        soc.map_contiguous(accel, 0, 4096).unwrap();
        soc.configure_accel(accel, &AccelConfig::dma_to_dma(0, 100, 1))
            .unwrap();
        soc.start_accel(accel).unwrap();
        assert!(soc.run_until_idle(100_000).is_idle());
        let report = soc.sanitizer_report().expect("sanitizer armed");
        assert!(report.is_clean(), "unexpected findings:\n{report}");
    }

    #[test]
    fn phantom_words_breach_dma_accounting() {
        let mut soc = basic_soc();
        soc.enable_sanitizer(SanitizerConfig::all());
        let accel = Coord::new(0, 1);
        let input: Vec<u64> = (1..=16).collect();
        soc.dram_write_values(0, &input, 16).unwrap();
        soc.map_contiguous(accel, 0, 4096).unwrap();
        soc.configure_accel(accel, &AccelConfig::dma_to_dma(0, 100, 1))
            .unwrap();
        soc.start_accel(accel).unwrap();
        soc.fault_phantom_words(accel, 3);
        assert!(soc.run_until_idle(100_000).is_idle());
        let report = soc.sanitizer_report().expect("sanitizer armed");
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.diagnostics[0].code, "E0404");
    }

    #[test]
    fn leaked_credit_is_reported_through_soc() {
        let mut soc = basic_soc();
        soc.enable_sanitizer(SanitizerConfig::all());
        soc.fault_leak_credit(Coord::new(1, 0), esp4ml_noc::Plane::DmaReq);
        soc.run_cycles(5);
        let report = soc.sanitizer_report().expect("sanitizer armed");
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.diagnostics[0].code, "E0401");
    }

    #[test]
    fn mutual_p2p_wait_is_diagnosed_as_cycle() {
        // Two consumers each configured to p2p-load from the other: both
        // park in LoadWait and the wait-for graph closes a cycle.
        let mut soc = basic_soc();
        let (a, b) = (Coord::new(0, 1), Coord::new(1, 1));
        soc.map_contiguous(a, 0, 4096).unwrap();
        soc.map_contiguous(b, 0, 4096).unwrap();
        soc.configure_accel(a, &AccelConfig::p2p_to_dma(vec![b], 100, 1))
            .unwrap();
        soc.configure_accel(b, &AccelConfig::p2p_to_dma(vec![a], 200, 1))
            .unwrap();
        soc.start_accel(a).unwrap();
        soc.start_accel(b).unwrap();
        let outcome = soc.run_until_idle(10_000);
        assert!(outcome.timed_out());
        let diag = outcome.diagnosis().expect("diagnosis attached");
        assert_eq!(diag.cycle, Some(vec![(0, 1), (1, 1)]));
        assert_eq!(diag.blocked.len(), 2);
        let typed = diag.diagnostic();
        assert_eq!(typed.code, "E0501");
        assert_eq!(typed.location, "tile(0,1) -> tile(1,1)");
    }

    #[test]
    fn engines_agree_on_sanitizer_verdict() {
        // The event-driven engine audits only at tick and fast-forward
        // boundaries, yet its (deduplicated) verdict must be
        // byte-identical to the naive engine's per-cycle audit.
        let run = |engine: SocEngine| {
            let mut soc = SocBuilder::new(3, 2)
                .processor(Coord::new(0, 0))
                .memory(Coord::new(1, 0))
                .accelerator(Coord::new(0, 1), Box::new(ScaleKernel::new("a0", 16, 2)))
                .accelerator(Coord::new(1, 1), Box::new(ScaleKernel::new("a1", 16, 3)))
                .engine(engine)
                .build()
                .unwrap();
            soc.enable_sanitizer(SanitizerConfig::all());
            let accel = Coord::new(1, 1);
            let input: Vec<u64> = (1..=16).collect();
            soc.dram_write_values(0, &input, 16).unwrap();
            soc.map_contiguous(accel, 0, 4096).unwrap();
            soc.configure_accel(accel, &AccelConfig::dma_to_dma(0, 100, 1))
                .unwrap();
            soc.start_accel(accel).unwrap();
            soc.fault_phantom_words(accel, 7);
            assert!(soc.run_until_idle(100_000).is_idle());
            serde_json::to_string(&soc.sanitizer_report().expect("sanitizer armed")).unwrap()
        };
        let naive = run(SocEngine::Naive);
        let event = run(SocEngine::EventDriven);
        assert_eq!(naive, event);
        assert!(naive.contains("E0404"));
    }
}
