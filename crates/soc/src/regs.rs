//! Memory-mapped configuration registers of the accelerator socket.
//!
//! Register offsets follow the ESP socket layout, extended by the two
//! registers ESP4ML defines for every accelerator: the read-only
//! `LOCATION_REG` exposing the tile's x-y coordinates to the operating
//! system, and the `P2P_REG` holding the p2p configuration (store/load
//! enables, number of source tiles, and their coordinates).

use esp4ml_noc::Coord;
use serde::{Deserialize, Serialize};

/// `CMD_REG`: writing [`CMD_START`] launches the configured batch.
pub const REG_CMD: u64 = 0;
/// `STATUS_REG`: [`STATUS_IDLE`], [`STATUS_RUNNING`] or [`STATUS_DONE`].
pub const REG_STATUS: u64 = 1;
/// `CONF_SIZE_REG`: input values per frame (the paper's `conf_size`).
pub const REG_CONF_SIZE: u64 = 2;
/// `SRC_OFFSET_REG`: input base offset in the accelerator VA space.
pub const REG_SRC_OFFSET: u64 = 3;
/// `DST_OFFSET_REG`: output base offset in the accelerator VA space.
pub const REG_DST_OFFSET: u64 = 4;
/// `LOCATION_REG` (read-only): the tile's x-y coordinates.
pub const REG_LOCATION: u64 = 5;
/// `P2P_REG`: p2p configuration, see [`P2pConfig`].
pub const REG_P2P: u64 = 6;
/// `N_FRAMES_REG`: invocations to run back-to-back in one batch.
pub const REG_N_FRAMES: u64 = 7;
/// `CONF_OUT_SIZE_REG`: output values per frame.
pub const REG_CONF_OUT_SIZE: u64 = 8;
/// `FLAGS_REG`: wrapper feature flags (see [`FLAG_DOUBLE_BUFFER`]).
pub const REG_FLAGS: u64 = 9;
/// `DVFS_REG`: clock divider of the accelerator datapath (0 or 1 = full
/// speed, `k` = the kernel computes at `f_noc / k`). The socket and its
/// NoC interface always run at the NoC clock, as in ESP's fine-grained
/// DVFS infrastructure.
pub const REG_DVFS: u64 = 10;
/// `FRAME_BASE_REG`: global frame id of the batch's first frame. The
/// socket stamps frame `i` of the batch as `base + i * stride` on its
/// trace events and outgoing NoC packets, giving every frame a
/// run-unique id for causal span assembly.
pub const REG_FRAME_BASE: u64 = 11;
/// `FRAME_STRIDE_REG`: global frame id stride between consecutive
/// batch frames (0 is treated as 1). A width-`k` parallel stage runs
/// instance `j` with `base = j, stride = k`.
pub const REG_FRAME_STRIDE: u64 = 12;

/// Number of registers in the socket register file.
pub const REG_COUNT: usize = 13;

/// `CMD_REG` value that starts the accelerator.
pub const CMD_START: u64 = 1;
/// `STATUS_REG`: accelerator is idle and unconfigured/acknowledged.
pub const STATUS_IDLE: u64 = 0;
/// `STATUS_REG`: batch in progress.
pub const STATUS_RUNNING: u64 = 1;
/// `STATUS_REG`: batch finished (cleared on the next start).
pub const STATUS_DONE: u64 = 2;

/// `FLAGS_REG` bit 0: double-buffer the input PLM so the LOAD of frame
/// `k + 1` overlaps the COMPUTE/STORE of frame `k` (the HLS dataflow
/// ping-pong buffer option).
pub const FLAG_DOUBLE_BUFFER: u64 = 1;

/// Decoded contents of the `P2P_REG`.
///
/// Hardware encoding (64-bit):
/// * bit 0 — p2p store enabled (this accelerator's STORE waits for a
///   consumer's request instead of writing to memory);
/// * bit 1 — p2p load enabled (this accelerator's LOAD requests data from
///   producer tiles instead of memory);
/// * bits 8..=10 — number of source tiles minus one (0..=3);
/// * bits 16+12k..=27+12k — source tile `k` as `(x << 6) | y`, 6 bits each.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct P2pConfig {
    /// STORE phase serves consumer requests instead of writing memory.
    pub store_enabled: bool,
    /// LOAD phase requests data from `sources` instead of memory.
    pub load_enabled: bool,
    /// Producer tiles to load from, round-robin per frame (1 to 4 when
    /// `load_enabled`).
    pub sources: Vec<Coord>,
}

impl P2pConfig {
    /// Maximum number of source tiles the register can describe.
    pub const MAX_SOURCES: usize = 4;

    /// Configuration with p2p fully disabled (plain DMA).
    pub fn disabled() -> Self {
        P2pConfig::default()
    }

    /// Producer-side configuration: serve p2p store requests.
    pub fn store() -> Self {
        P2pConfig {
            store_enabled: true,
            load_enabled: false,
            sources: Vec::new(),
        }
    }

    /// Consumer-side configuration: load from the given producers.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or longer than
    /// [`P2pConfig::MAX_SOURCES`].
    pub fn load_from(sources: Vec<Coord>) -> Self {
        assert!(
            !sources.is_empty() && sources.len() <= Self::MAX_SOURCES,
            "p2p load needs 1 to 4 source tiles"
        );
        P2pConfig {
            store_enabled: false,
            load_enabled: true,
            sources,
        }
    }

    /// Both directions (a middle stage of a pipeline).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`P2pConfig::load_from`].
    pub fn load_and_store(sources: Vec<Coord>) -> Self {
        let mut cfg = P2pConfig::load_from(sources);
        cfg.store_enabled = true;
        cfg
    }

    /// Encodes into the `P2P_REG` format.
    pub fn to_reg(&self) -> u64 {
        let mut reg = 0u64;
        if self.store_enabled {
            reg |= 1;
        }
        if self.load_enabled {
            reg |= 2;
        }
        if !self.sources.is_empty() {
            reg |= ((self.sources.len() as u64 - 1) & 0x7) << 8;
        }
        for (k, c) in self.sources.iter().take(Self::MAX_SOURCES).enumerate() {
            let field = (((c.x as u64) & 0x3f) << 6) | ((c.y as u64) & 0x3f);
            reg |= field << (16 + 12 * k);
        }
        reg
    }

    /// Decodes from the `P2P_REG` format.
    pub fn from_reg(reg: u64) -> Self {
        let store_enabled = reg & 1 != 0;
        let load_enabled = reg & 2 != 0;
        let mut sources = Vec::new();
        if load_enabled {
            let n = ((reg >> 8) & 0x7) as usize + 1;
            for k in 0..n.min(Self::MAX_SOURCES) {
                let field = (reg >> (16 + 12 * k)) & 0xfff;
                sources.push(Coord::new(
                    ((field >> 6) & 0x3f) as u8,
                    (field & 0x3f) as u8,
                ));
            }
        }
        P2pConfig {
            store_enabled,
            load_enabled,
            sources,
        }
    }
}

/// The socket register file of one accelerator tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterFile {
    regs: [u64; REG_COUNT],
}

impl RegisterFile {
    /// Creates a register file with `LOCATION_REG` pre-set to `location`.
    pub fn new(location: Coord) -> Self {
        let mut regs = [0u64; REG_COUNT];
        regs[REG_LOCATION as usize] = location.to_reg();
        RegisterFile { regs }
    }

    /// Reads a register (unknown offsets read as zero, like the bus).
    pub fn read(&self, offset: u64) -> u64 {
        self.regs.get(offset as usize).copied().unwrap_or(0)
    }

    /// Writes a register. Writes to `LOCATION_REG`, `STATUS_REG` and
    /// unknown offsets are ignored (read-only / reserved).
    pub fn write(&mut self, offset: u64, value: u64) {
        if offset == REG_LOCATION || offset == REG_STATUS {
            return;
        }
        if let Some(slot) = self.regs.get_mut(offset as usize) {
            *slot = value;
        }
    }

    /// Socket-internal status update (not reachable from the bus).
    pub(crate) fn set_status(&mut self, status: u64) {
        self.regs[REG_STATUS as usize] = status;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_roundtrip_all_source_counts() {
        for n in 1..=4usize {
            let sources: Vec<Coord> = (0..n)
                .map(|k| Coord::new(k as u8 + 1, 2 * k as u8))
                .collect();
            let cfg = P2pConfig::load_and_store(sources);
            assert_eq!(P2pConfig::from_reg(cfg.to_reg()), cfg);
        }
    }

    #[test]
    fn p2p_disabled_roundtrip() {
        let cfg = P2pConfig::disabled();
        assert_eq!(cfg.to_reg(), 0);
        assert_eq!(P2pConfig::from_reg(0), cfg);
    }

    #[test]
    fn p2p_store_only() {
        let cfg = P2pConfig::store();
        let decoded = P2pConfig::from_reg(cfg.to_reg());
        assert!(decoded.store_enabled);
        assert!(!decoded.load_enabled);
        assert!(decoded.sources.is_empty());
    }

    #[test]
    #[should_panic(expected = "1 to 4")]
    fn p2p_too_many_sources_panics() {
        P2pConfig::load_from(vec![Coord::default(); 5]);
    }

    #[test]
    fn location_reg_is_read_only() {
        let mut rf = RegisterFile::new(Coord::new(3, 4));
        let loc = rf.read(REG_LOCATION);
        rf.write(REG_LOCATION, 0xffff);
        assert_eq!(rf.read(REG_LOCATION), loc);
        assert_eq!(Coord::from_reg(loc), Coord::new(3, 4));
    }

    #[test]
    fn status_not_writable_from_bus() {
        let mut rf = RegisterFile::new(Coord::default());
        rf.write(REG_STATUS, STATUS_DONE);
        assert_eq!(rf.read(REG_STATUS), STATUS_IDLE);
        rf.set_status(STATUS_RUNNING);
        assert_eq!(rf.read(REG_STATUS), STATUS_RUNNING);
    }

    #[test]
    fn unknown_offsets_are_inert() {
        let mut rf = RegisterFile::new(Coord::default());
        rf.write(100, 5);
        assert_eq!(rf.read(100), 0);
    }
}
