//! The memory tile: DMA service over off-chip DRAM.

use crate::sanitize::tile_location;
use esp4ml_check::{codes, Diagnostic};
use esp4ml_fault::{CycleWindow, FaultKind, FaultSpec};
use esp4ml_mem::{CacheConfig, CacheStats, CachedDram, DramConfig, DramStats};
use esp4ml_noc::{Coord, Mesh, MsgKind, Packet, Plane, Progress, Schedulable};
use esp4ml_trace::{DmaKind, TileCoord, TraceEvent, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// Maximum payload words per DMA data packet on the NoC. Long bursts are
/// split into multiple packets; wormhole routing keeps each packet intact.
pub(crate) const MAX_DMA_PACKET_WORDS: usize = 128;

/// A pending memory operation being serviced: the storage access already
/// happened (and produced `responses`); they are released when the
/// modelled latency elapses.
#[derive(Debug)]
struct Pending {
    /// Remaining busy cycles before the responses are released.
    busy: u64,
    responses: Vec<Packet>,
}

/// An armed DMA word-drop fault (see [`FaultKind::DmaDropWords`]).
#[derive(Debug, Clone)]
struct DropFault {
    from_burst: u64,
    count: u64,
    drop_words: u64,
    window: CycleWindow,
}

/// Tile-side state of installed memory faults. Allocated only when a
/// fault plan targets the memory tiles — fault-free runs never touch it.
#[derive(Debug, Default)]
struct MemFaults {
    drops: Vec<DropFault>,
    /// Load bursts serviced since installation (the fault trigger index).
    load_bursts: u64,
    /// Total fault firings so far.
    fired: u64,
}

/// Serializable image of one armed DMA word-drop fault (see
/// [`FaultKind::DmaDropWords`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropFaultState {
    /// First serviced load burst (since installation) the fault truncates.
    pub from_burst: u64,
    /// How many consecutive bursts are truncated.
    pub count: u64,
    /// Words dropped from the tail of each affected burst.
    pub drop_words: u64,
    /// Cycle window gating the fault.
    pub window: CycleWindow,
}

/// Serializable image of a memory tile's installed faults, including the
/// burst trigger counter so a restored run truncates exactly the same
/// bursts as the original.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemFaultsState {
    /// Armed word-drop faults.
    pub drops: Vec<DropFaultState>,
    /// Load bursts serviced since installation.
    pub load_bursts: u64,
    /// Total fault firings so far.
    pub fired: u64,
}

/// Serializable image of the in-flight memory operation: the remaining
/// busy cycles and the responses held until they elapse.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingState {
    /// Remaining busy cycles before the responses are released.
    pub busy: u64,
    /// Responses released when the latency elapses.
    pub responses: Vec<Packet>,
}

/// Complete serializable state of a [`MemTile`]: DRAM contents and
/// counters (plus the LLC partition when present), the request queue, the
/// in-flight operation, undrained responses, armed faults with trigger
/// counts, and the sanitizer ledger. The coordinate is structural and the
/// tracer is a live host-side handle; neither is captured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemTileState {
    /// DRAM (and optional LLC) image.
    pub dram: esp4ml_mem::CachedDramState,
    /// Queued DMA requests, in arrival order.
    pub queue: Vec<Packet>,
    /// The request being serviced, when one is in flight.
    pub current: Option<PendingState>,
    /// Responses waiting to inject into the NoC.
    pub outgoing: Vec<Packet>,
    /// Whether promoted invariant asserts run in diagnostic mode.
    pub sanitize: bool,
    /// Accumulated sanitizer diagnostics, in sorted order.
    pub sanitizer_violations: Vec<Diagnostic>,
    /// Installed faults and their trigger counters.
    pub faults: Option<MemFaultsState>,
}

/// The memory tile of an ESP SoC.
///
/// Incoming [`MsgKind::DmaLoadReq`] and [`MsgKind::DmaStoreReq`] packets
/// (on the DMA-request plane) are serviced one at a time with the DRAM
/// burst-latency model; data and acknowledgements return on the decoupled
/// DMA-response plane. Physical addresses arrive already translated by the
/// requesting socket's TLB.
#[derive(Debug)]
pub struct MemTile {
    coord: Coord,
    dram: CachedDram,
    queue: VecDeque<Packet>,
    current: Option<Pending>,
    outgoing: VecDeque<Packet>,
    /// Sanitizer mode: unserviceable requests record typed diagnostics
    /// (in release builds too) instead of only `debug_assert!`-ing.
    sanitize: bool,
    sanitizer_violations: BTreeSet<Diagnostic>,
    tracer: Tracer,
    faults: Option<Box<MemFaults>>,
}

impl MemTile {
    /// Creates a memory tile at `coord` fronting a DRAM of `config`
    /// (non-coherent DMA: every burst goes off-chip).
    pub fn new(coord: Coord, config: DramConfig) -> Self {
        MemTile {
            coord,
            dram: CachedDram::new(config),
            queue: VecDeque::new(),
            current: None,
            outgoing: VecDeque::new(),
            sanitize: false,
            sanitizer_violations: BTreeSet::new(),
            tracer: Tracer::disabled(),
            faults: None,
        }
    }

    /// Creates a memory tile whose DRAM sits behind an LLC partition
    /// (LLC-coherent DMA).
    pub fn with_llc(coord: Coord, config: DramConfig, cache: CacheConfig) -> Self {
        MemTile {
            coord,
            dram: CachedDram::with_llc(config, cache),
            queue: VecDeque::new(),
            current: None,
            outgoing: VecDeque::new(),
            sanitize: false,
            sanitizer_violations: BTreeSet::new(),
            tracer: Tracer::disabled(),
            faults: None,
        }
    }

    /// Installs one memory fault from a fault plan. Returns `false` (and
    /// installs nothing) for non-memory fault kinds, so callers can route
    /// a mixed plan through every component.
    pub fn install_fault(&mut self, spec: &FaultSpec) -> bool {
        match &spec.kind {
            FaultKind::DmaDropWords {
                from_burst,
                count,
                drop_words,
            } => {
                let f = self.faults.get_or_insert_with(Default::default);
                f.drops.push(DropFault {
                    from_burst: *from_burst,
                    count: *count,
                    drop_words: *drop_words,
                    window: spec.window,
                });
                true
            }
            _ => false,
        }
    }

    /// How many memory faults have fired on this tile so far.
    pub fn faults_fired(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.fired)
    }

    /// Applies any armed word-drop fault to a serviced load burst,
    /// truncating the response data in place. Trigger indices count
    /// serviced load bursts on this tile.
    fn fault_drop(&mut self, data: &mut Vec<u64>, requester: Coord, cycle: u64) {
        let Some(f) = self.faults.as_deref_mut() else {
            return;
        };
        let seq = f.load_bursts;
        f.load_bursts += 1;
        let Some(d) = f.drops.iter().find(|d| {
            seq >= d.from_burst && seq - d.from_burst < d.count && d.window.contains(cycle)
        }) else {
            return;
        };
        let keep = (data.len() as u64).saturating_sub(d.drop_words);
        let dropped = data.len() as u64 - keep;
        if dropped == 0 {
            return;
        }
        data.truncate(keep as usize);
        f.fired += 1;
        let detail = format!(
            "dma_drop_words: burst {seq} for tile({},{}) lost its last {dropped} words",
            requester.x, requester.y
        );
        let coord = TileCoord::new(self.coord.x, self.coord.y);
        self.tracer
            .emit(cycle, coord, || TraceEvent::FaultInjected {
                fault: "dma_drop_words",
                detail,
            });
    }

    /// Captures the tile's complete serializable state (see
    /// [`MemTileState`] for what is and is not included).
    pub fn state(&self) -> MemTileState {
        MemTileState {
            dram: self.dram.state(),
            queue: self.queue.iter().cloned().collect(),
            current: self.current.as_ref().map(|p| PendingState {
                busy: p.busy,
                responses: p.responses.clone(),
            }),
            outgoing: self.outgoing.iter().cloned().collect(),
            sanitize: self.sanitize,
            sanitizer_violations: self.sanitizer_violations.iter().cloned().collect(),
            faults: self.faults.as_deref().map(|f| MemFaultsState {
                drops: f
                    .drops
                    .iter()
                    .map(|d| DropFaultState {
                        from_burst: d.from_burst,
                        count: d.count,
                        drop_words: d.drop_words,
                        window: d.window,
                    })
                    .collect(),
                load_bursts: f.load_bursts,
                fired: f.fired,
            }),
        }
    }

    /// Restores state captured by [`MemTile::state`]. Installed faults are
    /// replaced wholesale: restoring a fault-free snapshot uninstalls any
    /// plan armed since it was taken.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot's DRAM/LLC geometry does not match this
    /// tile's (it was captured from a different floorplan).
    pub fn restore_state(&mut self, state: &MemTileState) {
        self.dram.restore_state(&state.dram);
        self.queue = state.queue.iter().cloned().collect();
        self.current = state.current.as_ref().map(|p| Pending {
            busy: p.busy,
            responses: p.responses.clone(),
        });
        self.outgoing = state.outgoing.iter().cloned().collect();
        self.sanitize = state.sanitize;
        self.sanitizer_violations = state.sanitizer_violations.iter().cloned().collect();
        self.faults = state.faults.as_ref().map(|f| {
            Box::new(MemFaults {
                drops: f
                    .drops
                    .iter()
                    .map(|d| DropFault {
                        from_burst: d.from_burst,
                        count: d.count,
                        drop_words: d.drop_words,
                        window: d.window,
                    })
                    .collect(),
                load_bursts: f.load_bursts,
                fired: f.fired,
            })
        });
    }

    /// Installs the trace sink handle shared with the rest of the SoC.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Switches the promoted invariant asserts into diagnostic mode.
    pub(crate) fn enable_sanitize(&mut self) {
        self.sanitize = true;
    }

    pub(crate) fn sanitizer_violations(&self) -> &BTreeSet<Diagnostic> {
        &self.sanitizer_violations
    }

    /// LLC counters, when this tile hosts an LLC partition.
    pub fn llc_stats(&self) -> Option<&CacheStats> {
        self.dram.llc_stats()
    }

    /// The tile coordinate.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// DRAM access counters (the Fig. 8 metric).
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.dram_stats()
    }

    /// Resets the DRAM (and LLC) access counters.
    pub fn reset_dram_stats(&mut self) {
        self.dram.reset_stats();
    }

    /// Direct word read, bypassing accounting (testbench access).
    pub fn peek(&self, addr: u64) -> u64 {
        self.dram.peek(addr)
    }

    /// Direct word write, bypassing accounting (testbench access).
    pub fn poke(&mut self, addr: u64, value: u64) {
        self.dram.poke(addr, value);
    }

    /// DRAM capacity in words.
    pub fn size_words(&self) -> u64 {
        self.dram.size_words()
    }

    /// Whether the tile has no queued or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.current.is_none() && self.outgoing.is_empty()
    }

    /// Advances the tile by one cycle against the mesh and reports its
    /// progress.
    pub fn tick(&mut self, mesh: &mut Mesh) -> Progress {
        // Accept new requests.
        while let Some(pkt) = mesh.eject(self.coord, Plane::DmaReq) {
            self.queue.push_back(pkt);
        }
        // Start servicing the next request: the storage access runs now,
        // its responses are held for the modelled latency.
        if self.current.is_none() {
            if let Some(request) = self.queue.pop_front() {
                let (busy, responses) = self.service(request, mesh.cycle());
                self.current = Some(Pending { busy, responses });
            }
        }
        // Progress the in-flight request.
        if let Some(p) = self.current.as_mut() {
            if p.busy > 0 {
                p.busy -= 1;
            }
            if p.busy == 0 {
                let done = self.current.take().expect("current op");
                self.outgoing.extend(done.responses);
            }
        }
        // Drain responses into the NoC.
        while let Some(pkt) = self.outgoing.front() {
            if mesh.can_inject(self.coord, pkt.plane(), pkt.flit_len()) {
                let pkt = self.outgoing.pop_front().expect("front packet");
                mesh.inject(pkt).expect("capacity checked");
            } else {
                break;
            }
        }
        self.progress(mesh.cycle())
    }

    /// Event-driven progress: blocked while the in-flight request counts
    /// down its DRAM latency, active whenever it has responses to release
    /// or requests to start, quiescent with nothing in flight.
    pub fn progress(&self, now: u64) -> Progress {
        if !self.outgoing.is_empty() {
            return Progress::Active;
        }
        match &self.current {
            // A tick with `busy == 1` decrements *and* releases the
            // responses, so the last boring cycle is `busy - 1` away.
            Some(p) if p.busy > 1 => Progress::Blocked {
                until: now + p.busy - 1,
            },
            Some(_) => Progress::Active,
            None if !self.queue.is_empty() => Progress::Active,
            None => Progress::Quiescent,
        }
    }

    /// Bulk-applies `delta` boring cycles to the in-flight latency
    /// countdown.
    pub fn advance(&mut self, delta: u64) {
        if let Some(p) = self.current.as_mut() {
            debug_assert!(delta < p.busy, "advance must stop before release");
            p.busy -= delta;
        }
    }

    fn service(&mut self, request: Packet, cycle: u64) -> (u64, Vec<Packet>) {
        let requester = request.src();
        let coord = TileCoord::new(self.coord.x, self.coord.y);
        match request.kind() {
            MsgKind::DmaLoadReq => {
                let addr = request.payload()[0];
                let len = request.payload()[1];
                let dest_offset = request.payload().get(2).copied().unwrap_or(0);
                let frame = request.frame();
                let (mut data, latency) = self.dram.read_burst(addr, len);
                if self.faults.is_some() {
                    self.fault_drop(&mut data, requester, cycle);
                }
                self.tracer.emit(cycle, coord, || TraceEvent::DmaBurst {
                    kind: DmaKind::Read,
                    words: len,
                    latency,
                    frame,
                });
                let mut responses = Vec::new();
                for (k, chunk) in data.chunks(MAX_DMA_PACKET_WORDS).enumerate() {
                    let mut payload = vec![dest_offset + (k * MAX_DMA_PACKET_WORDS) as u64];
                    payload.extend_from_slice(chunk);
                    responses.push(
                        Packet::new(
                            self.coord,
                            requester,
                            Plane::DmaRsp,
                            MsgKind::DmaData,
                            payload,
                        )
                        .with_frame(frame),
                    );
                }
                (latency, responses)
            }
            MsgKind::DmaStoreReq => {
                let addr = request.payload()[0];
                let len = request.payload()[1] as usize;
                let data = &request.payload()[2..2 + len];
                let frame = request.frame();
                let latency = self.dram.write_burst(addr, data);
                self.tracer.emit(cycle, coord, || TraceEvent::DmaBurst {
                    kind: DmaKind::Write,
                    words: len as u64,
                    latency,
                    frame,
                });
                let ack = Packet::new(
                    self.coord,
                    requester,
                    Plane::DmaRsp,
                    MsgKind::DmaStoreAck,
                    vec![len as u64],
                )
                .with_frame(frame);
                (latency, vec![ack])
            }
            other => {
                if self.sanitize {
                    self.sanitizer_violations.insert(Diagnostic::error(
                        codes::PLANE_MISASSIGNMENT,
                        tile_location(self.coord),
                        format!(
                            "memory tile cannot service {other} from tile({},{})",
                            requester.x, requester.y
                        ),
                    ));
                } else {
                    debug_assert!(false, "memory tile cannot service {other}");
                }
                (1, Vec::new())
            }
        }
    }
}

impl Schedulable for MemTile {
    type Fabric = Mesh;

    fn tick(&mut self, mesh: &mut Mesh) -> Progress {
        MemTile::tick(self, mesh)
    }

    fn progress(&self, now: u64) -> Progress {
        MemTile::progress(self, now)
    }

    fn advance(&mut self, delta: u64) {
        MemTile::advance(self, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml_noc::MeshConfig;

    fn setup() -> (Mesh, MemTile) {
        let mesh = Mesh::new(MeshConfig::new(2, 1)).unwrap();
        let tile = MemTile::new(
            Coord::new(1, 0),
            DramConfig {
                size_words: 4096,
                first_word_latency: 4,
                per_word_latency: 1,
                banks: 1,
            },
        );
        (mesh, tile)
    }

    fn drive(mesh: &mut Mesh, tile: &mut MemTile, cycles: usize) {
        for _ in 0..cycles {
            tile.tick(mesh);
            mesh.tick();
        }
    }

    #[test]
    fn load_request_returns_data() {
        let (mut mesh, mut tile) = setup();
        tile.poke(100, 7);
        tile.poke(101, 8);
        let req = Packet::new(
            Coord::new(0, 0),
            Coord::new(1, 0),
            Plane::DmaReq,
            MsgKind::DmaLoadReq,
            vec![100, 2],
        );
        mesh.inject(req).unwrap();
        drive(&mut mesh, &mut tile, 50);
        let rsp = mesh.eject(Coord::new(0, 0), Plane::DmaRsp).expect("data");
        assert_eq!(rsp.kind(), MsgKind::DmaData);
        // Offset header (0 when the request omits it) then the data.
        assert_eq!(rsp.payload(), &[0, 7, 8]);
        assert_eq!(tile.dram_stats().word_reads, 2);
    }

    #[test]
    fn store_request_writes_and_acks() {
        let (mut mesh, mut tile) = setup();
        let mut payload = vec![200, 3];
        payload.extend([11, 12, 13]);
        let req = Packet::new(
            Coord::new(0, 0),
            Coord::new(1, 0),
            Plane::DmaReq,
            MsgKind::DmaStoreReq,
            payload,
        );
        mesh.inject(req).unwrap();
        drive(&mut mesh, &mut tile, 50);
        let ack = mesh.eject(Coord::new(0, 0), Plane::DmaRsp).expect("ack");
        assert_eq!(ack.kind(), MsgKind::DmaStoreAck);
        assert_eq!(ack.payload(), &[3]);
        assert_eq!(tile.peek(201), 12);
        assert_eq!(tile.dram_stats().word_writes, 3);
    }

    #[test]
    fn long_load_splits_into_packets() {
        let (mut mesh, mut tile) = setup();
        let req = Packet::new(
            Coord::new(0, 0),
            Coord::new(1, 0),
            Plane::DmaReq,
            MsgKind::DmaLoadReq,
            vec![0, 300],
        );
        mesh.inject(req).unwrap();
        // Drain as we go so ejection queues never saturate.
        let mut words = 0;
        let mut packets = 0;
        for _ in 0..3000 {
            tile.tick(&mut mesh);
            mesh.tick();
            while let Some(p) = mesh.eject(Coord::new(0, 0), Plane::DmaRsp) {
                words += p.payload().len() - 1; // minus the offset header
                packets += 1;
            }
        }
        assert_eq!(words, 300);
        assert_eq!(packets, 3); // 128 + 128 + 44
    }

    #[test]
    fn requests_are_serviced_in_order() {
        let (mut mesh, mut tile) = setup();
        tile.poke(0, 1);
        tile.poke(50, 2);
        for addr in [0u64, 50] {
            mesh.inject(Packet::new(
                Coord::new(0, 0),
                Coord::new(1, 0),
                Plane::DmaReq,
                MsgKind::DmaLoadReq,
                vec![addr, 1],
            ))
            .unwrap();
        }
        drive(&mut mesh, &mut tile, 100);
        let first = mesh.eject(Coord::new(0, 0), Plane::DmaRsp).unwrap();
        let second = mesh.eject(Coord::new(0, 0), Plane::DmaRsp).unwrap();
        assert_eq!(first.payload(), &[0, 1]);
        assert_eq!(second.payload(), &[0, 2]);
    }

    #[test]
    fn latency_reflects_dram_model() {
        let (mut mesh, mut tile) = setup();
        mesh.inject(Packet::new(
            Coord::new(0, 0),
            Coord::new(1, 0),
            Plane::DmaReq,
            MsgKind::DmaLoadReq,
            vec![0, 10],
        ))
        .unwrap();
        let mut cycles = 0;
        while mesh.peek(Coord::new(0, 0), Plane::DmaRsp).is_none() {
            tile.tick(&mut mesh);
            mesh.tick();
            cycles += 1;
            assert!(cycles < 1000, "no response");
        }
        // At least the DRAM burst latency (4 + 10) plus NoC traversal.
        assert!(cycles >= 14, "response too fast: {cycles}");
    }
}
