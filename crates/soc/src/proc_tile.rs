//! The processor tile: the hardware seat of the software runtime.

use esp4ml_noc::{Coord, Mesh, MsgKind, Packet, Plane, Progress, Schedulable};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Complete serializable state of a [`ProcTile`]: undrained register
/// writes and pending (delivered but untaken) interrupts. The coordinate
/// is structural and not captured.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcTileState {
    /// Register writes waiting to inject into the NoC.
    pub outgoing: Vec<Packet>,
    /// Interrupts delivered but not yet taken by the runtime, in arrival
    /// order.
    pub irqs: Vec<Coord>,
}

/// The processor tile (an Ariane RISC-V core in the paper's SoCs).
///
/// The simulator does not model instruction execution; the tile's
/// observable behaviour — issuing memory-mapped register writes over the
/// I/O plane and fielding accelerator interrupts — is what the runtime
/// crate drives, and what this type implements.
#[derive(Debug)]
pub struct ProcTile {
    coord: Coord,
    outgoing: VecDeque<Packet>,
    irqs: VecDeque<Coord>,
}

impl ProcTile {
    /// Creates a processor tile at `coord`.
    pub fn new(coord: Coord) -> Self {
        ProcTile {
            coord,
            outgoing: VecDeque::new(),
            irqs: VecDeque::new(),
        }
    }

    /// The tile coordinate.
    pub fn coord(&self) -> Coord {
        self.coord
    }

    /// Captures the tile's complete serializable state.
    pub fn state(&self) -> ProcTileState {
        ProcTileState {
            outgoing: self.outgoing.iter().cloned().collect(),
            irqs: self.irqs.iter().copied().collect(),
        }
    }

    /// Restores state captured by [`ProcTile::state`].
    pub fn restore_state(&mut self, state: &ProcTileState) {
        self.outgoing = state.outgoing.iter().cloned().collect();
        self.irqs = state.irqs.iter().copied().collect();
    }

    /// Queues a register write to `tile` (one `ioctl`-path store).
    pub fn queue_reg_write(&mut self, tile: Coord, offset: u64, value: u64) {
        self.outgoing.push_back(Packet::new(
            self.coord,
            tile,
            Plane::IoIrq,
            MsgKind::RegWrite,
            vec![offset, value],
        ));
    }

    /// Takes all interrupts received so far (the coordinates of the raising
    /// accelerator tiles), in arrival order.
    pub fn take_irqs(&mut self) -> Vec<Coord> {
        self.irqs.drain(..).collect()
    }

    /// Whether register writes are still in flight from this tile.
    pub fn is_idle(&self) -> bool {
        self.outgoing.is_empty()
    }

    /// Drains interrupt packets delivered to this tile's socket.
    pub fn drain_irqs(&mut self, mesh: &mut Mesh) {
        while let Some(pkt) = mesh.eject(self.coord, Plane::IoIrq) {
            if pkt.kind() == MsgKind::Irq {
                self.irqs.push_back(Coord::from_reg(pkt.payload()[0]));
            }
        }
    }

    /// Advances the tile by one cycle and reports its progress.
    pub fn tick(&mut self, mesh: &mut Mesh) -> Progress {
        self.drain_irqs(mesh);
        while let Some(pkt) = self.outgoing.front() {
            if mesh.can_inject(self.coord, pkt.plane(), pkt.flit_len()) {
                let pkt = self.outgoing.pop_front().expect("front packet");
                mesh.inject(pkt).expect("capacity checked");
            } else {
                break;
            }
        }
        self.progress(mesh.cycle())
    }

    /// Event-driven progress: active while register writes wait to inject
    /// or delivered interrupts wait to be taken by the runtime. A pending
    /// IRQ is software-visible state — the runtime polls it between steps
    /// and reacts by issuing new work, so the scheduler must not
    /// fast-forward past it (the all-quiescent deadlock skip would eat the
    /// whole cycle budget before the runtime ever saw the interrupt).
    pub fn progress(&self, _now: u64) -> Progress {
        if self.outgoing.is_empty() && self.irqs.is_empty() {
            Progress::Quiescent
        } else {
            Progress::Active
        }
    }
}

impl Schedulable for ProcTile {
    type Fabric = Mesh;

    fn tick(&mut self, mesh: &mut Mesh) -> Progress {
        ProcTile::tick(self, mesh)
    }

    fn progress(&self, now: u64) -> Progress {
        ProcTile::progress(self, now)
    }

    fn advance(&mut self, _delta: u64) {
        // No per-cycle internal state: boring cycles are free.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esp4ml_noc::MeshConfig;

    #[test]
    fn reg_writes_travel_the_io_plane() {
        let mut mesh = Mesh::new(MeshConfig::new(2, 1)).unwrap();
        let mut proc = ProcTile::new(Coord::new(0, 0));
        proc.queue_reg_write(Coord::new(1, 0), 2, 99);
        for _ in 0..20 {
            proc.tick(&mut mesh);
            mesh.tick();
        }
        let pkt = mesh.eject(Coord::new(1, 0), Plane::IoIrq).expect("write");
        assert_eq!(pkt.kind(), MsgKind::RegWrite);
        assert_eq!(pkt.payload(), &[2, 99]);
        assert!(proc.is_idle());
    }

    #[test]
    fn collects_irqs() {
        let mut mesh = Mesh::new(MeshConfig::new(2, 1)).unwrap();
        let mut proc = ProcTile::new(Coord::new(0, 0));
        let accel = Coord::new(1, 0);
        mesh.inject(Packet::new(
            accel,
            Coord::new(0, 0),
            Plane::IoIrq,
            MsgKind::Irq,
            vec![accel.to_reg()],
        ))
        .unwrap();
        for _ in 0..20 {
            proc.tick(&mut mesh);
            mesh.tick();
        }
        assert_eq!(proc.take_irqs(), vec![accel]);
        assert!(proc.take_irqs().is_empty());
    }
}
