//! Accelerator kernels: the COMPUTE stage plugged into the tile wrapper.

use esp4ml_hls::Resources;
use esp4ml_hls4ml::CompiledNn;
use std::fmt;

/// The result of one kernel invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelOutput {
    /// Output values (one logical value per element; the wrapper packs them
    /// into 64-bit NoC words).
    pub values: Vec<u64>,
    /// Compute latency of this invocation in cycles.
    pub cycles: u64,
}

/// A behavioural accelerator kernel.
///
/// A kernel declares its per-invocation I/O sizes in *values* (not NoC
/// words) and its data width in bits; the socket wrapper handles packing
/// values into 64-bit words for DMA and p2p transport — that is the
/// "unpacking" the paper's LOAD function performs.
pub trait AcceleratorKernel: Send {
    /// Kernel name (for driver discovery and reports).
    fn name(&self) -> &str;

    /// Device kind: the interchangeability class used by the runtime's
    /// failover remap. Two devices of the same kind (and I/O shape) run
    /// the same computation, so one can substitute for the other when it
    /// breaks. Defaults to the instance name, i.e. nothing is
    /// interchangeable unless a kernel opts in.
    fn kind(&self) -> &str {
        self.name()
    }

    /// Input values consumed per invocation.
    fn input_values(&self) -> u64;

    /// Output values produced per invocation.
    fn output_values(&self) -> u64;

    /// Width of one value in bits (values are packed `64 / data_bits` per
    /// NoC word). Must divide 64.
    fn data_bits(&self) -> u32 {
        16
    }

    /// Processes one invocation.
    ///
    /// `input` has exactly [`AcceleratorKernel::input_values`] elements;
    /// the result must have exactly [`AcceleratorKernel::output_values`]
    /// elements and report the compute latency in cycles.
    fn compute(&mut self, input: &[u64]) -> KernelOutput;

    /// Steady-state initiation interval (cycles/invocation) of the compute
    /// datapath, used for reporting.
    fn initiation_interval(&self) -> u64;

    /// Post-synthesis resource usage of the kernel (without the socket).
    fn resources(&self) -> Resources;
}

impl fmt::Debug for dyn AcceleratorKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AcceleratorKernel({})", self.name())
    }
}

/// Packs logical values into 64-bit NoC words.
///
/// # Panics
///
/// Panics unless `data_bits` divides 64.
pub(crate) fn pack_values(values: &[u64], data_bits: u32) -> Vec<u64> {
    assert!(64 % data_bits == 0, "data width must divide 64");
    let per_word = (64 / data_bits) as usize;
    let mask = if data_bits == 64 {
        u64::MAX
    } else {
        (1u64 << data_bits) - 1
    };
    values
        .chunks(per_word)
        .map(|chunk| {
            let mut word = 0u64;
            for (i, &v) in chunk.iter().enumerate() {
                word |= (v & mask) << (i as u32 * data_bits);
            }
            word
        })
        .collect()
}

/// Unpacks 64-bit NoC words into `count` logical values.
///
/// # Panics
///
/// Panics unless `data_bits` divides 64 or if `words` is too short.
pub(crate) fn unpack_values(words: &[u64], count: usize, data_bits: u32) -> Vec<u64> {
    assert!(64 % data_bits == 0, "data width must divide 64");
    let per_word = (64 / data_bits) as usize;
    assert!(
        words.len() * per_word >= count,
        "not enough words to unpack {count} values"
    );
    let mask = if data_bits == 64 {
        u64::MAX
    } else {
        (1u64 << data_bits) - 1
    };
    (0..count)
        .map(|i| (words[i / per_word] >> ((i % per_word) as u32 * data_bits)) & mask)
        .collect()
}

/// Number of 64-bit words needed for `values` values of `data_bits` bits.
pub(crate) fn words_for(values: u64, data_bits: u32) -> u64 {
    let per_word = (64 / data_bits) as u64;
    values.div_ceil(per_word)
}

/// A trivial kernel that multiplies every input value by a constant — used
/// by unit tests and the quickstart example.
#[derive(Debug, Clone)]
pub struct ScaleKernel {
    name: String,
    kind: Option<String>,
    values: u64,
    factor: u64,
    cycles_per_value: u64,
}

impl ScaleKernel {
    /// Creates a kernel processing `values` values per invocation,
    /// multiplying each by `factor`.
    pub fn new(name: &str, values: u64, factor: u64) -> Self {
        ScaleKernel {
            name: name.to_string(),
            kind: None,
            values,
            factor,
            cycles_per_value: 1,
        }
    }

    /// Sets the modelled compute cost per value (builder style), to mimic
    /// heavier kernels in tests and examples.
    pub fn with_cycles_per_value(mut self, cycles: u64) -> Self {
        self.cycles_per_value = cycles;
        self
    }

    /// Declares the interchangeability class (builder style): instances
    /// sharing a kind can substitute for each other under failover.
    pub fn with_kind(mut self, kind: &str) -> Self {
        self.kind = Some(kind.to_string());
        self
    }
}

impl AcceleratorKernel for ScaleKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> &str {
        self.kind.as_deref().unwrap_or(&self.name)
    }

    fn input_values(&self) -> u64 {
        self.values
    }

    fn output_values(&self) -> u64 {
        self.values
    }

    fn compute(&mut self, input: &[u64]) -> KernelOutput {
        KernelOutput {
            values: input.iter().map(|&v| (v * self.factor) & 0xffff).collect(),
            cycles: self.values * self.cycles_per_value,
        }
    }

    fn initiation_interval(&self) -> u64 {
        self.values * self.cycles_per_value
    }

    fn resources(&self) -> Resources {
        Resources::new(500, 700, 2, 1)
    }
}

/// Adapter exposing a compiled HLS4ML network as an accelerator kernel.
///
/// Values on the NoC are the raw fixed-point words of the network's
/// [`esp4ml_hls::FixedSpec`], reinterpreted as unsigned `data_bits`-bit
/// fields (two's complement).
#[derive(Debug, Clone)]
pub struct NnKernel {
    nn: CompiledNn,
    kind: Option<String>,
}

impl NnKernel {
    /// Wraps a compiled network.
    pub fn new(nn: CompiledNn) -> Self {
        NnKernel { nn, kind: None }
    }

    /// Declares the interchangeability class (builder style): copies of
    /// the same compiled network deployed under different instance names
    /// (e.g. `cl0`..`cl3`) share a kind so the runtime can fail over
    /// between them.
    pub fn with_kind(mut self, kind: &str) -> Self {
        self.kind = Some(kind.to_string());
        self
    }

    /// The wrapped network.
    pub fn network(&self) -> &CompiledNn {
        &self.nn
    }

    fn to_signed(&self, v: u64) -> i64 {
        let bits = self.nn.spec().total_bits();
        let shift = 64 - bits;
        ((v << shift) as i64) >> shift
    }

    fn to_unsigned(&self, v: i64) -> u64 {
        let bits = self.nn.spec().total_bits();
        (v as u64) & ((1u64 << bits) - 1)
    }
}

impl AcceleratorKernel for NnKernel {
    fn name(&self) -> &str {
        self.nn.name()
    }

    fn kind(&self) -> &str {
        self.kind.as_deref().unwrap_or_else(|| self.nn.name())
    }

    fn input_values(&self) -> u64 {
        self.nn.input_dim() as u64
    }

    fn output_values(&self) -> u64 {
        self.nn.output_dim() as u64
    }

    fn data_bits(&self) -> u32 {
        self.nn.spec().total_bits()
    }

    fn compute(&mut self, input: &[u64]) -> KernelOutput {
        let raw: Vec<i64> = input.iter().map(|&v| self.to_signed(v)).collect();
        let out = self.nn.infer_fixed(&raw);
        KernelOutput {
            values: out.into_iter().map(|v| self.to_unsigned(v)).collect(),
            cycles: self.nn.latency(),
        }
    }

    fn initiation_interval(&self) -> u64 {
        self.nn.initiation_interval()
    }

    fn resources(&self) -> Resources {
        self.nn.resources()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip_16bit() {
        let values: Vec<u64> = (0..10).map(|i| i * 1000 + 7).collect();
        let words = pack_values(&values, 16);
        assert_eq!(words.len(), 3); // ceil(10/4)
        assert_eq!(unpack_values(&words, 10, 16), values);
    }

    #[test]
    fn pack_unpack_roundtrip_other_widths() {
        for bits in [8u32, 16, 32, 64] {
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            let values: Vec<u64> = (0..7).map(|i| (i * 0x0123_4567) & mask).collect();
            let words = pack_values(&values, bits);
            assert_eq!(unpack_values(&words, 7, bits), values, "width {bits}");
        }
    }

    #[test]
    fn words_for_rounds_up() {
        assert_eq!(words_for(1024, 16), 256);
        assert_eq!(words_for(10, 16), 3);
        assert_eq!(words_for(1, 64), 1);
        assert_eq!(words_for(0, 16), 0);
    }

    #[test]
    fn kind_defaults_to_name_until_overridden() {
        let k = ScaleKernel::new("x3", 4, 3);
        assert_eq!(k.kind(), "x3");
        let k = k.with_kind("scaler");
        assert_eq!(k.kind(), "scaler");
        assert_eq!(k.name(), "x3");
    }

    #[test]
    fn scale_kernel_multiplies() {
        let mut k = ScaleKernel::new("x3", 4, 3);
        let out = k.compute(&[1, 2, 3, 4]);
        assert_eq!(out.values, vec![3, 6, 9, 12]);
        assert_eq!(out.cycles, 4);
        assert_eq!(k.input_values(), 4);
    }

    #[test]
    fn nn_kernel_sign_roundtrip() {
        use esp4ml_hls4ml::{Hls4mlCompiler, Hls4mlConfig};
        use esp4ml_nn::{Activation, LayerSpec, Sequential};
        let mut m = Sequential::with_seed(4, 17);
        m.push(LayerSpec::dense(4, Activation::Linear));
        let nn = Hls4mlCompiler::compile(&m, &Hls4mlConfig::with_reuse(4)).unwrap();
        let spec = nn.spec();
        let mut k = NnKernel::new(nn.clone());
        // Feed a negative fixed-point value through the NoC encoding.
        let raw_in: Vec<i64> = vec![spec.quantize(-1.5), 0, 0, 0];
        let wire: Vec<u64> = raw_in.iter().map(|&v| (v as u64) & 0xffff).collect();
        let out = k.compute(&wire);
        let direct = nn.infer_fixed(&raw_in);
        let back: Vec<i64> = out
            .values
            .iter()
            .map(|&v| ((v << 48) as i64) >> 48)
            .collect();
        assert_eq!(back, direct);
    }
}
