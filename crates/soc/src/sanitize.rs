//! SoC-level sanitizer state and deadlock diagnosis.
//!
//! The NoC sanitizer (see `esp4ml_noc`) audits link-level invariants; this
//! module adds the SoC-level half: end-to-end **DMA byte accounting**
//! (`E0404`) across accelerator sockets, and the **wait-for walk** that
//! turns a `run_until_idle` timeout into a [`DeadlockDiagnosis`] naming
//! the blocked tiles, what each one waits on, and — when the waits close
//! a cycle — the cycle itself (`E0501`).
//!
//! A diagnosis contains no cycle stamps or other transient values, so the
//! naive and event-driven engines produce identical diagnoses for the
//! same stuck configuration.

use esp4ml_check::{codes, Diagnostic, Report, SanitizerConfig};
use esp4ml_noc::Coord;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Serializable image of the SoC-level sanitizer: its configuration and
/// the accumulated end-to-end accounting violations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocSanitizerState {
    /// The armed sanitizer configuration.
    pub config: SanitizerConfig,
    /// Accumulated violations, in sorted order.
    pub violations: Vec<Diagnostic>,
}

/// One tile that cannot make progress, and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct BlockedTile {
    /// The tile coordinate.
    pub x: u8,
    /// The tile coordinate.
    pub y: u8,
    /// The accelerator device name.
    pub device: String,
    /// The wrapper FSM state the tile is parked in.
    pub state: String,
    /// The tile this one waits on, when the wait has a concrete peer
    /// (a p2p source or the memory tile).
    pub waits_on: Option<(u8, u8)>,
    /// The NoC plane the awaited message would arrive on.
    pub plane: String,
    /// Human-readable wait description.
    pub reason: String,
}

impl fmt::Display for BlockedTile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tile({},{}) {} in {}: {} [plane {}]",
            self.x, self.y, self.device, self.state, self.reason, self.plane
        )
    }
}

/// Why a `run_until_idle` call timed out, reconstructed from the wait-for
/// graph of the accelerator wrappers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DeadlockDiagnosis {
    /// Every tile that is parked waiting on something external.
    pub blocked: Vec<BlockedTile>,
    /// A cycle in the wait-for graph, when one exists: each entry is a
    /// `(x, y)` tile coordinate, and each tile waits on the next (the
    /// last waits on the first).
    pub cycle: Option<Vec<(u8, u8)>>,
}

impl DeadlockDiagnosis {
    /// Renders the diagnosis as a stable, single-string diagnostic
    /// attached to `RunOutcome::TimedOut` and `RuntimeError::Timeout`.
    pub fn summary(&self) -> String {
        self.to_string()
    }

    /// The diagnosis as a typed [`Diagnostic`] (code `E0501`).
    pub fn diagnostic(&self) -> Diagnostic {
        let location = match &self.cycle {
            Some(cycle) => {
                let tiles: Vec<String> = cycle
                    .iter()
                    .map(|(x, y)| format!("tile({x},{y})"))
                    .collect();
                tiles.join(" -> ")
            }
            None => "soc".to_string(),
        };
        Diagnostic::error(codes::DEADLOCK, location, self.summary()).with_hint(
            "check that every p2p consumer's P2P_REG sources name running \
             producers and that stage frame counts divide evenly",
        )
    }
}

impl fmt::Display for DeadlockDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(cycle) = &self.cycle {
            let tiles: Vec<String> = cycle
                .iter()
                .map(|(x, y)| format!("tile({x},{y})"))
                .collect();
            write!(f, "wait-for cycle {}; ", tiles.join(" -> "))?;
        }
        let blocked: Vec<String> = self.blocked.iter().map(|b| b.to_string()).collect();
        write!(f, "blocked: {}", blocked.join("; "))
    }
}

/// Finds a cycle in the wait-for graph (each blocked tile waits on at
/// most one peer). Returns the cycle in wait order, rotated to start at
/// its smallest coordinate so the result is independent of walk order.
pub(crate) fn wait_cycle(blocked: &[BlockedTile]) -> Option<Vec<(u8, u8)>> {
    let edges: BTreeMap<(u8, u8), (u8, u8)> = blocked
        .iter()
        .filter_map(|b| b.waits_on.map(|w| ((b.x, b.y), w)))
        .collect();
    for start in edges.keys() {
        let mut path = vec![*start];
        let mut seen: BTreeSet<(u8, u8)> = [*start].into();
        let mut cur = *start;
        while let Some(&next) = edges.get(&cur) {
            if let Some(pos) = path.iter().position(|&n| n == next) {
                let mut cycle = path[pos..].to_vec();
                let min = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, n)| **n)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                cycle.rotate_left(min);
                return Some(cycle);
            }
            if !seen.insert(next) {
                break;
            }
            path.push(next);
            cur = next;
        }
    }
    None
}

/// SoC-half of the sanitizer: configuration plus accumulated end-to-end
/// accounting violations (the mesh keeps its own link-level set).
#[derive(Debug)]
pub(crate) struct SocSanitizer {
    pub(crate) config: SanitizerConfig,
    violations: BTreeSet<Diagnostic>,
}

impl SocSanitizer {
    pub(crate) fn new(config: SanitizerConfig) -> Self {
        SocSanitizer {
            config,
            violations: BTreeSet::new(),
        }
    }

    pub(crate) fn state(&self) -> SocSanitizerState {
        SocSanitizerState {
            config: self.config,
            violations: self.violations.iter().cloned().collect(),
        }
    }

    pub(crate) fn from_state(state: &SocSanitizerState) -> Self {
        SocSanitizer {
            config: state.config,
            violations: state.violations.iter().cloned().collect(),
        }
    }

    pub(crate) fn record(&mut self, diag: Diagnostic) {
        self.violations.insert(diag);
    }

    pub(crate) fn merge_into(&self, report: &mut Report) {
        for d in &self.violations {
            report.push(d.clone());
        }
    }
}

/// Formats a tile location the way every SoC-level diagnostic does.
pub(crate) fn tile_location(coord: Coord) -> String {
    format!("tile({},{})", coord.x, coord.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocked(x: u8, y: u8, waits_on: Option<(u8, u8)>) -> BlockedTile {
        BlockedTile {
            x,
            y,
            device: format!("dev{x}{y}"),
            state: "load_wait".into(),
            waits_on,
            plane: "dma-rsp".into(),
            reason: "waiting".into(),
        }
    }

    #[test]
    fn two_tile_wait_cycle_is_found() {
        let tiles = vec![blocked(0, 1, Some((1, 1))), blocked(1, 1, Some((0, 1)))];
        let cycle = wait_cycle(&tiles).expect("cycle");
        assert_eq!(cycle, vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn chain_without_cycle_yields_none() {
        let tiles = vec![blocked(0, 1, Some((1, 1))), blocked(1, 1, None)];
        assert!(wait_cycle(&tiles).is_none());
    }

    #[test]
    fn cycle_start_is_normalized() {
        // Same cycle regardless of which tile the walk starts from.
        let a = vec![blocked(2, 0, Some((0, 2))), blocked(0, 2, Some((2, 0)))];
        let b = vec![blocked(0, 2, Some((2, 0))), blocked(2, 0, Some((0, 2)))];
        assert_eq!(wait_cycle(&a), wait_cycle(&b));
        assert_eq!(wait_cycle(&a).unwrap()[0], (0, 2));
    }

    #[test]
    fn diagnosis_renders_tiles_and_cycle() {
        let diag = DeadlockDiagnosis {
            blocked: vec![blocked(0, 1, Some((1, 1))), blocked(1, 1, Some((0, 1)))],
            cycle: Some(vec![(0, 1), (1, 1)]),
        };
        let text = diag.to_string();
        assert!(text.contains("wait-for cycle tile(0,1) -> tile(1,1)"));
        assert!(text.contains("dev01"));
        let d = diag.diagnostic();
        assert_eq!(d.code, codes::DEADLOCK);
        assert_eq!(d.location, "tile(0,1) -> tile(1,1)");
    }
}
