//! Error type for SoC construction and control.

use esp4ml_noc::{Coord, NocError};
use std::error::Error;
use std::fmt;

/// Errors returned by SoC construction and the control interface.
#[derive(Debug)]
#[non_exhaustive]
pub enum SocError {
    /// Underlying NoC failure.
    Noc(NocError),
    /// A tile was placed twice at the same coordinate.
    TileConflict {
        /// The contested coordinate.
        coord: Coord,
    },
    /// The floorplan lacks a required tile kind.
    MissingTile {
        /// What was missing ("processor", "memory", …).
        kind: &'static str,
    },
    /// An operation referenced a coordinate that is not the expected tile
    /// kind.
    WrongTile {
        /// The coordinate addressed.
        coord: Coord,
        /// What the operation expected.
        expected: &'static str,
    },
    /// Register or configuration value invalid.
    BadConfig(String),
    /// DRAM address out of range.
    BadAddress {
        /// The offending word address.
        addr: u64,
    },
    /// A snapshot does not structurally match this SoC and cannot be
    /// restored onto it.
    SnapshotMismatch(String),
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::Noc(e) => write!(f, "noc error: {e}"),
            SocError::TileConflict { coord } => write!(f, "tile already placed at {coord}"),
            SocError::MissingTile { kind } => write!(f, "floorplan needs a {kind} tile"),
            SocError::WrongTile { coord, expected } => {
                write!(f, "tile at {coord} is not a {expected} tile")
            }
            SocError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            SocError::BadAddress { addr } => write!(f, "DRAM address {addr:#x} out of range"),
            SocError::SnapshotMismatch(msg) => write!(f, "snapshot mismatch: {msg}"),
        }
    }
}

impl Error for SocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SocError::Noc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NocError> for SocError {
    fn from(e: NocError) -> Self {
        SocError::Noc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let msgs = [
            SocError::TileConflict {
                coord: Coord::new(1, 1),
            }
            .to_string(),
            SocError::MissingTile { kind: "memory" }.to_string(),
            SocError::BadConfig("x".into()).to_string(),
            SocError::BadAddress { addr: 16 }.to_string(),
        ];
        assert!(msgs.iter().all(|m| !m.is_empty()));
    }

    #[test]
    fn from_noc_error() {
        let e: SocError = NocError::EmptyPayload.into();
        assert!(matches!(e, SocError::Noc(_)));
    }
}
