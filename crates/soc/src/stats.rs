//! Execution statistics.

use serde::{Deserialize, Serialize};

/// Per-accelerator execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccelStats {
    /// Frames (invocations) completed.
    pub frames_done: u64,
    /// Cycles spent outside Idle/Done.
    pub busy_cycles: u64,
    /// Cycles stalled waiting for load data.
    pub load_cycles: u64,
    /// Cycles the kernel datapath was computing.
    pub compute_cycles: u64,
    /// Cycles stalled in store phases.
    pub store_cycles: u64,
    /// Socket stall cycles (TLB misses, DMA setup).
    pub stall_cycles: u64,
    /// Words loaded from memory over DMA.
    pub dma_words_loaded: u64,
    /// Words stored to memory over DMA.
    pub dma_words_stored: u64,
    /// Words sent tile-to-tile over the p2p service.
    pub p2p_words_sent: u64,
    /// Words received (DMA and p2p responses).
    pub words_received: u64,
}

/// SoC-wide statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SocStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// DRAM words read (summed over memory tiles).
    pub dram_word_reads: u64,
    /// DRAM words written (summed over memory tiles).
    pub dram_word_writes: u64,
    /// Total NoC flit-hops.
    pub noc_flit_hops: u64,
    /// Frames completed, summed over accelerators.
    pub total_frames: u64,
}

impl SocStats {
    /// Total DRAM accesses in words — the paper's Fig. 8 metric.
    pub fn dram_accesses(&self) -> u64 {
        self.dram_word_reads + self.dram_word_writes
    }

    /// Throughput in frames per second at `clock_hz`.
    ///
    /// `frames` is the application-level frame count (pipelines complete
    /// one application frame only when the *last* stage finishes, so the
    /// caller supplies the number rather than using the per-accelerator
    /// sum).
    pub fn frames_per_second(&self, frames: u64, clock_hz: f64) -> f64 {
        esp4ml_trace::frames_per_second(frames, self.cycles, clock_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_accesses_sum() {
        let s = SocStats {
            dram_word_reads: 10,
            dram_word_writes: 5,
            ..Default::default()
        };
        assert_eq!(s.dram_accesses(), 15);
    }

    #[test]
    fn fps_at_clock() {
        let s = SocStats {
            cycles: 78_000_000,
            ..Default::default()
        };
        let fps = s.frames_per_second(1000, 78.0e6);
        assert!((fps - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn fps_zero_cycles_is_zero() {
        assert_eq!(SocStats::default().frames_per_second(10, 78.0e6), 0.0);
    }
}
