//! Workspace umbrella crate for the ESP4ML reproduction.
//!
//! This crate exists to host workspace-level integration tests (in
//! `tests/`) and runnable examples (in `examples/`). The actual library
//! surface lives in the [`esp4ml`] crate and the substrate crates it
//! re-exports.
pub use esp4ml;
