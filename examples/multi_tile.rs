//! The multi-tile (partitioned) classifier: the paper's SoC-2, where the
//! five layers of the MLP run on five accelerator tiles chained by p2p
//! communication, plus a comparison against the single-tile version.
//!
//! ```text
//! cargo run --release --example multi_tile
//! ```

use esp4ml::apps::{TrainedModels, CLASSIFIER_REUSE, MULTI_TILE_REUSE};
use esp4ml::experiments::AppRun;
use esp4ml::flow::Esp4mlFlow;
use esp4ml::runtime::{ExecMode, RunSpec};
use esp4ml::CaseApp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let models = TrainedModels::untrained();
    let flow = Esp4mlFlow::new();

    // Show the layer partitioning the paper distributes over five tiles.
    let whole = flow.compile_ml(&models.classifier, "cls", &MULTI_TILE_REUSE)?;
    println!("partitioning the 1024x256x128x64x32x10 classifier:");
    for (i, (part, est)) in whole
        .split_layers()
        .iter()
        .zip(whole.layer_estimates())
        .enumerate()
    {
        println!(
            "  tile {i}: {:>4} -> {:>4} values | II {:>5} cycles | {}",
            part.input_dim(),
            part.output_dim(),
            est.initiation_interval,
            est.resources
        );
    }
    let single = flow.compile_ml(&models.classifier, "cls1", &CLASSIFIER_REUSE)?;
    println!(
        "\nmonolithic accelerator for comparison: latency {} cycles, {}",
        single.latency(),
        single.resources()
    );

    // Functional equivalence: the split pipeline computes the same logits.
    let x = vec![0.4f32; 1024];
    let direct = whole.infer(&x);
    let mut staged = x;
    for part in whole.split_layers() {
        staged = part.infer(&staged);
    }
    assert_eq!(direct, staged);
    println!("split pipeline verified equivalent to the monolithic network");

    // Run SoC-2 in the three modes.
    println!("\nSoC-2 execution (32 frames):");
    for mode in ExecMode::ALL {
        let run = AppRun::execute(&CaseApp::MultiTileClassifier, &models, 32, mode)?;
        println!(
            "  {:>4}: {:>7.0} frames/s  {:>8.0} frames/J  {:>6} DRAM accesses",
            mode.label(),
            run.metrics.frames_per_second(),
            run.frames_per_joule(),
            run.metrics.dram_accesses,
        );
    }
    println!(
        "\nshape to observe (paper Fig. 7/8, right cluster): the p2p pipeline\n\
         keeps every intermediate activation on-chip — DRAM sees only the input\n\
         images and the 10-logit outputs."
    );

    // NoC congestion heatmap of one p2p run (forwarded flits per router).
    let soc = CaseApp::MultiTileClassifier.build_soc(&models)?;
    let mut rt = esp4ml::runtime::EspRuntime::new(soc)?;
    let df = CaseApp::MultiTileClassifier.dataflow();
    let buf = rt.prepare(&df, 8)?;
    for f in 0..8 {
        rt.write_frame(&buf, f, &vec![512; 1024])?;
    }
    rt.run(&RunSpec::new(&df).mode(ExecMode::P2p), &buf)?;
    println!(
        "
NoC traffic heatmap (flits forwarded per router):"
    );
    for row in rt.soc().noc_traffic_matrix() {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:>7}")).collect();
        println!("  {}", cells.join(" "));
    }
    Ok(())
}
