//! The paper's flagship application: Night-Vision preprocessing feeding
//! the digit classifier on SoC-1, executed in all three modes (serial,
//! pipelined, p2p pipeline), on darkened street-view-like images.
//!
//! ```text
//! cargo run --release --example street_view
//! ```

use esp4ml::apps::{CaseApp, TrainedModels};
use esp4ml::experiments::AppRun;
use esp4ml::runtime::{ExecMode, RunSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Architecture study: untrained weights keep this example fast; run
    // the `training` harness binary for the accuracy experiment.
    let models = TrainedModels::untrained();
    let frames = 32;

    println!("Night-Vision & Classifier on SoC-1 ({frames} darkened frames)\n");
    for app in [
        CaseApp::NightVisionClassifier { nv: 1, cl: 1 },
        CaseApp::NightVisionClassifier { nv: 4, cl: 1 },
        CaseApp::NightVisionClassifier { nv: 4, cl: 4 },
    ] {
        println!("configuration {}:", app.label());
        for mode in ExecMode::ALL {
            let run = AppRun::execute(&app, &models, frames, mode)?;
            println!(
                "  {:>4}: {:>7.0} frames/s  {:>8.0} frames/J  {:>6} DRAM accesses",
                mode.label(),
                run.metrics.frames_per_second(),
                run.frames_per_joule(),
                run.metrics.dram_accesses,
            );
        }
    }
    println!(
        "\nshape to observe (paper Fig. 7, left cluster): pipe ≫ base once 4 NV\n\
         instances feed the pipeline; p2p matches pipe throughput while cutting\n\
         DRAM accesses ~3x (the energy story of Fig. 8)."
    );

    // Per-device hardware counters (the ESP monitors view) for one run.
    use esp4ml::runtime::EspRuntime;
    let app = CaseApp::NightVisionClassifier { nv: 4, cl: 4 };
    println!("\nper-device monitors for one {} p2p run:", app.label());
    let soc = app.build_soc(&models)?;
    let mut rt = EspRuntime::new(soc)?;
    let df = app.dataflow();
    let buf = rt.prepare(&df, frames)?;
    let mut gen = esp4ml::vision::SvhnGenerator::new(42);
    for f in 0..frames {
        let (img, _) = app.input_frame(&mut gen);
        rt.write_frame(&buf, f, &esp4ml::apps::encode_image(&img))?;
    }
    rt.run(&RunSpec::new(&df).mode(ExecMode::P2p), &buf)?;
    println!(
        "  {:<6} {:>7} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "device", "frames", "load cyc", "comp cyc", "store cyc", "dma words", "p2p words"
    );
    for dev in ["nv0", "nv1", "nv2", "nv3", "cl0", "cl1", "cl2", "cl3"] {
        let s = rt.device_stats(dev).expect("probed device");
        println!(
            "  {:<6} {:>7} {:>9} {:>9} {:>9} {:>10} {:>10}",
            dev,
            s.frames_done,
            s.load_cycles,
            s.compute_cycles,
            s.store_cycles,
            s.dma_words_loaded + s.dma_words_stored,
            s.p2p_words_sent,
        );
    }
    Ok(())
}
