//! Quickstart: build a small ESP SoC, run one accelerator over DMA, then
//! chain two accelerators with the ESP4ML p2p service and compare DRAM
//! traffic.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use esp4ml::noc::Coord;
use esp4ml::runtime::{Dataflow, EspRuntime, ExecMode, RunSpec};
use esp4ml::soc::{ScaleKernel, SocBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Floorplan: a 3x2 mesh with one Ariane-style processor tile, one
    //    memory tile and two accelerator tiles (the `.esp_config` step).
    let soc = SocBuilder::new(3, 2)
        .processor(Coord::new(0, 0))
        .memory(Coord::new(1, 0))
        .accelerator(
            Coord::new(0, 1),
            Box::new(ScaleKernel::new("double", 64, 2)),
        )
        .accelerator(
            Coord::new(1, 1),
            Box::new(ScaleKernel::new("triple", 64, 3)),
        )
        .build()?;
    println!("SoC built: {} accelerators, clocked at {} MHz", 2, 78);

    // 2. Boot the runtime: driver probe discovers both devices and maps
    //    their names to NoC coordinates via LOCATION_REG.
    let mut rt = EspRuntime::new(soc)?;
    for dev in rt.registry().devices() {
        println!(
            "probed device '{}' at tile {} ({} values in / {} out)",
            dev.name, dev.coord, dev.input_values, dev.output_values
        );
    }

    // 3. Describe the application as a dataflow of device names — the
    //    program never sees the floorplan.
    let dataflow = Dataflow::linear(&[&["double"], &["triple"]]);
    let frames = 16;
    let buf = rt.prepare(&dataflow, frames)?;
    for f in 0..frames {
        let values: Vec<u64> = (0..64).map(|i| i + f).collect();
        rt.write_frame(&buf, f, &values)?;
    }

    // 4. Run the same pipeline through memory and with p2p communication.
    let pipe = rt.run(&RunSpec::new(&dataflow).mode(ExecMode::Pipe), &buf)?;
    let p2p = rt.run(&RunSpec::new(&dataflow).mode(ExecMode::P2p), &buf)?;

    let out = rt.read_frame(&buf, 0)?;
    assert_eq!(out[1], 6, "0th frame, value 1: 1 * 2 * 3");
    println!("\nframe 0 output (first 8 values): {:?}", &out[..8]);
    println!(
        "pipe: {:>7.0} frames/s, {:>6} DRAM word accesses",
        pipe.frames_per_second(),
        pipe.dram_accesses
    );
    println!(
        "p2p : {:>7.0} frames/s, {:>6} DRAM word accesses ({:.1}x fewer)",
        p2p.frames_per_second(),
        p2p.dram_accesses,
        pipe.dram_accesses as f64 / p2p.dram_accesses as f64
    );
    rt.esp_cleanup();
    Ok(())
}
