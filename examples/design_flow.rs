//! The full ESP4ML design flow of the paper's Fig. 3, end to end:
//!
//! 1. train a Keras-analog model on the synthetic SVHN-like dataset;
//! 2. export it as `model.json` + binary weights (the `model.h5` analog);
//! 3. compile the files with the HLS4ML-analog compiler at a chosen reuse
//!    factor, getting latency/II/resource reports and the `acc.xml`
//!    descriptor;
//! 4. integrate the accelerator into an SoC and classify digits on it.
//!
//! ```text
//! cargo run --release --example design_flow
//! ```

use esp4ml::hls4ml::{AcceleratorDescriptor, Hls4mlCompiler, Hls4mlConfig};
use esp4ml::nn::{accuracy, Activation, LayerSpec, ModelFile, Sequential, TrainConfig, Trainer};
use esp4ml::noc::Coord;
use esp4ml::runtime::{Dataflow, EspRuntime, ExecMode, RunSpec};
use esp4ml::soc::{NnKernel, SocBuilder};
use esp4ml::vision::SvhnGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Keras training (scaled-down MLP for a quick run) ------------
    let mut gen = SvhnGenerator::new(7);
    let data = gen.classification_dataset(1200);
    let (train, test) = data.split(0.2);
    let mut model = Sequential::new(1024);
    for units in [128, 64, 32] {
        model.push(LayerSpec::dense(units, Activation::Relu));
        model.push(LayerSpec::Dropout { rate: 0.2 });
    }
    model.push(LayerSpec::dense(10, Activation::Softmax));
    println!("training a {:?} MLP...", model.dims());
    Trainer::new(TrainConfig::classifier(8)).fit(&mut model, &train);
    let float_acc = accuracy(&model, &test);
    println!("float test accuracy: {:.1}%", 100.0 * float_acc);

    // --- 2. model.json + weights export ---------------------------------
    let dir = std::env::temp_dir().join("esp4ml_design_flow");
    std::fs::create_dir_all(&dir)?;
    let topo = dir.join("model.json");
    let weights = dir.join("model.espw");
    ModelFile::save(&model, &topo, &weights)?;
    println!("exported {} and {}", topo.display(), weights.display());

    // --- 3. HLS4ML compilation ------------------------------------------
    let config = Hls4mlConfig::with_reuse(256).named("svhn_classifier");
    let nn = Hls4mlCompiler::compile_files(&topo, &weights, &config)?;
    let est = nn.estimate();
    println!(
        "HLS report: latency {} cycles, II {} cycles, {}",
        est.latency, est.initiation_interval, est.resources
    );
    println!(
        "descriptor (acc.xml):\n{}",
        AcceleratorDescriptor::for_nn(&nn).to_xml()
    );

    // --- 4. SoC integration and execution --------------------------------
    let soc = SocBuilder::new(2, 2)
        .processor(Coord::new(0, 0))
        .memory(Coord::new(1, 0))
        .accelerator(Coord::new(0, 1), Box::new(NnKernel::new(nn.clone())))
        .build()?;
    let mut rt = EspRuntime::new(soc)?;
    let dataflow = Dataflow::linear(&[&["svhn_classifier"]]);
    let frames = 32u64;
    let buf = rt.prepare(&dataflow, frames)?;
    let mut labels = Vec::new();
    let spec = nn.spec();
    for f in 0..frames {
        let sample = gen.sample();
        let wire: Vec<u64> = sample
            .image
            .iter()
            .map(|&v| (spec.quantize(v as f64) as u64) & 0xffff)
            .collect();
        rt.write_frame(&buf, f, &wire)?;
        labels.push(sample.label);
    }
    let metrics = rt.run(&RunSpec::new(&dataflow).mode(ExecMode::Pipe), &buf)?;
    let mut correct = 0;
    for (f, &label) in labels.iter().enumerate() {
        let logits = rt.read_frame(&buf, f as u64)?;
        let decoded: Vec<f32> = logits
            .iter()
            .map(|&v| spec.dequantize(((v << 48) as i64) >> 48) as f32)
            .collect();
        let pred = decoded
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("logits");
        if pred == label {
            correct += 1;
        }
    }
    println!(
        "on-SoC fixed-point accuracy over {frames} frames: {:.1}% at {:.0} frames/s",
        100.0 * correct as f64 / frames as f64,
        metrics.frames_per_second()
    );
    Ok(())
}
